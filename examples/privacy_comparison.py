#!/usr/bin/env python3
"""Compare privacy mechanisms: DP vs HE vs SA (the paper's §3.4.4 / Table 3).

Applies each mechanism to model-update vectors of realistic sizes and
reports (a) accuracy impact of DP at ε ∈ {1, 10} in a real FL run — each
arm one :class:`ExperimentSpec` differing only in ``plugins.dp`` — and
(b) the mechanism compute overhead on a fixed update size.

Run:  python examples/privacy_comparison.py
"""

import time

import numpy as np

from repro import DataSpec, Experiment, ExperimentSpec, PluginSpec, TrainSpec
from repro.comm.torchdist import reset_rendezvous
from repro.privacy import DifferentialPrivacy, HomomorphicEncryption, SecureAggregation, generate_keypair


def dp_accuracy_sweep() -> None:
    print("=== Table 3a: DP accuracy at eps in {1, 10}, delta=1e-5 ===")
    # small model + tight clip: per-round DP noise scales with sqrt(d), so a
    # compact network keeps the eps=1 vs eps=10 contrast visible in few rounds
    for eps in [1.0, 10.0, None]:
        reset_rendezvous()
        spec = ExperimentSpec(
            topology="centralized",
            topology_kwargs={
                "num_clients": 8,
                "inner_comm": {"backend": "torchdist", "master_port": 29950 + int(eps or 0)},
            },
            data=DataSpec(dataset="blobs", kwargs={"train_size": 768, "test_size": 192}),
            train=TrainSpec(
                algorithm="fedavg",
                algorithm_kwargs={"lr": 0.1, "local_epochs": 1},
                model="mlp",
                model_kwargs={"hidden": [16]},
                global_rounds=6,
                eval_every=6,
            ),
            plugins=PluginSpec(
                dp=None if eps is None else
                {"epsilon": eps, "delta": 1e-5, "clip_norm": 0.5, "seed": 0}
            ),
            seed=0,
        )
        result = Experiment(spec).run()
        label = f"eps={eps:5.1f}" if eps is not None else "no DP    "
        print(f"  {label}  final accuracy={result.final_accuracy():.4f}")


def mechanism_overheads(n_params: int = 20000, n_clients: int = 4) -> None:
    print(f"\n=== Table 3b: compute overhead on a {n_params}-parameter update ===")
    rng = np.random.default_rng(0)
    updates = [rng.standard_normal(n_params).astype(np.float32) for _ in range(n_clients)]

    dp = DifferentialPrivacy(epsilon=1.0, delta=1e-5, clip_norm=1.0, seed=0)
    start = time.perf_counter()
    for update in updates:
        dp.apply(update)
    dp_time = time.perf_counter() - start

    he = HomomorphicEncryption(key_bits=256, keypair=generate_keypair(256, seed=1))
    start = time.perf_counter()
    he.roundtrip_mean(updates)
    he_time = time.perf_counter() - start

    sa = SecureAggregation(n_clients=n_clients)
    start = time.perf_counter()
    sa.roundtrip_mean(updates)
    sa_time = time.perf_counter() - start

    print(f"  DP : {dp_time * 1e3:10.1f} ms")
    print(f"  HE : {he_time * 1e3:10.1f} ms   ({he_time / dp_time:,.0f}x DP)")
    print(f"  SA : {sa_time * 1e3:10.1f} ms   ({sa_time / dp_time:,.0f}x DP)")
    print("  (paper's ordering: DP << HE, SA — cryptographic mechanisms dominate)")


if __name__ == "__main__":
    dp_accuracy_sweep()
    mechanism_overheads()
