#!/usr/bin/env python3
"""Real-time learning over streaming data (the paper's §3.4.3 / Fig. 6).

A single producer publishes dataset samples to per-client Kafka-style topics
at a configurable stream-rate; a client trains its model from a
StreamingDataLoader as batches arrive, and we report the observed
stream-rates for the paper's two sweeps (target rate, client count).

Run:  python examples/streaming_realtime.py
"""


from repro.data import build_datamodule
from repro.models import build_model
from repro.nn import SGD, CrossEntropyLoss, Tensor
from repro.streaming import KafkaBroker, Producer, StreamingDataLoader, measure_stream_rates, stream_dataset


def train_from_stream() -> None:
    print("=== online training from a live topic ===")
    dm = build_datamodule("blobs", train_size=2048, test_size=256)
    broker = KafkaBroker()
    broker.create_topic("stream/client0")
    producer = Producer(broker, rate=512)  # samples/second
    thread, stop = producer.stream_in_background(
        ["stream/client0"], stream_dataset(dm.train), duration=3.0
    )

    model = build_model("mlp", in_features=dm.in_features, num_classes=dm.num_classes, seed=0)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    loss_fn = CrossEntropyLoss()
    loader = StreamingDataLoader(broker, "stream/client0", batch_size=32, max_wait=2.0)

    for step, (x, y) in enumerate(loader.batches(24)):
        logits = model(Tensor(x))
        loss = loss_fn(logits, y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if step % 6 == 0:
            print(f"  step {step:3d}  loss={loss.item():.4f}  observed rate={loader.observed_rate:6.1f}/s")
    stop.set()
    thread.join(timeout=2)

    correct = 0
    for i in range(len(dm.test)):
        x, y = dm.test[i]
        pred = model(Tensor(x[None])).data.argmax()
        correct += int(pred == y)
    print(f"  test accuracy after streaming epoch: {correct / len(dm.test):.3f}")


def rate_sweeps() -> None:
    dm = build_datamodule("blobs", train_size=512, test_size=64)
    print("\n=== Fig. 6a: observed vs target stream-rate (1 client) ===")
    for target in [32, 64, 128, 256]:
        result = measure_stream_rates(dm.train, target_rate=target, n_clients=1, duration=1.0)
        print(f"  target {target:4d}/s -> observed median {result['median_rate']:7.1f}/s")

    print("\n=== Fig. 6b: target 32/s per client, one shared producer ===")
    for clients in [1, 4, 8, 16]:
        result = measure_stream_rates(dm.train, target_rate=32, n_clients=clients, duration=1.0)
        rates = ", ".join(f"{r:.0f}" for r in result["rates"][:4])
        print(
            f"  {clients:2d} clients -> median {result['median_rate']:5.1f}/s "
            f"(first rates: {rates}{'...' if clients > 4 else ''})"
        )


if __name__ == "__main__":
    train_from_stream()
    rate_sweeps()
