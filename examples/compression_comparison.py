#!/usr/bin/env python3
"""Compare gradient compressors (the paper's §3.4.2 / Fig. 5 + Table 2).

For each compressor: per-call overhead and effective compression factor on a
model-sized update, then final accuracy of a short federated run with the
compressor applied to client uploads — each run one :class:`ExperimentSpec`
differing only in its ``plugins.compressor`` field.

Run:  python examples/compression_comparison.py
"""

import itertools
import time

import numpy as np

from repro import DataSpec, Experiment, ExperimentSpec, PluginSpec, TrainSpec
from repro.comm.torchdist import reset_rendezvous
from repro.compression import build_compressor

CONFIGS = [
    ("topk", {"ratio": 10}),
    ("topk", {"ratio": 1000}),
    ("dgc", {"ratio": 10}),
    ("dgc", {"ratio": 1000}),
    ("redsync", {"ratio": 10}),
    ("sidco", {"ratio": 10}),
    ("randomk", {"ratio": 10}),
    ("qsgd", {"bits": 8}),
    ("qsgd", {"bits": 16}),
    ("powersgd", {"rank": 8}),
    ("powersgd", {"rank": 32}),
]

_ports = itertools.count(30100)


def overhead_table(n_params: int = 100_000) -> None:
    print(f"=== Fig. 5: compression overhead on a {n_params:,}-entry gradient ===")
    rng = np.random.default_rng(0)
    grad = rng.standard_normal(n_params).astype(np.float32)
    print(f"{'compressor':>14} {'cost (ms)':>10} {'effective ratio':>16}")
    for name, kw in CONFIGS:
        comp = build_compressor(name, **kw)
        comp.compress(grad)  # warm-up (PowerSGD caches Q)
        start = time.perf_counter()
        reps = 5
        for _ in range(reps):
            payload = comp.compress(grad)
            comp.decompress(payload)
        cost_ms = (time.perf_counter() - start) / reps * 1e3
        label = f"{name}-{list(kw.values())[0]}"
        print(f"{label:>14} {cost_ms:>10.2f} {payload.ratio:>15.1f}x")


def accuracy_table(rounds: int = 3) -> None:
    print("\n=== Table 2: accuracy with compressed uploads ===")
    print(f"{'compressor':>14} {'final acc':>10}")
    for name, kw in CONFIGS:
        reset_rendezvous()
        spec = ExperimentSpec(
            topology="centralized",
            topology_kwargs={
                "num_clients": 4,
                "inner_comm": {"backend": "torchdist", "master_port": next(_ports)},
            },
            data=DataSpec(dataset="blobs", kwargs={"train_size": 512, "test_size": 128}),
            train=TrainSpec(
                algorithm="fedavg",
                algorithm_kwargs={"lr": 0.05, "local_epochs": 2},
                model="mlp",
                global_rounds=rounds,
                eval_every=rounds,
            ),
            plugins=PluginSpec(compressor=name, compressor_kwargs=dict(kw)),
            seed=0,
        )
        result = Experiment(spec).run()
        label = f"{name}-{list(kw.values())[0]}"
        print(f"{label:>14} {result.final_accuracy():>10.4f}")


if __name__ == "__main__":
    overhead_table()
    accuracy_table()
