#!/usr/bin/env python3
"""Quickstart: centralized FedAvg in a dozen lines (the paper's Fig. 2 flow).

Two equivalent ways to launch an experiment through the Experiment API:

1. a typed :class:`ExperimentSpec` built in Python (fast prototyping);
2. full YAML composition through the built-in config store, including a
   one-line algorithm swap and dotted CLI-style overrides — the workflow the
   paper demonstrates — turned into the same spec via
   ``ExperimentSpec.from_config``.

Both return a structured :class:`RunResult` (metrics history, final global
state, comm summary, resolved-spec fingerprint) that can be archived with
``result.save(dir)`` and reloaded with ``RunResult.load(dir)``.

Run:  python examples/quickstart.py
"""

import os

from repro import DataSpec, Experiment, ExperimentSpec, TrainSpec
from repro.conf import builtin_store
from repro.config import compose

SMOKE = bool(int(os.environ.get("EXAMPLES_SMOKE", "0")))
ROUNDS = 1 if SMOKE else 3
TRAIN_SIZE = 256 if SMOKE else 512


def run_from_spec() -> None:
    print("=== 1. typed ExperimentSpec API ===")
    spec = ExperimentSpec(
        topology="centralized",
        topology_kwargs={
            "num_clients": 4,
            "inner_comm": {"backend": "grpc", "master_port": 50071},
        },
        data=DataSpec(
            dataset="cifar10",
            kwargs={"train_size": TRAIN_SIZE, "test_size": 128},
            partition="dirichlet",
            partition_alpha=0.5,
            batch_size=32,
        ),
        train=TrainSpec(
            algorithm="fedavg",
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="simple_cnn",
            global_rounds=ROUNDS,
        ),
        seed=0,
    )
    result = Experiment(spec).run()
    print(result.table())
    print("summary:", result.summary())

    # a RunResult archives to a directory and loads back losslessly
    out = result.save("/tmp/repro-quickstart-run")
    from repro import RunResult

    reloaded = RunResult.load(out)
    assert reloaded.spec == spec and len(reloaded.history) == len(result.history)
    print(f"archived to {out} (fingerprint {result.fingerprint})")


def run_from_config() -> None:
    print("\n=== 2. YAML composition (Fig. 2), one-line algorithm swap ===")
    cfg = compose(
        builtin_store(),
        "experiment",
        overrides=[
            "algorithm=fedprox",          # <- the paper's one-line swap
            "algorithm.mu=0.05",          # FedProx's proximal coefficient
            "model=simple_cnn",
            "topology.num_clients=4",
            "topology.inner_comm.master_port=50072",
            f"datamodule.train_size={TRAIN_SIZE}",
            "datamodule.test_size=128",
            f"global_rounds={ROUNDS}",
        ],
    )
    spec = ExperimentSpec.from_config(cfg)
    result = Experiment(spec).run()
    print(result.table())
    print("summary:", result.summary())


if __name__ == "__main__":
    run_from_spec()
    run_from_config()
