#!/usr/bin/env python3
"""Quickstart: centralized FedAvg in a dozen lines (the paper's Fig. 2 flow).

Two equivalent ways to launch an experiment are shown:

1. registry names through ``Engine.from_names`` (fast prototyping);
2. full YAML composition through the built-in config store, including a
   one-line algorithm swap and dotted CLI-style overrides — the workflow the
   paper demonstrates.

Run:  python examples/quickstart.py
"""

from repro import Engine
from repro.conf import builtin_store
from repro.config import compose


def run_from_names() -> None:
    print("=== 1. registry-name API ===")
    engine = Engine.from_names(
        topology="centralized",
        algorithm="fedavg",
        model="simple_cnn",
        datamodule="cifar10",
        num_clients=4,
        global_rounds=3,
        batch_size=32,
        seed=0,
        topology_kwargs={"inner_comm": {"backend": "grpc", "master_port": 50071}},
        datamodule_kwargs={"train_size": 512, "test_size": 128},
        algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
        partition="dirichlet",
        partition_alpha=0.5,
    )
    metrics = engine.run()
    engine.shutdown()
    print(metrics.table())
    print("summary:", metrics.summary())


def run_from_config() -> None:
    print("\n=== 2. YAML composition (Fig. 2), one-line algorithm swap ===")
    cfg = compose(
        builtin_store(),
        "experiment",
        overrides=[
            "algorithm=fedprox",          # <- the paper's one-line swap
            "algorithm.mu=0.05",          # FedProx's proximal coefficient
            "model=simple_cnn",
            "topology.num_clients=4",
            "topology.inner_comm.master_port=50072",
            "datamodule.train_size=512",
            "datamodule.test_size=128",
            "global_rounds=3",
        ],
    )
    engine = Engine.from_config(cfg)
    metrics = engine.run()
    engine.shutdown()
    print(metrics.table())
    print("summary:", metrics.summary())


if __name__ == "__main__":
    run_from_names()
    run_from_config()
