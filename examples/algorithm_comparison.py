#!/usr/bin/env python3
"""Compare all 11 FL algorithms under one unified configuration (Table 1 style).

Every algorithm runs the same model, data partition, round budget and
hyperparameter defaults — the point is OmniFed's "swap one line, compare
fairly" workflow, not tuned accuracy.  Each arm is one
:class:`ExperimentSpec` that differs from the baseline in exactly one
field: ``train.algorithm``.

Run:  python examples/algorithm_comparison.py [--rounds N] [--clients N]
"""

import argparse
import itertools

from repro import DataSpec, Experiment, ExperimentSpec, TrainSpec
from repro.comm.pubsub import reset_brokers
from repro.comm.torchdist import reset_rendezvous
from repro.comm.transport import reset_inproc_registry

ALGORITHMS = [
    "fedavg", "fedprox", "fedmom", "fednova", "scaffold",
    "moon", "fedper", "feddyn", "fedbn", "ditto", "diloco",
]

_ports = itertools.count(29900)


def run_one(algorithm: str, rounds: int, clients: int) -> dict:
    reset_rendezvous()
    reset_inproc_registry()
    reset_brokers()
    spec = ExperimentSpec(
        topology="centralized",
        topology_kwargs={
            "num_clients": clients,
            "inner_comm": {"backend": "torchdist", "master_port": next(_ports)},
        },
        data=DataSpec(
            dataset="cifar10",
            kwargs={"train_size": 768, "test_size": 192},
            partition="dirichlet",
            partition_alpha=0.3,
        ),
        train=TrainSpec(
            algorithm=algorithm,                      # <- the one-line swap
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="simple_cnn",
            global_rounds=rounds,
            eval_every=rounds,  # evaluate once at the end
        ),
        seed=0,
    )
    result = Experiment(spec).run()
    return {
        "algorithm": algorithm,
        "accuracy": result.final_accuracy(),
        "median_round_s": result.metrics.median_round_time(),
        "total_s": result.wall_seconds,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args()

    print(f"{'algorithm':>10} {'final acc':>10} {'median round (s)':>17} {'total (s)':>10}")
    for algo in ALGORITHMS:
        row = run_one(algo, args.rounds, args.clients)
        print(
            f"{row['algorithm']:>10} {row['accuracy']:>10.4f} "
            f"{row['median_round_s']:>17.2f} {row['total_s']:>10.1f}"
        )


if __name__ == "__main__":
    main()
