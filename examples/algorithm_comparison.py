#!/usr/bin/env python3
"""Compare all 11 FL algorithms under one unified configuration (Table 1 style).

Every algorithm runs the same model, data partition, round budget and
hyperparameter defaults — the point is OmniFed's "swap one line, compare
fairly" workflow, not tuned accuracy.

Run:  python examples/algorithm_comparison.py [--rounds N] [--clients N]
"""

import argparse
import itertools
import time

from repro.comm.pubsub import reset_brokers
from repro.comm.torchdist import reset_rendezvous
from repro.comm.transport import reset_inproc_registry
from repro.engine import Engine

ALGORITHMS = [
    "fedavg", "fedprox", "fedmom", "fednova", "scaffold",
    "moon", "fedper", "feddyn", "fedbn", "ditto", "diloco",
]

_ports = itertools.count(29900)


def run_one(algorithm: str, rounds: int, clients: int) -> dict:
    reset_rendezvous()
    reset_inproc_registry()
    reset_brokers()
    engine = Engine.from_names(
        topology="centralized",
        algorithm=algorithm,
        model="simple_cnn",
        datamodule="cifar10",
        num_clients=clients,
        global_rounds=rounds,
        batch_size=32,
        seed=0,
        topology_kwargs={"inner_comm": {"backend": "torchdist", "master_port": next(_ports)}},
        datamodule_kwargs={"train_size": 768, "test_size": 192},
        algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
        partition="dirichlet",
        partition_alpha=0.3,
        eval_every=rounds,  # evaluate once at the end
    )
    start = time.perf_counter()
    metrics = engine.run()
    wall = time.perf_counter() - start
    engine.shutdown()
    return {
        "algorithm": algorithm,
        "accuracy": metrics.final_accuracy(),
        "median_round_s": metrics.median_round_time(),
        "total_s": wall,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args()

    print(f"{'algorithm':>10} {'final acc':>10} {'median round (s)':>17} {'total (s)':>10}")
    for algo in ALGORITHMS:
        row = run_one(algo, args.rounds, args.clients)
        print(
            f"{row['algorithm']:>10} {row['accuracy']:>10.4f} "
            f"{row['median_round_s']:>17.2f} {row['total_s']:>10.1f}"
        )


if __name__ == "__main__":
    main()
