#!/usr/bin/env python3
"""Execution policies under stragglers: sync vs. semi-sync vs. async.

The same federation (4 clients, FedAvg on the blobs task, one seed) runs
under four execution policies against an identical lognormal latency model:

* ``sync``       — barrier per round; every round pays the slowest client;
* ``semi_sync``  — deadline rounds; stragglers carry over with a staleness
                   discount;
* ``fedasync``   — merge every arrival immediately, staleness-weighted;
* ``fedbuff``    — buffer K staleness-discounted deltas per flush.

Latency is *virtual* (no sleeping): the scheduler advances a simulated
clock, so the printed makespans are what a real WAN deployment would see,
reproduced in milliseconds of laptop time.  Each arm is one
:class:`ExperimentSpec` differing only in its ``scheduler`` field; the
``mode="auto"`` dispatcher picks the async runtime because a scheduler is
configured.

Run:  python examples/async_straggler.py
"""

import os

from repro import DataSpec, Experiment, ExperimentSpec, SchedulerSpec, TrainSpec

SMOKE = bool(int(os.environ.get("EXAMPLES_SMOKE", "0")))

HETERO = {"latency": "lognormal", "mean": 1.0, "sigma": 1.0}

POLICIES = {
    "sync": SchedulerSpec(name="sync", kwargs={"heterogeneity": HETERO}),
    "semi_sync": SchedulerSpec(name="semi_sync", kwargs={"deadline": 1.0, "heterogeneity": HETERO}),
    "fedasync": SchedulerSpec(name="fedasync", kwargs={"alpha": 0.6, "heterogeneity": HETERO}),
    "fedbuff": SchedulerSpec(name="fedbuff", kwargs={"buffer_size": 4, "heterogeneity": HETERO}),
}

TOTAL_UPDATES = 12 if SMOKE else 24
TRAIN_SIZE = 256 if SMOKE else 512


def run(mode: str, port: int):
    spec = ExperimentSpec(
        topology="centralized",
        topology_kwargs={
            "num_clients": 4,
            "inner_comm": {"backend": "torchdist", "master_port": port},
        },
        data=DataSpec(dataset="blobs", kwargs={"train_size": TRAIN_SIZE, "test_size": 128}),
        train=TrainSpec(
            algorithm="fedavg",
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="mlp",
            global_rounds=TOTAL_UPDATES // 4,
        ),
        scheduler=POLICIES[mode],
        total_updates=TOTAL_UPDATES,
        seed=0,
    )
    return Experiment(spec).run()


def main() -> None:
    print(f"{'policy':>10} {'sim makespan':>13} {'aggregations':>13} "
          f"{'mean staleness':>15} {'final acc':>10}")
    baseline = None
    for i, mode in enumerate(POLICIES):
        result = run(mode, 51000 + 50 * i)
        span = result.sim_makespan()
        if baseline is None:
            baseline = span
        staleness = sum(r.staleness_mean * r.applied for r in result.history)
        staleness /= max(1, result.total_applied())
        speedup = f"({baseline / span:.2f}x vs sync)" if span else ""
        print(f"{mode:>10} {span:>10.2f}s {speedup:<14} {len(result.history):>6} "
              f"{staleness:>15.2f} {result.final_accuracy():>10.3f}")


if __name__ == "__main__":
    main()
