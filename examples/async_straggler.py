#!/usr/bin/env python3
"""Execution policies under stragglers: sync vs. semi-sync vs. async.

The same federation (4 clients, FedAvg on the blobs task, one seed) runs
under four execution policies against an identical lognormal latency model:

* ``sync``       — barrier per round; every round pays the slowest client;
* ``semi_sync``  — deadline rounds; stragglers carry over with a staleness
                   discount;
* ``fedasync``   — merge every arrival immediately, staleness-weighted;
* ``fedbuff``    — buffer K staleness-discounted deltas per flush.

Latency is *virtual* (no sleeping): the scheduler advances a simulated
clock, so the printed makespans are what a real WAN deployment would see,
reproduced in milliseconds of laptop time.

Run:  python examples/async_straggler.py
"""

from repro.engine import Engine

HETERO = {"latency": "lognormal", "mean": 1.0, "sigma": 1.0}

POLICIES = {
    "sync": {"name": "sync", "heterogeneity": HETERO},
    "semi_sync": {"name": "semi_sync", "deadline": 1.0, "heterogeneity": HETERO},
    "fedasync": {"name": "fedasync", "alpha": 0.6, "heterogeneity": HETERO},
    "fedbuff": {"name": "fedbuff", "buffer_size": 4, "heterogeneity": HETERO},
}

TOTAL_UPDATES = 24


def run(mode: str, port: int):
    engine = Engine.from_names(
        topology="centralized",
        algorithm="fedavg",
        model="mlp",
        datamodule="blobs",
        num_clients=4,
        global_rounds=TOTAL_UPDATES // 4,
        batch_size=32,
        seed=0,
        topology_kwargs={"inner_comm": {"backend": "torchdist", "master_port": port}},
        datamodule_kwargs={"train_size": 512, "test_size": 128},
        algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
        scheduler=dict(POLICIES[mode]),
    )
    metrics = engine.run_async(total_updates=TOTAL_UPDATES)
    engine.shutdown()
    return metrics


def main() -> None:
    print(f"{'policy':>10} {'sim makespan':>13} {'aggregations':>13} "
          f"{'mean staleness':>15} {'final acc':>10}")
    baseline = None
    for i, mode in enumerate(POLICIES):
        metrics = run(mode, 51000 + 50 * i)
        span = metrics.sim_makespan()
        if baseline is None:
            baseline = span
        staleness = sum(r.staleness_mean * r.applied for r in metrics.history)
        staleness /= max(1, metrics.total_applied())
        speedup = f"({baseline / span:.2f}x vs sync)" if span else ""
        print(f"{mode:>10} {span:>10.2f}s {speedup:<14} {len(metrics.history):>6} "
              f"{staleness:>15.2f} {metrics.final_accuracy():>10.3f}")


if __name__ == "__main__":
    main()
