#!/usr/bin/env python3
"""Cross-facility FL with mixed protocols (the paper's §3.4.5 / Fig. 7).

Two "sites" train over a fast collective fabric (TorchDist inner
communicator, HPC-interconnect network model); site heads synchronize with
a global root over client-server RPC (gRPC-substitute outer communicator,
WAN network model).  TopK compression is applied *only* on the slow outer
link — the paper's headline composition trick, expressed here as the
``plugins.outer_compressor`` field of one :class:`ExperimentSpec`.

Run:  python examples/cross_facility.py
"""

from repro import DataSpec, Experiment, ExperimentSpec, PluginSpec, TrainSpec


def main() -> None:
    spec = ExperimentSpec(
        topology="hierarchical",
        topology_kwargs={
            "num_sites": 2,
            "clients_per_site": 3,
            "inner_comm": {
                "backend": "torchdist",          # MPI-style collectives inside a site
                "master_port": 29800,
                "network_preset": "hpc_interconnect",
            },
            "outer_comm": {
                "backend": "grpc",               # RPC across facilities
                "master_port": 50080,
                "transport": "inproc",
                "network_preset": "wan",
            },
        },
        data=DataSpec(
            dataset="cifar10",
            kwargs={"train_size": 768, "test_size": 192},
            partition="dirichlet",
            partition_alpha=0.5,
        ),
        train=TrainSpec(
            algorithm="fedavg",
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="simple_cnn",
            global_rounds=4,
        ),
        # compress only the cross-facility link (inner stays uncompressed)
        plugins=PluginSpec(outer_compressor="topk", outer_compressor_kwargs={"ratio": 10}),
        seed=0,
    )
    experiment = Experiment(spec)
    print("topology:", experiment.spec.topology, experiment.spec.topology_kwargs["num_sites"], "sites")
    result = experiment.run()
    print(result.table())

    print("\ncommunication summary (Fig. 7's inner vs outer gap):")
    for group, stats in sorted(result.comm.items()):
        print(
            f"  {group:6s} bytes={int(stats['bytes_sent']):>10,d} "
            f"simulated={stats['sim_seconds']:.4f}s"
        )
    inner, outer = result.comm["inner"]["sim_seconds"], result.comm["outer"]["sim_seconds"]
    if inner > 0:
        print(f"  outer/inner simulated-cost ratio: {outer / inner:,.0f}x")


if __name__ == "__main__":
    main()
