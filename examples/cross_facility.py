#!/usr/bin/env python3
"""Cross-facility FL with mixed protocols (the paper's §3.4.5 / Fig. 7).

Two "sites" train over a fast collective fabric (TorchDist inner
communicator, HPC-interconnect network model); site heads synchronize with
a global root over client-server RPC (gRPC-substitute outer communicator,
WAN network model).  TopK compression is applied *only* on the slow outer
link — the paper's headline composition trick.

Run:  python examples/cross_facility.py
"""

from repro.algorithms import build_algorithm
from repro.compression import build_compressor
from repro.data import build_datamodule
from repro.engine import Engine
from repro.models import build_model
from repro.topology import HierarchicalTopology


def main() -> None:
    topology = HierarchicalTopology(
        num_sites=2,
        clients_per_site=3,
        inner_comm={
            "backend": "torchdist",          # MPI-style collectives inside a site
            "master_port": 29800,
            "network_preset": "hpc_interconnect",
        },
        outer_comm={
            "backend": "grpc",               # RPC across facilities
            "master_port": 50080,
            "transport": "inproc",
            "network_preset": "wan",
        },
    )
    print("topology:", topology.describe())

    datamodule = build_datamodule("cifar10", train_size=768, test_size=192)
    engine = Engine(
        topology=topology,
        datamodule=datamodule,
        model_fn=lambda: build_model("simple_cnn", num_classes=datamodule.num_classes, seed=0),
        algorithm_fn=lambda: build_algorithm("fedavg", lr=0.05, local_epochs=1),
        # compress only the cross-facility link (inner stays uncompressed)
        outer_compressor_fn=lambda: build_compressor("topk", ratio=10),
        global_rounds=4,
        batch_size=32,
        seed=0,
        partition="dirichlet",
        partition_alpha=0.5,
    )
    metrics = engine.run()
    print(metrics.table())

    comm = engine.comm_summary()
    print("\ncommunication summary (Fig. 7's inner vs outer gap):")
    for group, stats in sorted(comm.items()):
        print(
            f"  {group:6s} bytes={int(stats['bytes_sent']):>10,d} "
            f"simulated={stats['sim_seconds']:.4f}s"
        )
    inner, outer = comm["inner"]["sim_seconds"], comm["outer"]["sim_seconds"]
    if inner > 0:
        print(f"  outer/inner simulated-cost ratio: {outer / inner:,.0f}x")
    engine.shutdown()


if __name__ == "__main__":
    main()
