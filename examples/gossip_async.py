#!/usr/bin/env python3
"""Decentralized async gossip: no server, no barrier, no stalled ring.

Four peers on a ring (the paper's Fig. 1b decentralized pattern) federate
with no coordinator at all: each peer trains locally, pushes its state to
neighbors over links with their own latency model, and mixes whatever has
arrived — AD-PSGD-style.  One seed, one per-peer compute model (with a
persistent speed spread: one peer is simply slower), one per-edge link
model.  The arms differ only in the gossip execution mode
(``scheduler.barrier`` / ``scheduler.neighbor_selection``):

* ``barrier``     — synchronous gossip rounds: everyone mixes at the
                    slowest arrival, so each round pays the stragglers;
* ``async_all``   — asynchronous gossip, publish to all neighbors;
* ``async_pair``  — asynchronous randomized pairwise gossip (one random
                    partner per step).

Latency is *virtual* (no sleeping): makespans are what an edge deployment
would see, reproduced in milliseconds of laptop time.

Run:  python examples/gossip_async.py
"""

from repro.engine import Engine

COMPUTE = {"latency": "lognormal", "mean": 0.5, "sigma": 0.8, "client_spread": 1.0}
EDGE = {"latency": "lognormal", "mean": 0.3, "sigma": 0.8, "client_spread": 0.5}

ARMS = {
    "barrier": {"barrier": True},
    "async_all": {"barrier": False, "neighbor_selection": "all"},
    "async_pair": {"barrier": False, "neighbor_selection": "pairwise"},
}

PEERS = 4
TOTAL_UPDATES = 24


def run(arm: str, port: int):
    engine = Engine.from_names(
        topology="ring",
        algorithm="fedavg",
        model="mlp",
        datamodule="blobs",
        topology_kwargs={
            "num_clients": PEERS,
            "inner_comm": {"backend": "torchdist", "master_port": port},
        },
        datamodule_kwargs={"train_size": 512, "test_size": 128},
        algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
        global_rounds=TOTAL_UPDATES // PEERS,
        batch_size=32,
        seed=0,
        scheduler={
            "name": "gossip_async",
            "heterogeneity": dict(COMPUTE),
            "edge_heterogeneity": dict(EDGE),
            **ARMS[arm],
        },
    )
    metrics = engine.run_async(total_updates=TOTAL_UPDATES)
    scheduler = engine.scheduler
    engine.shutdown()
    return metrics, scheduler


def main() -> None:
    print(f"{'arm':>12} {'sim makespan':>13} {'updates':>8} {'msgs':>6} "
          f"{'MB moved':>9} {'consensus':>10} {'final acc':>10}")
    baseline = None
    for i, arm in enumerate(ARMS):
        metrics, scheduler = run(arm, 53000 + 50 * i)
        span = metrics.sim_makespan()
        if baseline is None:
            baseline = span
        speedup = f"({baseline / span:.2f}x)" if span else ""
        dist = next(
            (r.consensus_dist for r in reversed(metrics.history)
             if r.consensus_dist is not None),
            float("nan"),
        )
        print(f"{arm:>12} {span:>10.2f}s {speedup:<8} "
              f"{metrics.total_applied():>5} {scheduler.msgs_sent:>6} "
              f"{metrics.total_bytes() / 1e6:>9.2f} {dist:>10.4f} "
              f"{metrics.final_accuracy():>10.4f}")
    print("\nasync gossip reaches the same update count without ever paying "
          "the slowest peer's round — lower virtual makespan, same network.")


if __name__ == "__main__":
    main()
