#!/usr/bin/env python3
"""Decentralized async gossip: no server, no barrier, no stalled ring.

Four peers on a ring (the paper's Fig. 1b decentralized pattern) federate
with no coordinator at all: each peer trains locally, pushes its state to
neighbors over links with their own latency model, and mixes whatever has
arrived — AD-PSGD-style.  One seed, one per-peer compute model (with a
persistent speed spread: one peer is simply slower), one per-edge link
model.  The arms differ only in the gossip execution mode
(``scheduler.barrier`` / ``scheduler.neighbor_selection``):

* ``barrier``     — synchronous gossip rounds: everyone mixes at the
                    slowest arrival, so each round pays the stragglers;
* ``async_all``   — asynchronous gossip, publish to all neighbors;
* ``async_pair``  — asynchronous randomized pairwise gossip (one random
                    partner per step).

Latency is *virtual* (no sleeping): makespans are what an edge deployment
would see, reproduced in milliseconds of laptop time.  Each arm is one
:class:`ExperimentSpec` differing only in its ``scheduler`` field.

Run:  python examples/gossip_async.py
"""

import os

from repro import DataSpec, Experiment, ExperimentSpec, SchedulerSpec, TrainSpec

SMOKE = bool(int(os.environ.get("EXAMPLES_SMOKE", "0")))

COMPUTE = {"latency": "lognormal", "mean": 0.5, "sigma": 0.8, "client_spread": 1.0}
EDGE = {"latency": "lognormal", "mean": 0.3, "sigma": 0.8, "client_spread": 0.5}

ARMS = {
    "barrier": {"barrier": True},
    "async_all": {"barrier": False, "neighbor_selection": "all"},
    "async_pair": {"barrier": False, "neighbor_selection": "pairwise"},
}

PEERS = 4
TOTAL_UPDATES = 12 if SMOKE else 24
TRAIN_SIZE = 256 if SMOKE else 512


def run(arm: str, port: int):
    spec = ExperimentSpec(
        topology="ring",
        topology_kwargs={
            "num_clients": PEERS,
            "inner_comm": {"backend": "torchdist", "master_port": port},
        },
        data=DataSpec(dataset="blobs", kwargs={"train_size": TRAIN_SIZE, "test_size": 128}),
        train=TrainSpec(
            algorithm="fedavg",
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="mlp",
            global_rounds=TOTAL_UPDATES // PEERS,
        ),
        scheduler=SchedulerSpec(
            name="gossip_async",
            kwargs={
                "heterogeneity": dict(COMPUTE),
                "edge_heterogeneity": dict(EDGE),
                **ARMS[arm],
            },
        ),
        total_updates=TOTAL_UPDATES,
        seed=0,
    )
    experiment = Experiment(spec)
    result = experiment.run()
    return result, experiment.engine.scheduler


def main() -> None:
    print(f"{'arm':>12} {'sim makespan':>13} {'updates':>8} {'msgs':>6} "
          f"{'MB moved':>9} {'consensus':>10} {'final acc':>10}")
    baseline = None
    for i, arm in enumerate(ARMS):
        result, scheduler = run(arm, 53000 + 50 * i)
        span = result.sim_makespan()
        if baseline is None:
            baseline = span
        speedup = f"({baseline / span:.2f}x)" if span else ""
        dist = next(
            (r.consensus_dist for r in reversed(result.history)
             if r.consensus_dist is not None),
            float("nan"),
        )
        print(f"{arm:>12} {span:>10.2f}s {speedup:<8} "
              f"{result.total_applied():>5} {scheduler.msgs_sent:>6} "
              f"{result.total_bytes() / 1e6:>9.2f} {dist:>10.4f} "
              f"{result.final_accuracy():>10.4f}")
    print("\nasync gossip reaches the same update count without ever paying "
          "the slowest peer's round — lower virtual makespan, same network.")


if __name__ == "__main__":
    main()
