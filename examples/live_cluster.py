#!/usr/bin/env python3
"""Live cluster runtime: one coordinator, N real node processes, one kill.

The same :class:`ExperimentSpec` that runs simulated switches to real
processes with ``mode="live"`` plus a ``cluster`` block.  This script
plays both roles on localhost:

1. builds a live spec (TCP coordinator, quorum of ``--nodes`` members);
2. starts the run — the coordinator binds immediately and waits for the
   joining quorum;
3. spawns ``--nodes`` ``python -m repro node tcp://...`` subprocesses that
   join, rebuild the trainer from the published spec, and serve turns;
4. optionally SIGKILLs one node mid-run (``--kill``) to demonstrate
   phi/lease failure detection: the dead member is evicted, its clients
   orphan out of the selection set, and the run still completes.

Run:  python examples/live_cluster.py [--nodes 3] [--updates 24] [--kill]

In a real deployment you skip step 3: start the coordinator with
``python -m repro mode=live +cluster.bind=0.0.0.0:7070 +cluster.min_nodes=3``
on one machine and ``python -m repro node tcp://host:7070`` on the others.
"""

import argparse
import os
import signal
import subprocess
import sys
import threading
import time

from repro.experiment import Experiment, ExperimentSpec


def make_spec(nodes: int, updates: int) -> ExperimentSpec:
    return ExperimentSpec(
        topology="centralized",
        num_clients=2 * nodes,
        mode="live",
        cluster={
            "bind": "127.0.0.1:0",   # ephemeral port; printed below
            "min_nodes": nodes,
            "heartbeat": 0.2,
            "lease": 1.5,
            "detector": "phi",       # adaptive suspicion, lease as hard bound
        },
        data={"dataset": "blobs",
              "kwargs": {"train_size": 512, "test_size": 128},
              "batch_size": 32},
        train={"algorithm": "fedavg", "model": "mlp", "global_rounds": 2},
        scheduler="fedasync",
        total_updates=updates,
        seed=0,
    )


def spawn_node(url: str) -> subprocess.Popen:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    env.setdefault("REPRO_NODE_TURN_DELAY", "0.1")  # visible kill window
    return subprocess.Popen([sys.executable, "-m", "repro", "node", url],
                            env=env, cwd=root)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--updates", type=int, default=24)
    parser.add_argument("--kill", action="store_true",
                        help="SIGKILL one node mid-run to show eviction")
    args = parser.parse_args()

    experiment = Experiment(make_spec(args.nodes, args.updates))
    outcome = {}

    def run():
        outcome["result"] = experiment.run()

    runner = threading.Thread(target=run, daemon=True)
    runner.start()
    while experiment.engine is None or experiment.engine.cluster is None:
        time.sleep(0.05)
    cluster = experiment.engine.cluster
    print(f"coordinator: {cluster.url}  (join with `python -m repro node {cluster.url}`)")

    procs = [spawn_node(cluster.url) for _ in range(args.nodes)]
    if args.kill:
        while cluster.membership.counts()["alive"] < args.nodes:
            time.sleep(0.05)
        while len(experiment.engine.metrics.history) < 3:
            time.sleep(0.05)
        victim = procs[0]
        print(f"\n*** SIGKILL node pid={victim.pid} mid-run ***\n")
        os.kill(victim.pid, signal.SIGKILL)

    runner.join()
    result = outcome["result"]
    for proc in procs:
        if proc.poll() is None:
            proc.wait(timeout=30)

    print(result.table())
    print("summary:", result.summary())
    print("\nmembership at shutdown:")
    for row in cluster.membership.describe():
        print(f"  {row['node_id']:24s} {row['state']:8s} "
              f"beats={row['heartbeats']:4d} clients={row['clients']}")
    counts = cluster.membership.counts()
    if args.kill:
        assert counts["evicted"] == 1, counts
        print("\nthe killed node was evicted; its clients orphaned out of "
              "selection and the run completed on the survivors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
