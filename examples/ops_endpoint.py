#!/usr/bin/env python3
"""Live ops endpoint walkthrough: scrape a run while it trains.

Attaches a :class:`repro.Telemetry` callback with ``serve=True`` to an
asynchronous fedbuff run, scrapes ``/health``, ``/metrics`` and ``/runs``
from inside the process mid-run the way an external Prometheus scraper
would, then writes the dual-clock Chrome trace for Perfetto.

Run:  python examples/ops_endpoint.py [--port 9100]

Env:
  OPS_HOLD=<seconds>  keep the endpoint (and process) alive after the run
                      finishes — lets an external ``curl`` reach it (used
                      by the CI ops-smoke job).
  EXAMPLES_SMOKE=1    reduced settings.
"""

import argparse
import json
import os
import time
import urllib.request

from repro import (
    DataSpec,
    Experiment,
    ExperimentSpec,
    SchedulerSpec,
    Telemetry,
    TrainSpec,
)
from repro.engine.callbacks import Callback

SMOKE = bool(int(os.environ.get("EXAMPLES_SMOKE", "0")))
HOLD = float(os.environ.get("OPS_HOLD", "0"))
TOTAL_UPDATES = 8 if SMOKE else 32
TRACE_PATH = "/tmp/repro-ops-trace.json"


def build_spec() -> ExperimentSpec:
    return ExperimentSpec(
        topology="centralized",
        topology_kwargs={
            "num_clients": 8,
            "inner_comm": {"backend": "torchdist", "master_port": 29620},
        },
        data=DataSpec(dataset="blobs", kwargs={"train_size": 256, "test_size": 64},
                      batch_size=32),
        train=TrainSpec(algorithm="fedavg", algorithm_kwargs={"lr": 0.05},
                        model="mlp", model_kwargs={"hidden": [32]},
                        global_rounds=4),
        scheduler=SchedulerSpec(
            name="fedbuff",
            kwargs={"buffer_size": 4,
                    "heterogeneity": {"latency": "lognormal", "mean": 0.5,
                                      "sigma": 0.5}},
        ),
        total_updates=TOTAL_UPDATES,
        seed=0,
    )


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.read().decode("utf8")


class MidRunScrape(Callback):
    """Scrapes the endpoint once, partway through the run."""

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self.done = False

    def on_update(self, record, metrics) -> None:
        if self.done or len(metrics.history) < 2:
            return
        self.done = True
        base = self.telemetry.server.url
        health = json.loads(fetch(base + "/health"))
        print(f"\n--- mid-run scrape of {base} ---")
        print("health:", health)
        exposition = fetch(base + "/metrics")
        wanted = ("repro_updates_applied_total", "repro_event_queue_depth",
                  "repro_sim_time_seconds", "repro_turns_dispatched")
        for line in exposition.splitlines():
            if line.startswith(wanted):
                print("metrics:", line)
        (run,) = json.loads(fetch(base + "/runs"))
        print(f"runs: {run['run_id']} status={run['status']} "
              f"rounds={run['rounds']} fingerprint={run['fingerprint']}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0,
                        help="ops endpoint port (0 = ephemeral)")
    args = parser.parse_args()

    tel = Telemetry(trace_path=TRACE_PATH, serve=True, port=args.port)
    spec = build_spec()
    result = Experiment(spec, callbacks=[tel, MidRunScrape(tel)]).run()

    print(result.table())
    print("summary:", {k: result.summary()[k]
                       for k in ("rounds", "applied_updates", "sim_makespan",
                                 "stop_reason")})
    print(f"trace: {TRACE_PATH} ({len(tel.tracer)} events) — open in "
          "https://ui.perfetto.dev")

    if HOLD > 0:
        # re-serve the final registry so an external scraper can reach it
        # (Telemetry stopped its server at shutdown)
        from repro.telemetry import GLOBAL_RUNS, OpsServer

        with OpsServer(registry=tel.registry, runs=GLOBAL_RUNS,
                       port=args.port) as srv:
            print(f"holding ops endpoint at {srv.url} for {HOLD:.0f}s")
            time.sleep(HOLD)


if __name__ == "__main__":
    main()
