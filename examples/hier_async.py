#!/usr/bin/env python3
"""Hierarchical async federation: a slow site no longer stalls the world.

Two sites (2 trainers each) federate through their site heads to a global
root — the paper's cross-facility tree (Fig. 1d / Fig. 7) — under one seed,
one intra-site straggler model, and one heavy-tailed cross-site link whose
persistent per-site speed spread makes one site simply slower.  The arms
differ only in the per-tier execution policies (``scheduler.inner`` /
``scheduler.outer``):

* ``all_sync``     — barrier at both tiers: the synchronous hierarchy pays
                     the slowest site's link every outer round;
* ``async_outer``  — sync inside sites, async HierFAVG across them: the
                     root merges each site upload on arrival with a
                     staleness discount;
* ``mixed``        — fedbuff inside sites, fedasync across them.

Latency is *virtual* (no sleeping): makespans are what a WAN deployment
would see, reproduced in milliseconds of laptop time.

Run:  python examples/hier_async.py
"""

from repro.engine import Engine

INNER_HETERO = {"latency": "lognormal", "mean": 0.1, "sigma": 0.8}
OUTER_HETERO = {"latency": "lognormal", "mean": 1.0, "sigma": 0.8, "client_spread": 1.0}

ARMS = {
    "all_sync": {"inner": "sync", "outer": "sync"},
    "async_outer": {"inner": "sync", "outer": "fedasync"},
    "mixed": {"inner": "fedbuff", "outer": "fedasync"},
}

TOTAL_UPDATES = 24


def run(arm: str, port: int):
    engine = Engine.from_names(
        topology="hierarchical",
        algorithm="fedavg",
        model="mlp",
        datamodule="blobs",
        topology_kwargs={
            "num_sites": 2,
            "clients_per_site": 2,
            "inner_comm": {"backend": "torchdist", "master_port": port},
            "outer_comm": {"backend": "grpc", "master_port": port + 1000, "transport": "inproc"},
        },
        datamodule_kwargs={"train_size": 512, "test_size": 128},
        algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
        global_rounds=TOTAL_UPDATES // 4,
        batch_size=32,
        seed=0,
        scheduler={
            "name": "hier_async",
            "heterogeneity": dict(INNER_HETERO),
            "outer_heterogeneity": dict(OUTER_HETERO),
            **ARMS[arm],
        },
    )
    metrics = engine.run_async(total_updates=TOTAL_UPDATES)
    scheduler = engine.scheduler
    engine.shutdown()
    return metrics, scheduler


def main() -> None:
    print(f"{'arm':>12} {'tiers':>16} {'sim makespan':>13} {'updates':>8} "
          f"{'outer aggs':>11} {'final acc':>10}")
    baseline = None
    for i, arm in enumerate(ARMS):
        metrics, scheduler = run(arm, 52000 + 50 * i)
        span = metrics.sim_makespan()
        if baseline is None:
            baseline = span
        tiers = f"{scheduler.inner}/{scheduler.outer}"
        speedup = f"({baseline / span:.2f}x)" if span else ""
        print(f"{arm:>12} {tiers:>16} {span:>10.2f}s {speedup:<8} "
              f"{metrics.total_applied():>5} {len(metrics.history):>11} "
              f"{metrics.final_accuracy():>10.3f}")
        for site, collector in enumerate(scheduler.site_metrics):
            last = collector.history[-1] if collector.history else None
            site_now = scheduler.sites[site].inner.now
            print(f"{'':>12}   site{site}: {collector.total_applied():>3} inner updates, "
                  f"{len(collector.history)} site rounds, "
                  f"site clock {site_now:.2f}s"
                  + (f", last loss {last.train_loss:.3f}" if last else ""))


if __name__ == "__main__":
    main()
