#!/usr/bin/env python3
"""Hierarchical async federation: a slow site no longer stalls the world.

Two sites (2 trainers each) federate through their site heads to a global
root — the paper's cross-facility tree (Fig. 1d / Fig. 7) — under one seed,
one intra-site straggler model, and one heavy-tailed cross-site link whose
persistent per-site speed spread makes one site simply slower.  The arms
differ only in the per-tier execution policies (``scheduler.inner`` /
``scheduler.outer``):

* ``all_sync``     — barrier at both tiers: the synchronous hierarchy pays
                     the slowest site's link every outer round;
* ``async_outer``  — sync inside sites, async HierFAVG across them: the
                     root merges each site upload on arrival with a
                     staleness discount;
* ``mixed``        — fedbuff inside sites, fedasync across them.

Latency is *virtual* (no sleeping): makespans are what a WAN deployment
would see, reproduced in milliseconds of laptop time.  Each arm is one
:class:`ExperimentSpec` differing only in its ``scheduler`` field.

Run:  python examples/hier_async.py
"""

import os

from repro import DataSpec, Experiment, ExperimentSpec, SchedulerSpec, TrainSpec

SMOKE = bool(int(os.environ.get("EXAMPLES_SMOKE", "0")))

INNER_HETERO = {"latency": "lognormal", "mean": 0.1, "sigma": 0.8}
OUTER_HETERO = {"latency": "lognormal", "mean": 1.0, "sigma": 0.8, "client_spread": 1.0}

ARMS = {
    "all_sync": {"inner": "sync", "outer": "sync"},
    "async_outer": {"inner": "sync", "outer": "fedasync"},
    "mixed": {"inner": "fedbuff", "outer": "fedasync"},
}

TOTAL_UPDATES = 8 if SMOKE else 24
TRAIN_SIZE = 256 if SMOKE else 512


def run(arm: str, port: int):
    spec = ExperimentSpec(
        topology="hierarchical",
        topology_kwargs={
            "num_sites": 2,
            "clients_per_site": 2,
            "inner_comm": {"backend": "torchdist", "master_port": port},
            "outer_comm": {"backend": "grpc", "master_port": port + 1000, "transport": "inproc"},
        },
        data=DataSpec(dataset="blobs", kwargs={"train_size": TRAIN_SIZE, "test_size": 128}),
        train=TrainSpec(
            algorithm="fedavg",
            algorithm_kwargs={"lr": 0.05, "local_epochs": 1},
            model="mlp",
            global_rounds=TOTAL_UPDATES // 4,
        ),
        scheduler=SchedulerSpec(
            name="hier_async",
            kwargs={
                "heterogeneity": dict(INNER_HETERO),
                "outer_heterogeneity": dict(OUTER_HETERO),
                **ARMS[arm],
            },
        ),
        total_updates=TOTAL_UPDATES,
        seed=0,
    )
    experiment = Experiment(spec)
    result = experiment.run()
    return result, experiment.engine.scheduler


def main() -> None:
    print(f"{'arm':>12} {'tiers':>16} {'sim makespan':>13} {'updates':>8} "
          f"{'outer aggs':>11} {'final acc':>10}")
    baseline = None
    for i, arm in enumerate(ARMS):
        result, scheduler = run(arm, 52000 + 50 * i)
        span = result.sim_makespan()
        if baseline is None:
            baseline = span
        tiers = f"{scheduler.inner}/{scheduler.outer}"
        speedup = f"({baseline / span:.2f}x)" if span else ""
        print(f"{arm:>12} {tiers:>16} {span:>10.2f}s {speedup:<8} "
              f"{result.total_applied():>5} {len(result.history):>11} "
              f"{result.final_accuracy():>10.3f}")
        for site, collector in enumerate(scheduler.site_metrics):
            last = collector.history[-1] if collector.history else None
            site_now = scheduler.sites[site].inner.now
            print(f"{'':>12}   site{site}: {collector.total_applied():>3} inner updates, "
                  f"{len(collector.history)} site rounds, "
                  f"site clock {site_now:.2f}s"
                  + (f", last loss {last.train_loss:.3f}" if last else ""))


if __name__ == "__main__":
    main()
