"""Built-in configuration store (the framework's shipped config groups).

``builtin_store()`` returns a :class:`~repro.config.compose.ConfigStore`
over this package's YAML tree, so experiments compose exactly as in the
paper's Fig. 2::

    from repro.conf import builtin_store
    from repro.config import compose

    cfg = compose(builtin_store(), "experiment",
                  overrides=["algorithm=fedprox", "+algorithm.mu=0.1",
                             "topology.num_clients=16"])
"""

import os

from repro.config.compose import ConfigStore

__all__ = ["builtin_store", "CONF_DIR"]

CONF_DIR = os.path.dirname(os.path.abspath(__file__))


def builtin_store() -> ConfigStore:
    return ConfigStore(CONF_DIR)
