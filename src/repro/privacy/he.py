"""Homomorphic-encryption aggregation over fixed-point-packed updates.

Pipeline (what TenSEAL's CKKS batching does, in Paillier form):

1. quantize each float32 entry to a ``value_bits``-bit fixed-point integer
   (two's complement, clipped);
2. pack ``values_per_ciphertext`` slots into one big int, each slot padded
   with ``headroom_bits`` so up to 2^headroom client updates can be *added
   under encryption* without inter-slot carry;
3. encrypt each packed int with Paillier; the aggregator multiplies
   ciphertexts (slot-wise plaintext addition) and the key holder decrypts
   and unpacks.

``aggregate_encrypted`` + ``decrypt_sum`` reproduce FedAvg's sum without the
server ever seeing an individual update.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.privacy.paillier import PaillierKeyPair, generate_keypair

__all__ = ["HomomorphicEncryption"]


class HomomorphicEncryption:
    def __init__(
        self,
        key_bits: int = 512,
        value_bits: int = 24,
        frac_bits: int = 12,
        headroom_bits: int = 8,
        keypair: Optional[PaillierKeyPair] = None,
        seed: Optional[int] = None,
    ) -> None:
        if value_bits + headroom_bits > 62:
            raise ValueError("slot width (value_bits + headroom_bits) must fit in 62 bits")
        self.keypair = keypair if keypair is not None else generate_keypair(key_bits, seed=seed)
        self.value_bits = value_bits
        self.frac_bits = frac_bits
        self.headroom_bits = headroom_bits
        self.slot_bits = value_bits + headroom_bits
        # leave 2 safety bits below the modulus
        self.slots_per_ciphertext = max(1, (self.keypair.public.bits - 2) // self.slot_bits)
        self.scale = float(1 << frac_bits)
        self._value_max = (1 << (value_bits - 1)) - 1

    # -- fixed point -----------------------------------------------------------
    def quantize(self, vector: np.ndarray) -> np.ndarray:
        q = np.round(np.asarray(vector, dtype=np.float64) * self.scale)
        return np.clip(q, -self._value_max, self._value_max).astype(np.int64)

    def dequantize(self, values: np.ndarray, clients: int = 1) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) / self.scale).astype(np.float32)

    # -- packing ----------------------------------------------------------------
    def _pack(self, ints: np.ndarray) -> int:
        """Pack signed slot values into one big int (offset binary per slot).

        The offset is ``2^(value_bits-1)`` — just enough to make each value
        non-negative — so ``2^headroom_bits`` client contributions can add
        without carrying into the neighbouring slot.
        """
        offset = 1 << (self.value_bits - 1)
        packed = 0
        for v in ints[::-1]:
            packed = (packed << self.slot_bits) | (int(v) + offset)
        return packed

    def _unpack(self, packed: int, count: int, clients: int) -> np.ndarray:
        mask = (1 << self.slot_bits) - 1
        offset = (1 << (self.value_bits - 1)) * clients  # offsets add across clients
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            out[i] = (packed & mask) - offset
            packed >>= self.slot_bits
        return out

    # -- public API ----------------------------------------------------------------
    def encrypt(self, vector: np.ndarray) -> List[int]:
        """Encrypt a float vector into a list of ciphertexts."""
        q = self.quantize(vector)
        ciphertexts: List[int] = []
        for start in range(0, q.size, self.slots_per_ciphertext):
            chunk = q[start : start + self.slots_per_ciphertext]
            ciphertexts.append(self.keypair.public.encrypt(self._pack(chunk)))
        return ciphertexts

    def aggregate_encrypted(self, client_ciphertexts: Sequence[List[int]]) -> List[int]:
        """Slot-wise sum under encryption (ciphertext products)."""
        if not client_ciphertexts:
            raise ValueError("nothing to aggregate")
        n_clients = len(client_ciphertexts)
        if n_clients > (1 << self.headroom_bits):
            raise ValueError(
                f"{n_clients} clients exceed headroom for {self.headroom_bits} bits"
            )
        length = len(client_ciphertexts[0])
        if any(len(c) != length for c in client_ciphertexts):
            raise ValueError("ragged ciphertext lists")
        return [
            self.keypair.public.add_many([c[i] for c in client_ciphertexts])
            for i in range(length)
        ]

    def decrypt_sum(self, ciphertexts: List[int], n_values: int, n_clients: int) -> np.ndarray:
        """Decrypt an aggregated ciphertext list back to the float *sum*."""
        values = np.empty(n_values, dtype=np.int64)
        pos = 0
        for c in ciphertexts:
            count = min(self.slots_per_ciphertext, n_values - pos)
            values[pos : pos + count] = self._unpack(self.keypair.private.decrypt(c), count, n_clients)
            pos += count
        return self.dequantize(values, n_clients)

    def roundtrip_mean(self, vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Full encrypted-FedAvg round: encrypt all, aggregate, decrypt, average."""
        encrypted = [self.encrypt(v) for v in vectors]
        agg = self.aggregate_encrypted(encrypted)
        total = self.decrypt_sum(agg, len(np.ravel(vectors[0])), len(vectors))
        return (total / len(vectors)).astype(np.float32)
