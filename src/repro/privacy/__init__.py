"""Privacy-preserving plugins: DP, HE, SA (the paper's §3.4.4 suite).

* :mod:`repro.privacy.dp` — L2 clipping + Gaussian/Laplace noise with an
  (ε, δ) budget accountant (PETINA substitute);
* :mod:`repro.privacy.paillier` / :mod:`repro.privacy.he` — the Paillier
  additively-homomorphic cryptosystem over fixed-point-packed updates
  (TenSEAL/SEAL substitute; genuine big-int modular arithmetic);
* :mod:`repro.privacy.secure_agg` — HMAC-derived pairwise masks that cancel
  in the sum, exactly the prototype the paper describes (HMAC + hashlib
  shared keys, to be replaced by Diffie-Hellman).
"""

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.dp import DifferentialPrivacy, gaussian_sigma, laplace_scale
from repro.privacy.he import HomomorphicEncryption
from repro.privacy.paillier import PaillierKeyPair, PaillierPublicKey, generate_keypair
from repro.privacy.secure_agg import SecureAggregation

__all__ = [
    "PrivacyAccountant",
    "DifferentialPrivacy",
    "gaussian_sigma",
    "laplace_scale",
    "HomomorphicEncryption",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "generate_keypair",
    "SecureAggregation",
]
