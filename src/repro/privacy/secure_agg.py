"""Secure Aggregation via HMAC-derived pairwise masks (the paper's prototype).

Exactly the construction §3.3 describes: "SA is currently prototyped with
HMAC and hashlib to generate a shared key between any two clients in a
deterministic manner" (Bonawitz et al.'s pairwise-mask structure, with the
DH key exchange stubbed by a deterministic HMAC of a group secret).

Protocol:

* pairwise key  k_ij = HMAC-SHA256(group_secret, "pair|i|j")   (i < j)
* mask stream   PRG(k_ij) = HMAC(k_ij, counter) blocks -> uint64 words
* client i uploads  y_i = q(x_i) + Σ_{j>i} m_ij − Σ_{j<i} m_ji   (mod 2⁶⁴)
* server sums:      Σ y_i = Σ q(x_i)                              (mod 2⁶⁴)

Updates are fixed-point encoded so cancellation is *exact* (property-tested:
the masked sum equals the plain sum bit-for-bit).  Mask expansion costs one
HMAC per 32 bytes per pair — which is why SA is the slowest mechanism in
Table 3b, a behaviour this implementation reproduces for the same reason.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["SecureAggregation"]


class SecureAggregation:
    """Pairwise-mask secure aggregation.

    ``key_exchange`` selects the key schedule:

    * ``"hmac"`` (paper's current prototype) — pairwise keys are HMACs of a
      shared group secret;
    * ``"dh"`` (paper's planned replacement, implemented here) — each client
      holds a Diffie-Hellman keypair; pairwise keys derive from the DH
      shared secrets of published public shares, so no group secret exists.
    """

    def __init__(
        self,
        n_clients: int,
        group_secret: bytes = b"omnifed-repro-group-secret",
        frac_bits: int = 20,
        key_exchange: str = "hmac",
        dh_seed: Optional[int] = None,
    ) -> None:
        if n_clients < 2:
            raise ValueError("secure aggregation needs at least 2 clients")
        if key_exchange not in ("hmac", "dh"):
            raise ValueError(f"unknown key exchange {key_exchange!r}")
        self.n_clients = n_clients
        self.group_secret = group_secret
        self.frac_bits = frac_bits
        self.scale = float(1 << frac_bits)
        self.key_exchange = key_exchange
        self._pair_keys: Dict[tuple, bytes] = {}
        if key_exchange == "dh":
            from repro.privacy.diffie_hellman import DHKeyPair

            # each client's keypair; public shares are what a real deployment
            # would broadcast in the protocol's round 0
            self._dh_keys = [
                DHKeyPair.generate(seed=(dh_seed + i) if dh_seed is not None else None)
                for i in range(n_clients)
            ]
            self.public_shares = [k.public for k in self._dh_keys]

    # -- key schedule --------------------------------------------------------
    def pair_key(self, i: int, j: int) -> bytes:
        """Shared key for the unordered pair (i, j)."""
        a, b = (i, j) if i < j else (j, i)
        key = self._pair_keys.get((a, b))
        if key is None:
            if self.key_exchange == "dh":
                from repro.privacy.diffie_hellman import derive_pair_key

                key = derive_pair_key(self._dh_keys[a], self.public_shares[b])
            else:
                key = hmac.new(self.group_secret, f"pair|{a}|{b}".encode(), hashlib.sha256).digest()
            self._pair_keys[(a, b)] = key
        return key

    def _mask(self, key: bytes, n_values: int) -> np.ndarray:
        """Expand a pair key into ``n_values`` uint64 mask words."""
        words_per_block = 4  # SHA256 digest = 32 bytes = 4 uint64
        n_blocks = (n_values + words_per_block - 1) // words_per_block
        stream = bytearray()
        for counter in range(n_blocks):
            stream += hmac.new(key, struct.pack("<Q", counter), hashlib.sha256).digest()
        return np.frombuffer(bytes(stream[: n_values * 8]), dtype=np.uint64).copy()

    # -- fixed point -------------------------------------------------------------
    def encode(self, vector: np.ndarray) -> np.ndarray:
        q = np.round(np.asarray(vector, dtype=np.float64) * self.scale).astype(np.int64)
        return q.view(np.uint64)

    def decode_sum(self, total: np.ndarray) -> np.ndarray:
        return (total.view(np.int64).astype(np.float64) / self.scale).astype(np.float32)

    # -- protocol ------------------------------------------------------------------
    def mask_update(self, client: int, vector: np.ndarray) -> np.ndarray:
        """Client-side: encode and apply all pairwise masks (mod 2^64)."""
        if not (0 <= client < self.n_clients):
            raise ValueError(f"client {client} out of range")
        flat = np.ravel(vector)
        masked = self.encode(flat)
        with np.errstate(over="ignore"):
            for other in range(self.n_clients):
                if other == client:
                    continue
                mask = self._mask(self.pair_key(client, other), flat.size)
                if client < other:
                    masked = masked + mask  # uint64 wraps mod 2^64
                else:
                    masked = masked - mask
        return masked

    def aggregate(self, masked_updates: Sequence[np.ndarray]) -> np.ndarray:
        """Server-side: sum masked updates; masks cancel, returns the float sum."""
        if len(masked_updates) != self.n_clients:
            raise ValueError(
                f"need all {self.n_clients} masked updates, got {len(masked_updates)} "
                "(dropout recovery is future work here, as in the paper)"
            )
        with np.errstate(over="ignore"):
            total = np.zeros_like(masked_updates[0])
            for m in masked_updates:
                total = total + m
        return self.decode_sum(total)

    def aggregate_mean(self, masked_updates: Sequence[np.ndarray]) -> np.ndarray:
        return (self.aggregate(masked_updates) / self.n_clients).astype(np.float32)

    def roundtrip_mean(self, vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Full SA round over plaintext inputs (for tests/benchmarks)."""
        masked = [self.mask_update(i, v) for i, v in enumerate(vectors)]
        return self.aggregate_mean(masked)
