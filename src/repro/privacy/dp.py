"""Differential privacy for model updates: clip + calibrated noise.

The mechanism is the standard DP-SGD-style update release (Abadi et al.):
each client's update vector is clipped to L2 norm ``clip_norm`` (bounding
sensitivity) and perturbed with Gaussian noise of
``sigma = clip_norm * sqrt(2 ln(1.25/delta)) / epsilon`` per release
(classic analytic calibration, valid for epsilon <= 1 per release and the
convention used by PETINA-style libraries for larger budgets), or Laplace
noise of scale ``clip_norm / epsilon`` for pure ε-DP.

Larger ε ⇒ less noise ⇒ higher accuracy — the trend Table 3a reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.privacy.accountant import PrivacyAccountant

__all__ = ["DifferentialPrivacy", "gaussian_sigma", "laplace_scale"]


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Analytic Gaussian-mechanism noise stddev for one (ε, δ) release."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not (0.0 < delta < 1.0):
        raise ValueError("delta must be in (0, 1)")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def laplace_scale(epsilon: float, sensitivity: float) -> float:
    """Laplace-mechanism scale for pure ε-DP (L1 sensitivity)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return sensitivity / epsilon


class DifferentialPrivacy:
    """Clip-and-noise mechanism applied to flat update vectors.

    Configured from YAML exactly like the paper's
    ``src.omnifed.privacy.DifferentialPrivacy`` (ε, δ, clip norm, mechanism).
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        delta: float = 1e-5,
        clip_norm: float = 1.0,
        mechanism: str = "gaussian",
        seed: int = 0,
    ) -> None:
        if mechanism not in ("gaussian", "laplace"):
            raise ValueError(f"unknown DP mechanism {mechanism!r}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.clip_norm = float(clip_norm)
        self.mechanism = mechanism
        self.accountant = PrivacyAccountant(target_delta=self.delta)
        self._rng = np.random.default_rng(seed)

    # -- pieces -------------------------------------------------------------
    def clip(self, vector: np.ndarray) -> np.ndarray:
        """Scale ``vector`` down to at most ``clip_norm`` in L2."""
        flat = np.asarray(vector, dtype=np.float32)
        # norm in float64: float32 squares overflow for large updates
        norm = float(np.linalg.norm(flat.astype(np.float64)))
        if norm > self.clip_norm and norm > 0:
            flat = flat * (self.clip_norm / norm)
        return flat

    @property
    def sigma(self) -> float:
        if self.mechanism == "gaussian":
            return gaussian_sigma(self.epsilon, self.delta, self.clip_norm)
        return laplace_scale(self.epsilon, self.clip_norm)

    def add_noise(self, vector: np.ndarray) -> np.ndarray:
        flat = np.asarray(vector, dtype=np.float32)
        if self.mechanism == "gaussian":
            noise = self._rng.normal(0.0, self.sigma, size=flat.shape)
        else:
            noise = self._rng.laplace(0.0, self.sigma, size=flat.shape)
        return (flat + noise.astype(np.float32)).astype(np.float32)

    # -- the mechanism ---------------------------------------------------------
    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Privatize one update release and account for it."""
        out = self.add_noise(self.clip(vector))
        self.accountant.record_release(self.epsilon, self.delta)
        return out

    # -- client-pool state swap ------------------------------------------------
    # noise draws and the privacy ledger belong to the logical client, not
    # to whichever pool worker happens to run its turn
    def export_state(self) -> dict:
        return {
            "rng": self._rng.bit_generator.state,
            "accountant": self.accountant.export_state(),
        }

    def import_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.accountant.import_state(state["accountant"])

    def __repr__(self) -> str:
        return (
            f"DifferentialPrivacy(eps={self.epsilon}, delta={self.delta}, "
            f"clip={self.clip_norm}, mechanism={self.mechanism})"
        )
