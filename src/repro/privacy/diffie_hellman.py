"""Finite-field Diffie-Hellman key agreement for Secure Aggregation.

The paper's §3.3: "SA is currently prototyped with HMAC ... We plan to
replace this with Diffie-Hellman key exchange."  This module implements that
plan: classic DH over a fixed multiplicative group.  Each client draws a
secret, publishes a public share, and derives the pairwise mask keys from
the shared secret — no group-wide pre-shared secret needed.

The default group's prime is derived from a nothing-up-my-sleeve SHA-256
stream and verified by Miller-Rabin at first use (an offline environment
cannot fetch vetted RFC groups, and hand-transcribing one risks a composite
modulus — worse than a transparent derivation).  Production deployments
should swap in a standardized group; see the README's security note.

``SecureAggregation`` consumes these via ``key_exchange="dh"``.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Optional

from repro.privacy.paillier import _is_probable_prime

__all__ = ["DHParameters", "DHKeyPair", "derive_pair_key", "default_group"]


@dataclass(frozen=True)
class DHParameters:
    """A multiplicative group (p, g) with prime modulus."""

    p: int
    g: int = 2

    @property
    def bits(self) -> int:
        return self.p.bit_length()

    def validate(self) -> None:
        if not _is_probable_prime(self.p, rounds=16):
            raise ValueError("DH modulus is not prime")
        if not (1 < self.g < self.p - 1):
            raise ValueError("generator out of range")


def _derived_prime(bits: int, label: str) -> int:
    """First probable prime in a SHA-256 stream keyed by ``label`` (deterministic)."""
    i = 0
    while True:
        out = b""
        counter = 0
        while len(out) * 8 < bits:
            out += hashlib.sha256(f"{label}-{i}-{counter}".encode()).digest()
            counter += 1
        candidate = int.from_bytes(out[: bits // 8], "big")
        candidate |= (1 << (bits - 1)) | 1  # full bit length, odd
        if _is_probable_prime(candidate, rounds=24):
            return candidate
        i += 1


_DEFAULT_GROUP: Optional[DHParameters] = None


def default_group(bits: int = 1024) -> DHParameters:
    """The cached default group (derived + primality-verified on first use)."""
    global _DEFAULT_GROUP
    if _DEFAULT_GROUP is None or _DEFAULT_GROUP.bits != bits:
        _DEFAULT_GROUP = DHParameters(p=_derived_prime(bits, "omnifed-repro-dh"), g=2)
    return _DEFAULT_GROUP


@dataclass(frozen=True)
class DHKeyPair:
    """One participant's (secret, public-share) pair."""

    params: DHParameters
    secret: int
    public: int

    @staticmethod
    def generate(
        params: Optional[DHParameters] = None, seed: Optional[int] = None
    ) -> "DHKeyPair":
        """Draw a fresh secret exponent; ``seed`` only for deterministic tests."""
        params = params if params is not None else default_group()
        if seed is not None:
            digest = hashlib.sha256(f"dh-test-seed-{seed}".encode()).digest()
            secret = int.from_bytes(digest * 8, "big") % (params.p - 2) + 1
        else:
            secret = secrets.randbelow(params.p - 2) + 1
        return DHKeyPair(params, secret, pow(params.g, secret, params.p))

    def shared_secret(self, other_public: int) -> int:
        """g^(ab) mod p against another participant's public share."""
        if not (1 < other_public < self.params.p - 1):
            raise ValueError("peer public share out of range (possible small-subgroup attack)")
        return pow(other_public, self.secret, self.params.p)


def derive_pair_key(keypair: DHKeyPair, other_public: int, context: bytes = b"omnifed-sa") -> bytes:
    """HKDF-style key derivation from the DH shared secret (32 bytes)."""
    shared = keypair.shared_secret(other_public)
    raw = shared.to_bytes((keypair.params.bits + 7) // 8, "big")
    return hashlib.sha256(context + b"|" + raw).digest()
