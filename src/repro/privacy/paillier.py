"""Paillier additively-homomorphic cryptosystem (pure Python big-int).

The TenSEAL/SEAL substitute: real modular-exponentiation cryptography so HE
overhead measurements (Table 3b) reflect genuine asymmetric-crypto cost.

Scheme (g = n + 1 simplification):

* keygen: primes p, q; n = pq; λ = lcm(p-1, q-1); μ = λ⁻¹ mod n
* encrypt(m): c = (1 + m·n) · rⁿ  mod n²      (r random in Z*_n)
* decrypt(c): m = L(c^λ mod n²) · μ mod n,    L(x) = (x-1)/n
* add: E(a)·E(b) mod n² = E(a+b);  scalar: E(a)^k = E(k·a)

Key sizes here default to 512 bits — small for production but real enough
that cost scales correctly; tests use 128 for speed.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["PaillierPublicKey", "PaillierPrivateKey", "PaillierKeyPair", "generate_keypair"]

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71]


def _is_probable_prime(n: int, rounds: int = 20, rng: Optional[secrets.SystemRandom] = None) -> bool:
    """Miller-Rabin with fixed witnesses plus random rounds."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rand = rng if rng is not None else secrets.SystemRandom()
    witnesses = _SMALL_PRIMES[:8] + [rand.randrange(2, n - 1) for _ in range(rounds)]
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rand: secrets.SystemRandom) -> int:
    while True:
        candidate = rand.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng=rand):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def encrypt(self, plaintext: int, r: Optional[int] = None) -> int:
        """Encrypt a non-negative integer < n."""
        if not (0 <= plaintext < self.n):
            raise ValueError("plaintext out of range [0, n)")
        n, n2 = self.n, self.n_squared
        if r is None:
            rand = secrets.SystemRandom()
            while True:
                r = rand.randrange(1, n)
                if math.gcd(r, n) == 1:
                    break
        # g = n+1  =>  g^m = 1 + m*n (mod n^2), avoiding one modexp
        return ((1 + plaintext * n) % n2) * pow(r, n, n2) % n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition of two ciphertexts."""
        return c1 * c2 % self.n_squared

    def add_many(self, ciphertexts: List[int]) -> int:
        acc = 1
        n2 = self.n_squared
        for c in ciphertexts:
            acc = acc * c % n2
        return acc

    def scalar_mul(self, c: int, k: int) -> int:
        """Homomorphic multiplication of the plaintext by integer ``k``."""
        return pow(c, k, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    public: PaillierPublicKey
    lam: int  # lcm(p-1, q-1)
    mu: int  # lam^{-1} mod n

    def decrypt(self, ciphertext: int) -> int:
        n, n2 = self.public.n, self.public.n_squared
        x = pow(ciphertext, self.lam, n2)
        l_value = (x - 1) // n
        return l_value * self.mu % n


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    private: PaillierPrivateKey


def generate_keypair(bits: int = 512, seed: Optional[int] = None) -> PaillierKeyPair:
    """Generate a keypair with an n of approximately ``bits`` bits.

    ``seed`` makes generation deterministic (tests only — never for real
    deployments, as the docstring of any honest crypto shim must say).
    """
    if bits < 64:
        raise ValueError("key size below 64 bits is meaningless even for tests")
    if seed is not None:
        import random as _random

        rand = _random.Random(seed)  # type: ignore[assignment]
        rand.getrandbits_ = rand.getrandbits  # appease typing below
    else:
        rand = secrets.SystemRandom()  # type: ignore[assignment]
    half = bits // 2
    while True:
        p = _random_prime(half, rand)  # type: ignore[arg-type]
        q = _random_prime(bits - half, rand)  # type: ignore[arg-type]
        if p != q:
            n = p * q
            if n.bit_length() >= bits - 1:
                break
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    mu = pow(lam, -1, n)
    public = PaillierPublicKey(n)
    return PaillierKeyPair(public, PaillierPrivateKey(public, lam, mu))
