"""Privacy-budget accounting across rounds.

Tracks per-release (ε, δ) and reports the cumulative guarantee under:

* **basic composition** — ε and δ add linearly;
* **advanced composition** (Dwork & Roth, Thm 3.20) — for k releases of
  (ε, δ) each and slack δ', the total is
  ``ε_total = ε sqrt(2k ln(1/δ')) + k ε (e^ε - 1)`` with δ_total = kδ + δ'.

The engine queries the accountant each round so experiments can stop when a
budget is exhausted.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["PrivacyAccountant"]


class PrivacyAccountant:
    def __init__(self, target_delta: float = 1e-5) -> None:
        if not (0.0 < target_delta < 1.0):
            raise ValueError("target_delta must be in (0, 1)")
        self.target_delta = target_delta
        self.releases: List[Tuple[float, float]] = []

    def record_release(self, epsilon: float, delta: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.releases.append((float(epsilon), float(delta)))

    # per-client ledger swap for pooled execution
    def export_state(self) -> dict:
        return {"releases": list(self.releases)}

    def import_state(self, state: dict) -> None:
        self.releases = list(state["releases"])

    @property
    def steps(self) -> int:
        return len(self.releases)

    def basic_composition(self) -> Tuple[float, float]:
        """(ε, δ) under linear composition."""
        return (
            sum(e for e, _ in self.releases),
            sum(d for _, d in self.releases),
        )

    def advanced_composition(self, slack_delta: float = None) -> Tuple[float, float]:
        """(ε, δ) under advanced composition with slack δ' (homogeneous case).

        Heterogeneous releases are handled conservatively with the max ε.
        """
        if not self.releases:
            return 0.0, 0.0
        slack = self.target_delta if slack_delta is None else slack_delta
        k = len(self.releases)
        eps = max(e for e, _ in self.releases)
        total_delta = sum(d for _, d in self.releases) + slack
        total_eps = eps * math.sqrt(2.0 * k * math.log(1.0 / slack)) + k * eps * (math.exp(eps) - 1.0)
        return total_eps, total_delta

    def best_epsilon(self) -> float:
        """Tightest cumulative ε among the supported composition theorems."""
        basic_eps, _ = self.basic_composition()
        adv_eps, _ = self.advanced_composition()
        return min(basic_eps, adv_eps)

    def reset(self) -> None:
        self.releases.clear()
