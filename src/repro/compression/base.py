"""Compressor interface, payload container, and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.utils.registry import Registry

__all__ = ["CompressedPayload", "Compressor", "IdentityCompressor", "COMPRESSORS", "build_compressor"]

COMPRESSORS: Registry["Compressor"] = Registry("compressor")


@dataclass
class CompressedPayload:
    """What actually travels: named arrays plus JSON-safe metadata.

    ``compressed_bytes`` is the transfer size charged to communicators;
    ``original_bytes`` lets callers report effective compression factors.
    """

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, Any] = field(default_factory=dict)
    original_bytes: int = 0

    @property
    def compressed_bytes(self) -> int:
        return int(sum(a.nbytes for a in self.arrays.values()))

    @property
    def ratio(self) -> float:
        """Effective compression factor (original / compressed)."""
        c = self.compressed_bytes
        return float(self.original_bytes) / c if c else float("inf")


class Compressor:
    """Compress/decompress flat float32 update vectors.

    Invariant every implementation keeps: ``decompress`` returns a vector of
    the original length, and a lossless configuration (e.g. TopK with
    ratio 1) round-trips exactly.
    """

    #: which collective the compressed form composes with (paper §3.4.2:
    #: sparsification needs all-gather; quantization/low-rank all-reduce)
    collective_hint: str = "allgather"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        raise NotImplementedError

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        raise NotImplementedError

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        """Convenience: what the receiver reconstructs from ``vector``."""
        return self.decompress(self.compress(vector))

    # stateful compressors (PowerSGD warm start, error feedback) reset here
    def reset(self) -> None:
        pass

    # ------------------------------------------------------------------
    # client-pool state swap: stateful compressors carry *per-client* state
    # (error-feedback residuals, warm-start factors, stochastic streams)
    # that must follow the logical client between pool turns
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Snapshot per-client compressor state (stateless default: empty)."""
        return {}

    def import_state(self, state: Dict[str, Any]) -> None:
        """Adopt a client's snapshot (stateless default: no-op)."""

    @staticmethod
    def _flat32(vector: np.ndarray) -> np.ndarray:
        arr = np.asarray(vector, dtype=np.float32).ravel()
        if arr.size == 0:
            raise ValueError("cannot compress an empty vector")
        return arr


@COMPRESSORS.register("identity", "none")
class IdentityCompressor(Compressor):
    """No-op compressor (the default communicator path)."""

    collective_hint = "allreduce"

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        return CompressedPayload({"values": flat.copy()}, {"n": flat.size}, flat.nbytes)

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return payload.arrays["values"].copy()


def build_compressor(name: str, /, **kwargs) -> Compressor:
    """Build a registered compressor (``topk``, ``qsgd``, ``powersgd``, ...)."""
    return COMPRESSORS.build(name, **kwargs)
