"""TopK sparsification (Shi et al. 2019): keep the k largest-magnitude entries.

``ratio`` follows the paper's notation: ratio 1000 ("1000x") keeps n/1000
entries.  Selection uses ``argpartition`` (O(n)) rather than a full sort.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["TopK"]


@COMPRESSORS.register("topk")
class TopK(Compressor):
    """Magnitude top-k; payload is (indices, values)."""

    collective_hint = "allgather"

    def __init__(self, ratio: float = 10.0, k: Optional[int] = None) -> None:
        if k is None and ratio < 1.0:
            raise ValueError("ratio must be >= 1 (ratio == original/kept)")
        self.ratio = float(ratio)
        self.k = k

    def _k_for(self, n: int) -> int:
        if self.k is not None:
            return max(1, min(int(self.k), n))
        return max(1, int(round(n / self.ratio)))

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        k = self._k_for(flat.size)
        if k >= flat.size:
            idx = np.arange(flat.size, dtype=np.uint32)
        else:
            idx = np.argpartition(np.abs(flat), flat.size - k)[flat.size - k :].astype(np.uint32)
        return CompressedPayload(
            {"indices": idx, "values": flat[idx]},
            {"n": int(flat.size), "k": int(k)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(int(payload.meta["n"]), dtype=np.float32)
        out[payload.arrays["indices"].astype(np.int64)] = payload.arrays["values"]
        return out
