"""Gradient/update compression plugins (the paper's §3.4.2 suite).

All compressors operate on flat float32 vectors (the framework's update
currency) and return a :class:`~repro.compression.base.CompressedPayload`
whose ``compressed_bytes`` drive communication accounting.

Sparsification: :class:`TopK`, :class:`RandomK`, :class:`DGC`,
:class:`RedSync`, :class:`SIDCo` (these pair with all-gather collectives).
Quantization: :class:`QSGD` (8/16-bit, all-reduce compatible).
Low-rank: :class:`PowerSGD` (rank-r power iteration, all-reduce compatible).

:class:`ErrorFeedback` wraps any compressor with residual accumulation
(Stich et al.), which TopK/PowerSGD need for convergence at high ratios.
"""

from repro.compression.base import (
    COMPRESSORS,
    CompressedPayload,
    Compressor,
    IdentityCompressor,
    build_compressor,
)
from repro.compression.dgc import DGC
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.powersgd import PowerSGD
from repro.compression.qsgd import QSGD
from repro.compression.randomk import RandomK
from repro.compression.redsync import RedSync
from repro.compression.sidco import SIDCo
from repro.compression.topk import TopK

__all__ = [
    "COMPRESSORS",
    "Compressor",
    "CompressedPayload",
    "IdentityCompressor",
    "build_compressor",
    "TopK",
    "RandomK",
    "DGC",
    "RedSync",
    "SIDCo",
    "QSGD",
    "PowerSGD",
    "ErrorFeedback",
]
