"""Deep Gradient Compression (Lin et al. 2017), the sampling-threshold variant.

DGC avoids TopK's full selection cost on huge tensors by *sampling* a small
fraction of entries, taking the top-k of the sample to estimate a magnitude
threshold, then keeping everything above it.  The kept count therefore
fluctuates around n/ratio.  (The original paper couples this with momentum
correction and gradient clipping on the optimizer side; residual accumulation
is provided by the :class:`~repro.compression.error_feedback.ErrorFeedback`
wrapper, matching how OmniFed composes plugins.)
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["DGC"]


@COMPRESSORS.register("dgc")
class DGC(Compressor):
    collective_hint = "allgather"

    def __init__(self, ratio: float = 10.0, sample_fraction: float = 0.01, seed: int = 0) -> None:
        if ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        if not (0.0 < sample_fraction <= 1.0):
            raise ValueError("sample_fraction must be in (0, 1]")
        self.ratio = float(ratio)
        self.sample_fraction = float(sample_fraction)
        self._rng = np.random.default_rng(seed)

    def export_state(self):
        # the sampling stream is per-client: a pool worker must not burn one
        # client's draws on another client's turns
        return {"rng": self._rng.bit_generator.state}

    def import_state(self, state) -> None:
        self._rng.bit_generator.state = state["rng"]

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        n = flat.size
        target_k = max(1, int(round(n / self.ratio)))
        magnitudes = np.abs(flat)

        sample_size = max(min(n, 256), int(n * self.sample_fraction))
        if sample_size < n:
            sample = magnitudes[self._rng.choice(n, size=sample_size, replace=False)]
        else:
            sample = magnitudes
        sample_k = max(1, int(round(sample.size * target_k / n)))
        threshold = np.partition(sample, sample.size - sample_k)[sample.size - sample_k]

        idx = np.flatnonzero(magnitudes >= threshold)
        if idx.size == 0:  # degenerate threshold (all-equal vectors)
            idx = np.array([int(np.argmax(magnitudes))])
        # hierarchical re-selection if the estimate overshot badly (DGC's trick)
        if idx.size > 2 * target_k:
            sub = np.argpartition(magnitudes[idx], idx.size - target_k)[idx.size - target_k :]
            idx = idx[sub]
        return CompressedPayload(
            {"indices": idx.astype(np.uint32), "values": flat[idx]},
            {"n": int(n), "k": int(idx.size), "threshold": float(threshold)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(int(payload.meta["n"]), dtype=np.float32)
        out[payload.arrays["indices"].astype(np.int64)] = payload.arrays["values"]
        return out
