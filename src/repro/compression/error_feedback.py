"""Error-feedback wrapper (Stich et al. 2018; Karimireddy et al. 2019).

Accumulates the compression residual locally and adds it to the next update
before compressing: ``c_t = C(g_t + e_{t-1})``, ``e_t = (g_t + e_{t-1}) -
decompress(c_t)``.  Biased compressors (TopK at high ratios, PowerSGD at low
rank) need this for convergence; the wrapper composes with any compressor,
mirroring OmniFed's plugin stacking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["ErrorFeedback"]


@COMPRESSORS.register("error_feedback", "ef")
class ErrorFeedback(Compressor):
    def __init__(self, inner: Compressor) -> None:
        self.inner = inner
        self.collective_hint = inner.collective_hint
        self._residual: Optional[np.ndarray] = None

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        if self._residual is not None and self._residual.size == flat.size:
            corrected = flat + self._residual
        else:
            corrected = flat.copy()
        payload = self.inner.compress(corrected)
        reconstructed = self.inner.decompress(payload)
        self._residual = corrected - reconstructed
        return payload

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        return self.inner.decompress(payload)

    @property
    def residual_norm(self) -> float:
        return float(np.linalg.norm(self._residual)) if self._residual is not None else 0.0

    def reset(self) -> None:
        self._residual = None
        self.inner.reset()

    # residuals are per-client: swap them (and whatever the wrapped
    # compressor keeps) when a pool worker changes clients
    def export_state(self):
        return {"residual": self._residual, "inner": self.inner.export_state()}

    def import_state(self, state) -> None:
        self._residual = state["residual"]
        self.inner.import_state(state["inner"])
