"""SIDCo (Abdelmoniem et al. 2021): statistical model-based thresholding.

Gradients are modeled as sparsity-inducing double-exponential (Laplace):
P(|g| > t) = exp(-t/b) with scale b = mean(|g|), so the threshold for target
ratio r is ``t = -b * ln(1/r)`` — no sorting, no search.  A few fitting
stages re-estimate b on the tail to correct model mismatch (the paper's
multi-stage estimator).
"""

from __future__ import annotations

import math

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["SIDCo"]


@COMPRESSORS.register("sidco")
class SIDCo(Compressor):
    collective_hint = "allgather"

    def __init__(self, ratio: float = 10.0, stages: int = 3) -> None:
        if ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        self.ratio = float(ratio)
        self.stages = max(1, int(stages))

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        n = flat.size
        target_fraction = min(1.0, 1.0 / self.ratio)
        mags = np.abs(flat)

        # stage-wise: each stage keeps fraction f_i with prod f_i = target,
        # re-fitting the Laplace scale on the surviving tail
        per_stage = target_fraction ** (1.0 / self.stages)
        threshold = 0.0
        tail = mags
        for _ in range(self.stages):
            b = float(tail.mean())
            if b <= 0:
                break
            threshold += -b * math.log(per_stage)
            tail = mags[mags >= threshold]
            if tail.size == 0:
                break
        idx = np.flatnonzero(mags >= threshold)
        target_k = max(1, int(round(n * target_fraction)))
        if idx.size < max(1, target_k // 2):
            # model mismatch over-sparsified; fall back to exact selection
            # (SIDCo's fitting-error correction stage)
            idx = np.argpartition(mags, n - target_k)[n - target_k :]
        elif idx.size > 2 * target_k:
            sub = np.argpartition(mags[idx], idx.size - target_k)[idx.size - target_k :]
            idx = idx[sub]
        return CompressedPayload(
            {"indices": idx.astype(np.uint32), "values": flat[idx]},
            {"n": int(n), "k": int(idx.size), "threshold": float(threshold)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(int(payload.meta["n"]), dtype=np.float32)
        out[payload.arrays["indices"].astype(np.int64)] = payload.arrays["values"]
        return out
