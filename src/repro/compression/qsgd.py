"""QSGD stochastic quantization (Alistarh et al. 2017).

Each entry is quantized to one of ``s = 2^bits - 1`` non-negative levels of
|x|/||x||2 with stochastic rounding, making the quantizer *unbiased*:
E[decompress(compress(x))] = x (property-tested).  Levels travel as
uint8/uint16 with signs packed as bits, so 8-bit QSGD moves ~4x fewer bytes
than float32 and 16-bit ~2x — matching the paper's "2x and 4x" factors.
"""

from __future__ import annotations


import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["QSGD"]


@COMPRESSORS.register("qsgd")
class QSGD(Compressor):
    collective_hint = "allreduce"

    def __init__(self, bits: int = 8, seed: int = 0) -> None:
        if bits not in (2, 4, 8, 16):
            raise ValueError("bits must be one of 2, 4, 8, 16")
        self.bits = int(bits)
        self.levels = (1 << bits) - 1
        self._rng = np.random.default_rng(seed)

    def export_state(self):
        # stochastic-rounding draws are a per-client stream
        return {"rng": self._rng.bit_generator.state}

    def import_state(self, state) -> None:
        self._rng.bit_generator.state = state["rng"]

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        norm = float(np.linalg.norm(flat))
        if norm == 0.0:
            levels = np.zeros(flat.size, dtype=np.uint8 if self.bits <= 8 else np.uint16)
            signs = np.zeros((flat.size + 7) // 8, dtype=np.uint8)
            return CompressedPayload(
                {"levels": levels, "signs": signs, "norm": np.asarray([0.0], np.float32)},
                {"n": int(flat.size), "bits": self.bits},
                flat.nbytes,
            )
        scaled = np.abs(flat) / norm * self.levels
        floor = np.floor(scaled)
        prob = scaled - floor
        levels = floor + (self._rng.random(flat.size) < prob)
        dtype = np.uint8 if self.bits <= 8 else np.uint16
        levels = levels.astype(dtype)
        signs = np.packbits((flat < 0).astype(np.uint8))
        return CompressedPayload(
            {"levels": levels, "signs": signs, "norm": np.asarray([norm], np.float32)},
            {"n": int(flat.size), "bits": self.bits},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        n = int(payload.meta["n"])
        norm = float(payload.arrays["norm"][0])
        levels = payload.arrays["levels"].astype(np.float32)
        signs = np.unpackbits(payload.arrays["signs"], count=n).astype(np.float32)
        magnitude = levels / self.levels * norm
        return np.where(signs > 0, -magnitude, magnitude).astype(np.float32)
