"""RedSync (Fang et al. 2018): trimmed-threshold binary search selection.

RedSync finds a magnitude threshold by moving a ratio bound between the mean
and max of |g| — each iteration tests ``mean + r*(max-mean)`` and narrows the
search until the kept count lands within tolerance of the target k.  Cheaper
than sorting on accelerators; here it demonstrates the same plugin surface.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["RedSync"]


@COMPRESSORS.register("redsync")
class RedSync(Compressor):
    collective_hint = "allgather"

    def __init__(self, ratio: float = 10.0, tolerance: float = 0.2, max_iters: int = 20) -> None:
        if ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        self.ratio = float(ratio)
        self.tolerance = float(tolerance)
        self.max_iters = int(max_iters)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        n = flat.size
        target_k = max(1, int(round(n / self.ratio)))
        mags = np.abs(flat)
        lo, hi = float(mags.mean()), float(mags.max())
        if hi <= lo:  # constant-magnitude vector
            idx = np.arange(min(target_k, n))
        else:
            idx = np.flatnonzero(mags >= hi)
            left, right = 0.0, 1.0
            for _ in range(self.max_iters):
                mid = 0.5 * (left + right)
                threshold = lo + mid * (hi - lo)
                candidate = np.flatnonzero(mags >= threshold)
                k = candidate.size
                if k >= target_k:
                    idx = candidate
                if abs(k - target_k) <= self.tolerance * target_k and k >= 1:
                    idx = candidate if k >= 1 else idx
                    break
                if k > target_k:
                    left = mid  # raise threshold
                else:
                    right = mid  # lower threshold
            if idx.size == 0:
                idx = np.array([int(np.argmax(mags))])
            if idx.size > 2 * target_k:  # final trim
                sub = np.argpartition(mags[idx], idx.size - target_k)[idx.size - target_k :]
                idx = idx[sub]
        return CompressedPayload(
            {"indices": idx.astype(np.uint32), "values": flat[idx]},
            {"n": int(n), "k": int(idx.size)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        out = np.zeros(int(payload.meta["n"]), dtype=np.float32)
        out[payload.arrays["indices"].astype(np.int64)] = payload.arrays["values"]
        return out
