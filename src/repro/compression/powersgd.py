"""PowerSGD low-rank compression (Vogels et al. 2019).

The update vector is viewed as a matrix M (rows x cols ~ sqrt(n)); one step
of subspace (power) iteration with a warm-started Q gives
``P = orth(M Q)``, ``Q' = M^T P`` and the payload (P, Q') of size
``rank * (rows + cols)`` floats.  Reconstruction is ``P Q'^T``.  Warm-starting
Q across rounds is what makes rank-deficient updates converge — ``reset()``
clears it.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["PowerSGD"]


def _orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Gram-Schmidt via reduced QR (numerically stable enough at rank <= 64)."""
    q, _ = np.linalg.qr(matrix)
    return np.ascontiguousarray(q.astype(np.float32))


@COMPRESSORS.register("powersgd")
class PowerSGD(Compressor):
    collective_hint = "allreduce"

    def __init__(self, rank: int = 32, seed: int = 0, warm_start: bool = True) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = int(rank)
        self.seed = int(seed)
        self.warm_start = warm_start
        self._q_cache: Dict[Tuple[int, int], np.ndarray] = {}

    @staticmethod
    def _matrix_shape(n: int) -> Tuple[int, int]:
        rows = int(math.floor(math.sqrt(n)))
        rows = max(1, rows)
        cols = int(math.ceil(n / rows))
        return rows, cols

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        n = flat.size
        rows, cols = self._matrix_shape(n)
        rank = min(self.rank, rows, cols)
        padded = np.zeros(rows * cols, dtype=np.float32)
        padded[:n] = flat
        m = padded.reshape(rows, cols)

        key = (rows, cols)
        q = self._q_cache.get(key) if self.warm_start else None
        if q is None or q.shape != (cols, rank):
            rng = np.random.default_rng(self.seed)
            q = rng.standard_normal((cols, rank)).astype(np.float32)
            q = _orthonormalize(q)
        p = _orthonormalize(m @ q)  # rows x rank
        q_new = m.T @ p  # cols x rank
        if self.warm_start:
            self._q_cache[key] = q_new.copy()
        return CompressedPayload(
            {"p": p, "q": q_new},
            {"n": int(n), "rows": rows, "cols": cols, "rank": int(rank)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        n = int(payload.meta["n"])
        p, q = payload.arrays["p"], payload.arrays["q"]
        return np.ascontiguousarray((p @ q.T).ravel()[:n], dtype=np.float32)

    def reset(self) -> None:
        self._q_cache.clear()

    # warm-start factors approximate *that client's* update subspace
    def export_state(self):
        return {"q_cache": dict(self._q_cache)}

    def import_state(self, state) -> None:
        self._q_cache = dict(state["q_cache"])
