"""RandomK sparsification: keep a uniformly random k-subset, rescaled.

With shared seeds both ends can re-derive the index set, so only values (and
the seed) need travel — the payload here carries the 8-byte seed instead of
the index array, which is RandomK's bandwidth advantage over TopK.
Entries are scaled by n/k so the compressed vector is an unbiased estimator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import COMPRESSORS, CompressedPayload, Compressor

__all__ = ["RandomK"]


@COMPRESSORS.register("randomk")
class RandomK(Compressor):
    collective_hint = "allgather"

    def __init__(self, ratio: float = 10.0, k: Optional[int] = None, seed: int = 0, unbiased: bool = True) -> None:
        if k is None and ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        self.ratio = float(ratio)
        self.k = k
        self.seed = int(seed)
        self.unbiased = unbiased
        self._round = 0

    def _k_for(self, n: int) -> int:
        if self.k is not None:
            return max(1, min(int(self.k), n))
        return max(1, int(round(n / self.ratio)))

    @staticmethod
    def _indices(n: int, k: int, seed: int, round_id: int) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence([seed, round_id]))
        return rng.choice(n, size=k, replace=False).astype(np.int64)

    def compress(self, vector: np.ndarray) -> CompressedPayload:
        flat = self._flat32(vector)
        k = self._k_for(flat.size)
        round_id = self._round
        self._round += 1
        idx = self._indices(flat.size, k, self.seed, round_id)
        values = flat[idx]
        if self.unbiased and k < flat.size:
            values = values * (flat.size / k)
        return CompressedPayload(
            {"values": values.astype(np.float32), "seed": np.asarray([self.seed, round_id], dtype=np.int64)},
            {"n": int(flat.size), "k": int(k), "unbiased": bool(self.unbiased)},
            flat.nbytes,
        )

    def decompress(self, payload: CompressedPayload) -> np.ndarray:
        n = int(payload.meta["n"])
        k = int(payload.meta["k"])
        seed, round_id = (int(v) for v in payload.arrays["seed"])
        idx = self._indices(n, k, seed, round_id)
        out = np.zeros(n, dtype=np.float32)
        out[idx] = payload.arrays["values"]
        return out

    def reset(self) -> None:
        self._round = 0

    # the round counter seeds the index draw: it is per-client identity
    def export_state(self):
        return {"round": self._round}

    def import_state(self, state) -> None:
        self._round = int(state["round"])
