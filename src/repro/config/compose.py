"""Hydra-style configuration composition.

A *config store* is a directory tree (or in-memory mapping) of YAML files:

```
conf/
  experiment.yaml          # primary config with a `defaults:` list
  topology/centralized.yaml
  topology/ring.yaml
  algorithm/fedavg.yaml
  algorithm/fedprox.yaml
  model/resnet18.yaml
  datamodule/cifar10.yaml
```

The primary config's ``defaults:`` list selects one option per group::

    defaults:
      - topology: centralized
      - algorithm: fedavg
      - override algorithm: fedprox   # later entries win
      - _self_                        # where the file's own body merges

Composition order follows Hydra: each defaults entry merges the group file
under its group key; ``_self_`` (implicitly last) merges the primary body;
finally dotted command-line overrides apply:

* ``algorithm.lr=0.05``  — change a value (must exist unless prefixed ``+``)
* ``+algorithm.mu=0.1``  — add a new value
* ``~algorithm.mu``      — delete a value
* ``algorithm=fedprox``  — re-select a config group option
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import yaml as _yaml
from repro.config.node import ConfigNode

__all__ = ["ConfigStore", "compose", "parse_override", "ComposeError"]


class ComposeError(ValueError):
    """Raised on malformed defaults lists or overrides."""


class ConfigStore:
    """Loads group configs either from a directory or an in-memory dict.

    In-memory registration is handy for tests and for the built-in configs
    shipped under :mod:`repro.conf`.
    """

    def __init__(self, config_dir: Optional[str] = None) -> None:
        self.config_dir = config_dir
        self._memory: Dict[str, Dict[str, Any]] = {}

    # -- registration ------------------------------------------------------
    def store(self, name: str, node: Union[dict, ConfigNode], group: Optional[str] = None) -> None:
        """Register an in-memory config under ``group/name``."""
        key = f"{group}/{name}" if group else name
        if isinstance(node, ConfigNode):
            node = node.to_container(resolve=False)
        self._memory[key] = node

    # -- loading -----------------------------------------------------------
    def _candidates(self, ref: str) -> List[str]:
        return [ref, f"{ref}.yaml", f"{ref}.yml"]

    def load(self, ref: str) -> Dict[str, Any]:
        """Load ``group/name`` (or a bare primary name) as a plain dict."""
        if ref in self._memory:
            value = self._memory[ref]
            return dict(value) if isinstance(value, dict) else value
        if self.config_dir is not None:
            for cand in self._candidates(ref):
                path = os.path.join(self.config_dir, cand)
                if os.path.isfile(path):
                    loaded = _yaml.load(path)
                    if loaded is None:
                        return {}
                    if not isinstance(loaded, dict):
                        raise ComposeError(f"config {ref!r} must be a mapping, got {type(loaded).__name__}")
                    return loaded
        raise ComposeError(f"config {ref!r} not found (dir={self.config_dir!r}, memory={sorted(self._memory)})")

    def available(self, group: str) -> List[str]:
        """List option names available for ``group``."""
        names = {k.split("/", 1)[1] for k in self._memory if k.startswith(group + "/")}
        if self.config_dir is not None:
            gdir = os.path.join(self.config_dir, group)
            if os.path.isdir(gdir):
                for fn in os.listdir(gdir):
                    if fn.endswith((".yaml", ".yml")):
                        names.add(fn.rsplit(".", 1)[0])
        return sorted(names)


def _parse_defaults(defaults: Sequence[Any]) -> List[Tuple[str, Optional[str], bool]]:
    """Normalize a defaults list to ``(group, option, is_override)`` tuples.

    ``_self_`` is encoded as ``("_self_", None, False)``.
    """
    out: List[Tuple[str, Optional[str], bool]] = []
    for entry in defaults:
        if entry == "_self_":
            out.append(("_self_", None, False))
            continue
        if isinstance(entry, str):
            # bare file include, e.g. "base"
            out.append((entry, None, False))
            continue
        if isinstance(entry, dict) and len(entry) == 1:
            (key, option), = entry.items()
            is_override = False
            group = str(key)
            if group.startswith("override "):
                is_override = True
                group = group[len("override "):].strip()
            if option is None:
                out.append((group, None, is_override))
            else:
                out.append((group, str(option), is_override))
            continue
        raise ComposeError(f"malformed defaults entry: {entry!r}")
    return out


def parse_override(text: str) -> Tuple[str, str, Optional[str]]:
    """Parse one CLI override into ``(action, path, raw_value)``.

    Actions: ``"set"``, ``"add"`` (``+path=...``), ``"del"`` (``~path``).
    """
    text = text.strip()
    if text.startswith("~"):
        return "del", text[1:], None
    action = "set"
    if text.startswith("+"):
        action = "add"
        text = text[1:]
    if "=" not in text:
        raise ComposeError(f"override {text!r} must look like key=value (or ~key)")
    path, raw = text.split("=", 1)
    return action, path.strip(), raw.strip()


def compose(
    store: ConfigStore,
    config_name: str,
    overrides: Sequence[str] = (),
) -> ConfigNode:
    """Compose a full configuration from a primary config + overrides."""
    primary = store.load(config_name)
    defaults = primary.pop("defaults", [])
    entries = _parse_defaults(defaults)

    # group -> chosen option; later entries (and `override`) win.
    choices: Dict[str, Optional[str]] = {}
    order: List[str] = []
    saw_self = False
    for group, option, is_override in entries:
        if group == "_self_":
            saw_self = True
            order.append("_self_")
            continue
        if is_override and group not in choices:
            raise ComposeError(f"override of group {group!r} that was never selected")
        if group not in choices:
            order.append(group)
        choices[group] = option

    # group re-selections from CLI (e.g. algorithm=fedprox) apply before load.
    value_overrides: List[Tuple[str, str, Optional[str]]] = []
    for text in overrides:
        action, path, raw = parse_override(text)
        if action == "set" and path in choices and raw is not None and "." not in path:
            choices[path] = raw
        else:
            value_overrides.append((action, path, raw))

    cfg = ConfigNode()
    if not saw_self:
        order.append("_self_")
    for group in order:
        if group == "_self_":
            cfg.merge(primary)
            continue
        option = choices[group]
        if option in (None, "null", "none"):
            continue
        loaded = store.load(f"{group}/{option}")
        package = loaded.pop("_package_", group) if isinstance(loaded, dict) else group
        if package in ("_global_", ""):
            cfg.merge(loaded)
        else:
            cfg.merge({package: loaded})

    for action, path, raw in value_overrides:
        if action == "del":
            cfg.delete_at(path)
            continue
        value = _yaml.parse_scalar(raw) if raw is not None else None
        if action == "set":
            try:
                cfg.select(path)
            except KeyError:
                raise ComposeError(
                    f"override {path!r} does not exist; prefix with '+' to add new keys"
                ) from None
        cfg.update_at(path, value)
    return cfg
