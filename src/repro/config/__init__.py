"""Configuration substrate: a Hydra/OmegaConf/YAML substitute.

The paper drives every experiment from Hydra-based YAML files (its Fig. 2).
The offline environment ships neither Hydra nor PyYAML, so this package
implements the subset the framework needs:

* :mod:`repro.config.yaml` — parser/dumper for a practical YAML subset
  (block + flow collections, scalars, comments, anchors are *not* supported).
* :mod:`repro.config.node` — ``ConfigNode``: attribute/dotted access, deep
  merge, ``${a.b}`` interpolation, conversion to plain containers.
* :mod:`repro.config.compose` — Hydra-style config groups with a
  ``defaults:`` list, ``override`` entries, and ``key=value`` CLI overrides.
* :mod:`repro.config.instantiate` — recursive ``_target_`` instantiation.
"""

from repro.config.compose import ConfigStore, compose
from repro.config.instantiate import instantiate
from repro.config.node import ConfigNode
from repro.config.yaml import YamlError, dump, dumps, load, loads

__all__ = [
    "ConfigStore",
    "compose",
    "instantiate",
    "ConfigNode",
    "YamlError",
    "dump",
    "dumps",
    "load",
    "loads",
]
