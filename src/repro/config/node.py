"""``ConfigNode``: an OmegaConf-style nested configuration container.

Features the framework relies on:

* attribute access (``cfg.algorithm.lr``) and dotted access
  (``cfg.select("algorithm.lr")``);
* deep merge where later values win (used by composition and overrides);
* ``${a.b.c}`` interpolation resolved against the root node;
* conversion to plain dict/list containers for instantiation.
"""

from __future__ import annotations

import copy
import re
import threading
from typing import Any, Dict, Iterator, Optional, Tuple

_INTERP_RE = re.compile(r"\$\{([^}]+)\}")

_MISSING = object()
_RESOLVING = threading.local()


class ConfigNode:
    """Nested mapping with attribute access and interpolation.

    >>> cfg = ConfigNode({"a": {"b": 1}, "c": "${a.b}"})
    >>> cfg.a.b
    1
    >>> cfg.c
    1
    """

    __slots__ = ("_data", "_root")

    def __init__(self, data: Optional[Dict[str, Any]] = None, _root: Optional["ConfigNode"] = None):
        object.__setattr__(self, "_data", {})
        object.__setattr__(self, "_root", _root)
        if data:
            for k, v in data.items():
                self._data[k] = self._wrap(v)

    # -- wrapping ----------------------------------------------------------
    def _wrap(self, value: Any) -> Any:
        root = self._root if self._root is not None else self
        if isinstance(value, ConfigNode):
            return ConfigNode(value.to_container(resolve=False), _root=root)
        if isinstance(value, dict):
            child = ConfigNode(_root=root)
            for k, v in value.items():
                child._data[k] = child._wrap(v)
            return child
        if isinstance(value, (list, tuple)):
            return [self._wrap(v) for v in value]
        return value

    def _effective_root(self) -> "ConfigNode":
        return self._root if self._root is not None else self

    # -- access ------------------------------------------------------------
    def __getattr__(self, key: str) -> Any:
        if key.startswith("_"):
            raise AttributeError(key)
        try:
            return self[key]
        except KeyError as exc:
            raise AttributeError(str(exc)) from None

    def __setattr__(self, key: str, value: Any) -> None:
        self._data[key] = self._wrap(value)

    def __getitem__(self, key: str) -> Any:
        if key not in self._data:
            raise KeyError(f"missing config key {key!r}; have {sorted(self._data)}")
        return self._resolve(self._data[key])

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = self._wrap(value)

    def __delitem__(self, key: str) -> None:
        del self._data[key]

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def items(self) -> Iterator[Tuple[str, Any]]:
        for k in self._data:
            yield k, self[k]

    def values(self):
        for k in self._data:
            yield self[k]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    # -- dotted access -----------------------------------------------------
    def select(self, path: str, default: Any = _MISSING) -> Any:
        """Return the value at dotted ``path`` (e.g. ``"algorithm.lr"``)."""
        node: Any = self
        for part in path.split("."):
            if isinstance(node, ConfigNode) and part in node:
                node = node[part]
            elif isinstance(node, list):
                try:
                    node = node[int(part)]
                except (ValueError, IndexError):
                    if default is not _MISSING:
                        return default
                    raise KeyError(f"no config value at {path!r}") from None
            else:
                if default is not _MISSING:
                    return default
                raise KeyError(f"no config value at {path!r}")
        return node

    def update_at(self, path: str, value: Any) -> None:
        """Set ``path`` to ``value``, creating intermediate mappings."""
        parts = path.split(".")
        node = self
        for part in parts[:-1]:
            if part not in node._data or not isinstance(node._data[part], ConfigNode):
                node._data[part] = ConfigNode(_root=self._effective_root())
            node = node._data[part]
        node._data[parts[-1]] = node._wrap(value)

    def delete_at(self, path: str) -> None:
        parts = path.split(".")
        node = self
        for part in parts[:-1]:
            nxt = node._data.get(part)
            if not isinstance(nxt, ConfigNode):
                raise KeyError(f"no config value at {path!r}")
            node = nxt
        if parts[-1] not in node._data:
            raise KeyError(f"no config value at {path!r}")
        del node._data[parts[-1]]

    # -- interpolation -----------------------------------------------------
    def _resolve(self, value: Any) -> Any:
        if isinstance(value, str):
            return self._interpolate(value)
        return value

    def _interpolate(self, text: str, _depth: int = 0) -> Any:
        # depth alone cannot catch cycles crossing node accesses (a -> b -> a
        # restarts the counter), so track in-flight expressions per thread
        stack: set = getattr(_RESOLVING, "stack", None)
        if stack is None:
            stack = set()
            _RESOLVING.stack = stack
        key = (id(self._effective_root()), text)
        if key in stack or _depth > 16:
            raise ValueError(f"interpolation cycle while resolving {text!r}")
        match = _INTERP_RE.fullmatch(text)
        root = self._effective_root()
        stack.add(key)
        try:
            if match:
                resolved = root.select(match.group(1))
                if isinstance(resolved, str):
                    return self._interpolate(resolved, _depth + 1)
                return resolved

            def sub(m: "re.Match[str]") -> str:
                return str(root.select(m.group(1)))

            if _INTERP_RE.search(text):
                return self._interpolate(_INTERP_RE.sub(sub, text), _depth + 1)
            return text
        finally:
            stack.discard(key)

    # -- merge / convert ---------------------------------------------------
    def merge(self, other: Any) -> "ConfigNode":
        """Deep-merge ``other`` into self (other wins); returns self."""
        if isinstance(other, ConfigNode):
            other = other.to_container(resolve=False)
        if not isinstance(other, dict):
            raise TypeError(f"can only merge mappings, got {type(other).__name__}")
        for k, v in other.items():
            existing = self._data.get(k)
            if isinstance(existing, ConfigNode) and isinstance(v, (dict, ConfigNode)):
                existing.merge(v)
            else:
                self._data[k] = self._wrap(v)
        return self

    def to_container(self, resolve: bool = True) -> Dict[str, Any]:
        """Convert to plain ``dict``/``list`` containers."""

        def conv(value: Any) -> Any:
            if isinstance(value, ConfigNode):
                return {k: conv(value[k] if resolve else value._data[k]) for k in value._data}
            if isinstance(value, list):
                return [conv(v) for v in value]
            if resolve and isinstance(value, str):
                return self._interpolate(value)
            return value

        return conv(self)

    def copy(self) -> "ConfigNode":
        return ConfigNode(copy.deepcopy(self.to_container(resolve=False)))

    def __repr__(self) -> str:
        return f"ConfigNode({self.to_container(resolve=False)!r})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConfigNode):
            return self.to_container(resolve=False) == other.to_container(resolve=False)
        if isinstance(other, dict):
            return self.to_container(resolve=False) == other
        return NotImplemented
