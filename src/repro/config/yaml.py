"""A pragmatic YAML-subset parser and dumper.

Supported syntax (everything the framework's configs use):

* block mappings and sequences nested by indentation;
* sequence items that open an inline mapping (``- name: x``);
* flow collections (``[1, 2]``, ``{a: 1, b: 2}``) with nesting;
* scalars: integers, floats (incl. scientific notation, ``.5``, ``inf``,
  ``nan``), booleans (``true``/``false`` any case), ``null``/``~``, single- and
  double-quoted strings, plain strings;
* full-line and trailing ``#`` comments;
* empty documents (-> ``None``).

Unsupported on purpose: anchors/aliases, tags, multi-line block scalars,
multiple documents.  The parser raises :class:`YamlError` with a line number
on malformed input rather than guessing.
"""

from __future__ import annotations

import io
import math
import re
from typing import Any, List, Optional, Tuple, Union

__all__ = ["YamlError", "loads", "load", "dump", "dumps"]


class YamlError(ValueError):
    """Raised on malformed input, carrying a 1-based line number."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        super().__init__(f"line {line}: {message}" if line is not None else message)


# --------------------------------------------------------------------------
# Scalar handling
# --------------------------------------------------------------------------

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_BOOL_TRUE = {"true", "True", "TRUE", "yes", "on"}
_BOOL_FALSE = {"false", "False", "FALSE", "no", "off"}
_NULLS = {"null", "Null", "NULL", "~", ""}


def parse_scalar(text: str, line: Optional[int] = None) -> Any:
    """Parse a single scalar token (already stripped, comments removed)."""
    if text.startswith(("[", "{")):
        value, rest = _parse_flow(text, line)
        if rest.strip():
            raise YamlError(f"trailing content after flow collection: {rest!r}", line)
        return value
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        body = text[1:-1]
        if text[0] == '"':
            return _unescape(body, line)
        return body.replace("''", "'")
    if text in _NULLS:
        return None
    if text in _BOOL_TRUE:
        return True
    if text in _BOOL_FALSE:
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text) and not _INT_RE.match(text):
        return float(text)
    low = text.lower()
    if low in {".inf", "inf", "+.inf"}:
        return math.inf
    if low in {"-.inf", "-inf"}:
        return -math.inf
    if low in {".nan", "nan"}:
        return math.nan
    return text


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\x00"}


def _unescape(body: str, line: Optional[int]) -> str:
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise YamlError("dangling escape in double-quoted string", line)
        esc = body[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc == "x" and i + 3 < len(body) + 1:
            out.append(chr(int(body[i + 2 : i + 4], 16)))
            i += 4
        elif esc == "u" and i + 5 < len(body) + 1:
            out.append(chr(int(body[i + 2 : i + 6], 16)))
            i += 6
        else:
            raise YamlError(f"unknown escape \\{esc}", line)
    return "".join(out)


def _escape(text: str) -> str:
    out: List[str] = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        elif ord(ch) < 0x20 or ch in "\x7f\x85  ":
            code = ord(ch)
            out.append(f"\\x{code:02x}" if code <= 0xFF else f"\\u{code:04x}")
        else:
            out.append(ch)
    return "".join(out)


def _parse_flow(text: str, line: Optional[int]) -> Tuple[Any, str]:
    """Parse a flow collection at the start of ``text``; return (value, rest)."""
    if text.startswith("["):
        items: List[Any] = []
        rest = text[1:].lstrip()
        if rest.startswith("]"):
            return items, rest[1:]
        while True:
            value, rest = _parse_flow_value(rest, line)
            items.append(value)
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()
                continue
            if rest.startswith("]"):
                return items, rest[1:]
            raise YamlError(f"expected ',' or ']' in flow sequence near {rest!r}", line)
    if text.startswith("{"):
        mapping: dict = {}
        rest = text[1:].lstrip()
        if rest.startswith("}"):
            return mapping, rest[1:]
        while True:
            key, rest = _parse_flow_value(rest, line)
            rest = rest.lstrip()
            if not rest.startswith(":"):
                raise YamlError(f"expected ':' in flow mapping near {rest!r}", line)
            value, rest = _parse_flow_value(rest[1:].lstrip(), line)
            mapping[key] = value
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()
                continue
            if rest.startswith("}"):
                return mapping, rest[1:]
            raise YamlError(f"expected ',' or '}}' in flow mapping near {rest!r}", line)
    raise YamlError(f"not a flow collection: {text!r}", line)


def _parse_flow_value(text: str, line: Optional[int]) -> Tuple[Any, str]:
    text = text.lstrip()
    if not text:
        raise YamlError("unexpected end of flow collection", line)
    if text[0] in "[{":
        return _parse_flow(text, line)
    if text[0] in "'\"":
        quote = text[0]
        i = 1
        while i < len(text):
            if text[i] == quote:
                if quote == "'" and i + 1 < len(text) and text[i + 1] == "'":
                    i += 2
                    continue
                return parse_scalar(text[: i + 1], line), text[i + 1 :]
            if quote == '"' and text[i] == "\\":
                i += 1
            i += 1
        raise YamlError("unterminated quoted string in flow collection", line)
    # plain scalar: runs until , ] } or :
    i = 0
    while i < len(text) and text[i] not in ",]}:":
        i += 1
    return parse_scalar(text[:i].strip(), line), text[i:]


def _strip_comment(line: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    in_quote: Optional[str] = None
    for i, ch in enumerate(line):
        if in_quote:
            if ch == in_quote:
                in_quote = None
            continue
        if ch in "'\"":
            in_quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
    return line


def _split_key(content: str, line: int) -> Tuple[str, str]:
    """Split ``key: value`` at the first ``:`` outside quotes/brackets."""
    depth = 0
    in_quote: Optional[str] = None
    for i, ch in enumerate(content):
        if in_quote:
            if ch == in_quote:
                in_quote = None
            continue
        if ch in "'\"":
            in_quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0 and (i + 1 == len(content) or content[i + 1] in " \t"):
            return content[:i].strip(), content[i + 1 :].strip()
    raise YamlError(f"expected 'key: value' but got {content!r}", line)


# --------------------------------------------------------------------------
# Block parser
# --------------------------------------------------------------------------


class _Line:
    __slots__ = ("indent", "content", "number")

    def __init__(self, indent: int, content: str, number: int) -> None:
        self.indent = indent
        self.content = content
        self.number = number


def _logical_lines(text: str) -> List[_Line]:
    out: List[_Line] = []
    # split strictly on \n — str.splitlines() also splits on \x1c-\x1e,
    # \x85,  / , which may legitimately appear inside quotes
    for num, raw in enumerate(text.split("\n"), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", num)
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if stripped.strip() == "---":
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        out.append(_Line(indent, stripped.strip(), num))
    return out


class _Parser:
    def __init__(self, lines: List[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> Optional[_Line]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self._parse_sequence(indent)
        if not _looks_like_mapping(line.content):
            # a bare scalar or flow-collection document ("{}", "[1, 2]", "42")
            self.pos += 1
            return parse_scalar(line.content, line.number)
        return self._parse_mapping(indent)

    def _parse_sequence(self, indent: int) -> List[Any]:
        items: List[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return items
            if line.indent > indent:
                raise YamlError("unexpected indentation in sequence", line.number)
            if not (line.content.startswith("- ") or line.content == "-"):
                return items
            rest = line.content[1:].strip()
            self.pos += 1
            if not rest:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent))
                else:
                    items.append(None)
                continue
            if _looks_like_mapping(rest):
                # "- key: value" opens an inline mapping item; its other keys
                # sit at the dash's indent + 2 (any deeper indent accepted).
                key, value_text = _split_key(rest, line.number)
                item = {parse_scalar(key, line.number): self._value_or_nested(value_text, indent + 2, line)}
                nxt = self.peek()
                while nxt is not None and nxt.indent > indent and not nxt.content.startswith("- "):
                    sub = self._parse_mapping(nxt.indent)
                    item.update(sub)
                    nxt = self.peek()
                items.append(item)
            else:
                items.append(parse_scalar(rest, line.number))

    def _parse_mapping(self, indent: int) -> dict:
        mapping: dict = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return mapping
            if line.indent > indent:
                raise YamlError("unexpected indentation in mapping", line.number)
            if line.content.startswith("- "):
                return mapping
            key, value_text = _split_key(line.content, line.number)
            key_obj = parse_scalar(key, line.number)
            self.pos += 1
            if key_obj in mapping:
                raise YamlError(f"duplicate mapping key {key!r}", line.number)
            mapping[key_obj] = self._value_or_nested(value_text, indent + 1, line)

    def _value_or_nested(self, value_text: str, min_child_indent: int, line: _Line) -> Any:
        if value_text:
            return parse_scalar(value_text, line.number)
        nxt = self.peek()
        if nxt is not None and nxt.indent >= min_child_indent:
            return self.parse_block(nxt.indent)
        if nxt is not None and nxt.indent == line.indent and nxt.content.startswith("- "):
            # sequences are commonly written at the parent key's indent
            return self._parse_sequence(nxt.indent)
        return None


def _looks_like_mapping(text: str) -> bool:
    if text.startswith(("[", "{")):
        return False
    try:
        key, _ = _split_key(text, 0)
        # a fully-quoted scalar containing ':' is not a mapping; a quoted KEY is
        return bool(key)
    except YamlError:
        return False


def loads(text: str) -> Any:
    """Parse a YAML document from a string."""
    lines = _logical_lines(text)
    if not lines:
        return None
    parser = _Parser(lines)
    value = parser.parse_block(lines[0].indent)
    leftover = parser.peek()
    if leftover is not None:
        raise YamlError(f"unexpected content {leftover.content!r}", leftover.number)
    return value


def load(source: Union[str, "io.TextIOBase"]) -> Any:
    """Parse YAML from a file path or open text stream."""
    if hasattr(source, "read"):
        return loads(source.read())  # type: ignore[union-attr]
    with open(source, "r", encoding="utf8") as fh:
        return loads(fh.read())


# --------------------------------------------------------------------------
# Dumper
# --------------------------------------------------------------------------

# \Z, not $: "$" matches before a trailing newline, which would let a value
# like "A\n" dump as a bare scalar and lose its newline on the way back in
_PLAIN_SAFE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-/]*\Z")


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        if math.isinf(value):
            return ".inf" if value > 0 else "-.inf"
        if math.isnan(value):
            return ".nan"
        return repr(value)
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if _PLAIN_SAFE.match(text) and parse_scalar(text) == text:
        return text
    return '"' + _escape(text) + '"'


def _dump_block(value: Any, indent: int, out: List[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            out.append(pad + "{}")
            return
        for k, v in value.items():
            if isinstance(v, (dict, list)) and v:
                out.append(f"{pad}{_dump_scalar(k)}:")
                _dump_block(v, indent + 2, out)
            else:
                out.append(f"{pad}{_dump_scalar(k)}: {_dump_flow(v)}")
    elif isinstance(value, (list, tuple)):
        if not value:
            out.append(pad + "[]")
            return
        for item in value:
            if isinstance(item, (dict, list)) and item:
                if isinstance(item, dict):
                    first, *others = item.items()
                    k0, v0 = first
                    if isinstance(v0, (dict, list)) and v0:
                        out.append(f"{pad}- {_dump_scalar(k0)}:")
                        _dump_block(v0, indent + 4, out)
                    else:
                        out.append(f"{pad}- {_dump_scalar(k0)}: {_dump_flow(v0)}")
                    for k, v in others:
                        if isinstance(v, (dict, list)) and v:
                            out.append(f"{pad}  {_dump_scalar(k)}:")
                            _dump_block(v, indent + 4, out)
                        else:
                            out.append(f"{pad}  {_dump_scalar(k)}: {_dump_flow(v)}")
                else:
                    out.append(f"{pad}-")
                    _dump_block(item, indent + 2, out)
            else:
                out.append(f"{pad}- {_dump_flow(item)}")
    else:
        out.append(pad + _dump_scalar(value))


def _dump_flow(value: Any) -> str:
    if isinstance(value, dict):
        inner = ", ".join(f"{_dump_scalar(k)}: {_dump_flow(v)}" for k, v in value.items())
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_dump_flow(v) for v in value) + "]"
    return _dump_scalar(value)


def dumps(value: Any) -> str:
    """Serialize ``value`` to a YAML string this module can re-parse."""
    out: List[str] = []
    _dump_block(value, 0, out)
    return "\n".join(out) + "\n"


def dump(value: Any, path: str) -> None:
    with open(path, "w", encoding="utf8") as fh:
        fh.write(dumps(value))
