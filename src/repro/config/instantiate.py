"""Recursive ``_target_`` instantiation (Hydra substitute).

A config node with a ``_target_`` key naming a dotted import path is turned
into an object by importing the target and calling it with the node's other
keys as keyword arguments.  Nested nodes are instantiated first (depth-first),
matching Hydra's behaviour, unless ``_recursive_: false`` is set.

Special keys:

* ``_target_`` — dotted path (``pkg.mod.Class``) or registry-style
  ``group:name`` handled by the caller;
* ``_args_``   — positional arguments;
* ``_partial_``— return ``functools.partial`` instead of calling.
"""

from __future__ import annotations

import functools
import importlib
from typing import Any, Dict

from repro.config.node import ConfigNode

__all__ = ["instantiate", "locate", "InstantiationError"]


class InstantiationError(TypeError):
    """Raised when a ``_target_`` cannot be imported or called."""


# OmniFed configs use ``src.omnifed.*`` targets (see the paper's Fig. 2); we
# accept those verbatim by rewriting to this package's layout so that paper
# configs run unmodified.
_TARGET_REWRITES = {
    "src.omnifed.": "repro.omnifed.",
    "omnifed.": "repro.omnifed.",
}


def locate(path: str) -> Any:
    """Import the object at dotted ``path`` (module attr or nested class)."""
    for prefix, replacement in _TARGET_REWRITES.items():
        if path.startswith(prefix):
            path = replacement + path[len(prefix):]
            break
    parts = path.split(".")
    if not all(parts):
        raise InstantiationError(f"malformed target {path!r}")
    last_exc: Exception | None = None
    for split in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj: Any = importlib.import_module(module_name)
        except ImportError as exc:
            last_exc = exc
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
            return obj
        except AttributeError as exc:
            last_exc = exc
            continue
    raise InstantiationError(f"cannot locate target {path!r}: {last_exc}")


def _is_target_node(value: Any) -> bool:
    return isinstance(value, (dict, ConfigNode)) and "_target_" in value


def instantiate(config: Any, /, **overrides: Any) -> Any:
    """Instantiate ``config`` (and, recursively, any nested targets).

    Plain nodes without ``_target_`` are returned as plain containers.
    ``overrides`` take precedence over config-provided kwargs.
    """
    if isinstance(config, ConfigNode):
        config = config.to_container(resolve=True)
    if isinstance(config, list):
        return [instantiate(v) for v in config]
    if not isinstance(config, dict):
        return config
    if "_target_" not in config:
        return {k: instantiate(v) for k, v in config.items()}

    cfg: Dict[str, Any] = dict(config)
    target = cfg.pop("_target_")
    partial = bool(cfg.pop("_partial_", False))
    recursive = bool(cfg.pop("_recursive_", True))
    args = cfg.pop("_args_", [])
    cfg.pop("_convert_", None)

    fn = locate(target) if isinstance(target, str) else target
    # classes may declare keys whose nested configs must stay *configs*
    # (e.g. topologies carry per-node communicator configs that only the
    # engine can instantiate, once rank/world_size are known)
    deferred = set(getattr(fn, "DEFER_KEYS", ()))
    if recursive:
        args = [instantiate(a) for a in args]
        cfg = {
            k: (
                v
                if k in deferred
                else instantiate(v)
                if (_is_target_node(v) or isinstance(v, (dict, list)))
                else v
            )
            for k, v in cfg.items()
        }
    cfg.update(overrides)
    if partial:
        return functools.partial(fn, *args, **cfg)
    try:
        return fn(*args, **cfg)
    except TypeError as exc:
        raise InstantiationError(f"error instantiating {target!r}: {exc}") from exc
