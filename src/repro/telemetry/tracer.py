"""Dual-clock span tracer with Chrome trace-event export.

The framework runs on two clocks at once: **wall time** (what this machine
actually spends) and **virtual time** (the scheduler's simulated ``sim_time``
that straggler dynamics are reasoned in).  A :class:`Tracer` records spans on
both:

* *wall spans* — ``with tracer.span("pool.turn", client=7): ...`` measures
  real elapsed time around a code region, on whatever thread it runs;
* *sim spans* — ``tracer.sim_span("client.turn", t0, t1, track=7)`` records
  an interval of the virtual clock (e.g. a client turn's dispatch→arrival
  window), which has no meaningful wall extent because the runtime blocks
  on futures out of order.

:meth:`Tracer.to_chrome_trace` exports both as Chrome trace-event JSON
(``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_): wall spans
land in a "wall clock" process grouped by thread, sim spans in a "virtual
clock" process grouped by ``track`` (typically the client/peer id), so the
two timelines sit side by side in one view.

Instrumentation must cost nothing when tracing is off, so the default
tracer everywhere is the module's :data:`NOOP_TRACER`: its ``span`` returns
a shared no-op context manager and every other method is a stub — hook
sites pay one attribute lookup and one no-op call, nothing else.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Tracer", "NoopTracer", "NOOP_TRACER", "SpanObserver"]

#: observer signature: (name, category, wall_seconds, sim_seconds, attrs).
#: ``wall_seconds`` is None for pure sim spans and instants; ``sim_seconds``
#: is None for spans that never saw the virtual clock.
SpanObserver = Callable[[str, str, Optional[float], Optional[float], Dict[str, Any]], None]


class _NoopSpan:
    """Shared do-nothing context manager (the disabled-tracing fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Zero-cost stand-in installed wherever tracing is not enabled."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "", sim_time: Optional[float] = None, **attrs: Any):
        return _NOOP_SPAN

    def sim_span(
        self, name: str, sim_start: float, sim_end: float, cat: str = "", **attrs: Any
    ) -> None:
        return None

    def instant(self, name: str, cat: str = "", **attrs: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NoopTracer()"


NOOP_TRACER = NoopTracer()


class _Span:
    """Live handle for one wall-clock span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "cat", "sim_time", "attrs", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        sim_time: Optional[float],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.sim_time = sim_time
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        t1 = time.perf_counter()
        self._tracer._record_wall(self, self._t0, t1)


class Tracer:
    """Recording tracer: thread-safe, bounded, exportable.

    Parameters
    ----------
    max_events:
        Hard cap on buffered events; once reached, further events are
        counted in :attr:`dropped` instead of stored (a telemetry buffer
        must never become the memory hog it exists to find).
    observer:
        Optional :data:`SpanObserver` called for every finished span —
        the bridge that feeds span durations and byte attributes into a
        :class:`~repro.telemetry.registry.MetricsRegistry` without the
        tracer depending on it.
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000, observer: Optional[SpanObserver] = None) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: List[tuple] = []
        self._threads: Dict[int, str] = {}
        self.max_events = int(max_events)
        self.dropped = 0
        self.observer = observer

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "", sim_time: Optional[float] = None, **attrs: Any) -> _Span:
        """Open a wall-clock span (use as a context manager).

        ``sim_time`` stamps the virtual clock at entry so wall spans can be
        cross-referenced against the sim timeline.
        """
        return _Span(self, name, cat, sim_time, attrs)

    def sim_span(
        self, name: str, sim_start: float, sim_end: float, cat: str = "", **attrs: Any
    ) -> None:
        """Record an interval of the *virtual* clock directly.

        ``attrs['track']`` (default: the span name) picks the lane the span
        renders in — client turns pass the client id so every client gets
        its own row in the viewer.
        """
        track = attrs.pop("track", name)
        dur = max(0.0, float(sim_end) - float(sim_start))
        self._push(
            ("X", name, cat or "sim", 2, track, float(sim_start) * 1e6, dur * 1e6, attrs)
        )
        if self.observer is not None:
            self.observer(name, cat, None, dur, attrs)

    def instant(self, name: str, cat: str = "", **attrs: Any) -> None:
        """Record a zero-duration marker at the current wall time."""
        ident = threading.get_ident()
        self._note_thread(ident)
        self._push(
            ("i", name, cat or "app", 1, ident,
             (time.perf_counter() - self._epoch) * 1e6, 0.0, attrs)
        )

    def _record_wall(self, span: _Span, t0: float, t1: float) -> None:
        ident = threading.get_ident()
        args = span.attrs
        if span.sim_time is not None:
            args = dict(args)
            args["sim_time"] = span.sim_time
        self._note_thread(ident)
        self._push(
            ("X", span.name, span.cat or "app", 1, ident,
             (t0 - self._epoch) * 1e6, (t1 - t0) * 1e6, args)
        )
        if self.observer is not None:
            self.observer(span.name, span.cat, t1 - t0, None, args)

    def _note_thread(self, ident: int) -> None:
        if ident not in self._threads:
            with self._lock:
                self._threads.setdefault(ident, threading.current_thread().name)

    def _push(self, event: tuple) -> None:
        # events are compact (ph, name, cat, pid, tid, ts, dur, args) tuples
        # on the hot path; :meth:`_as_dicts` materializes trace-event dicts
        # only at inspection/export time.  No lock: list.append is atomic
        # under the GIL, and with all pool workers tracing through this one
        # buffer a mutex here is pure contention.  The cap check is racy by
        # at most one event per concurrent thread, which a bounded
        # diagnostics buffer can tolerate.
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    @staticmethod
    def _as_dicts(events: List[tuple]) -> List[Dict[str, Any]]:
        out = []
        for ph, name, cat, pid, tid, ts, dur, args in events:
            ev = {"name": name, "cat": cat, "ph": ph, "pid": pid, "tid": tid,
                  "ts": ts, "args": args}
            if ph == "X":
                ev["dur"] = dur
            else:
                ev["s"] = "t"
            out.append(ev)
        return out

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the recorded events as trace-event dicts."""
        with self._lock:
            raw = list(self._events)
        return self._as_dicts(raw)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (load in Perfetto as-is)."""
        meta: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "wall clock"}},
            {"name": "process_name", "ph": "M", "pid": 2,
             "args": {"name": "virtual clock (sim_time)"}},
        ]
        with self._lock:
            for ident, tname in self._threads.items():
                meta.append(
                    {"name": "thread_name", "ph": "M", "pid": 1, "tid": ident,
                     "args": {"name": tname}}
                )
            raw = list(self._events)
        return {"traceEvents": meta + self._as_dicts(raw), "displayTimeUnit": "ms"}

    def save(self, path: str) -> str:
        """Write the Chrome trace-event JSON to ``path``; returns the path."""
        # dumps-then-write: json.dump's chunked streaming through a text
        # wrapper is ~4x slower on big traces, and save() runs at shutdown
        # inside the traced run's wall clock
        body = json.dumps(self.to_chrome_trace(), separators=(",", ":"))
        with open(path, "w", encoding="utf8") as fh:
            fh.write(body)
        return path

    def __repr__(self) -> str:
        return f"Tracer(events={len(self)}, dropped={self.dropped})"
