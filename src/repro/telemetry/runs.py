"""In-process run registry backing the ops endpoint's ``/runs`` route.

Each engine run registers itself keyed by the experiment spec's
fingerprint (the same hash :class:`~repro.experiment.result.RunResult`
carries), so an operator scraping the endpoint can correlate what is
live in this process with results saved on disk.  Everything is plain
data — the registry never holds an engine or model state alive.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunInfo", "RunRegistry"]


@dataclass
class RunInfo:
    """Snapshot of one run's externally visible state."""

    run_id: str
    fingerprint: Optional[str] = None
    status: str = "running"          # running | finished | stopped | failed
    started_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    stop_reason: Optional[str] = None
    rounds: int = 0
    sim_time: float = 0.0
    last_train_loss: Optional[float] = None
    last_eval_accuracy: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "stop_reason": self.stop_reason,
            "rounds": self.rounds,
            "sim_time": self.sim_time,
            "last_train_loss": self.last_train_loss,
            "last_eval_accuracy": self.last_eval_accuracy,
            "detail": dict(self.detail),
        }


class RunRegistry:
    """Thread-safe registry of :class:`RunInfo` entries for this process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._runs: Dict[str, RunInfo] = {}
        self._counter = 0

    def register(self, fingerprint: Optional[str] = None, **detail: Any) -> RunInfo:
        with self._lock:
            self._counter += 1
            run_id = f"run-{self._counter}"
            info = RunInfo(run_id=run_id, fingerprint=fingerprint, detail=dict(detail))
            self._runs[run_id] = info
            return info

    def update(self, run_id: str, **fields: Any) -> None:
        with self._lock:
            info = self._runs.get(run_id)
            if info is None:
                return
            for key, value in fields.items():
                if hasattr(info, key):
                    setattr(info, key, value)
                else:
                    info.detail[key] = value

    def finish(self, run_id: str, status: str = "finished",
               stop_reason: Optional[str] = None) -> None:
        with self._lock:
            info = self._runs.get(run_id)
            if info is None:
                return
            info.status = status
            info.stop_reason = stop_reason
            info.finished_at = time.time()

    def get(self, run_id: str) -> Optional[RunInfo]:
        with self._lock:
            return self._runs.get(run_id)

    def list(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [info.as_dict() for info in self._runs.values()]

    def active(self) -> int:
        with self._lock:
            return sum(1 for info in self._runs.values() if info.status == "running")
