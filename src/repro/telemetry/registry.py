"""Minimal Prometheus-style metrics registry (stdlib only).

Three instrument kinds — :class:`Counter` (monotone), :class:`Gauge`
(set/inc/dec), :class:`Histogram` (bucketed observations) — grouped into
families by metric name, with label sets distinguishing children inside a
family.  :meth:`MetricsRegistry.exposition` renders the whole registry in
the Prometheus text format (version 0.0.4), which is what the ops
endpoint's ``/metrics`` route serves and what ``promtool``/any scraper
parses.

No external client library: the simulator only needs enough surface to
count turns, watch queue depths, and bucket staleness — and the container
pins its dependency set, so we keep this in-tree.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram buckets — wide enough for both sub-ms codec spans and
#: multi-second virtual-latency staleness values.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value; one child per label set."""

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, name: str, key: _LabelKey) -> List[str]:
        return [f"{name}{_render_labels(key)} {_fmt(self.value)}"]


class Gauge:
    """Point-in-time value that can move in either direction."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, name: str, key: _LabelKey) -> List[str]:
        return [f"{name}{_render_labels(key)} {_fmt(self.value)}"]


class Histogram:
    """Cumulative-bucket histogram matching Prometheus exposition shape."""

    kind = "histogram"

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        self._lock = lock
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one finite bucket bound")
        self._counts = [0] * len(self.buckets)
        self._inf = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # counts are stored per-bucket (not cumulative) so an observation
        # touches exactly one slot — found by bisection, not a scan; the
        # exposition cumulates at render time where nobody is hot
        value = float(value)
        i = bisect_left(self.buckets, value)
        with self._lock:
            self._sum += value
            self._inf += 1
            if i < len(self._counts):
                self._counts[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._inf

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _samples(self, name: str, key: _LabelKey) -> List[str]:
        with self._lock:
            counts = list(self._counts)
            total, s = self._inf, self._sum
        lines = []
        cumulative = 0
        for bound, n in zip(self.buckets, counts):
            cumulative += n
            lines.append(
                f"{name}_bucket{_render_labels(key, ('le', _fmt(bound)))} {cumulative}"
            )
        lines.append(f"{name}_bucket{_render_labels(key, ('le', '+Inf'))} {total}")
        lines.append(f"{name}_sum{_render_labels(key)} {_fmt(s)}")
        lines.append(f"{name}_count{_render_labels(key)} {total}")
        return lines


class _Family:
    """All children of one metric name (same kind, same help text)."""

    def __init__(self, name: str, help_text: str, kind: str) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.children: Dict[_LabelKey, Any] = {}


class MetricsRegistry:
    """Thread-safe registry of counters/gauges/histograms.

    Instruments are created lazily on first access and cached by
    ``(name, label set)``, so hot paths can call
    ``registry.counter("repro_turns_total", policy="fedbuff").inc()``
    without holding references around.  Re-registering a name with a
    different kind raises — silently morphing a counter into a gauge is
    the classic way dashboards rot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        return self._child(name, help_text, "counter", labels)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        return self._child(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._child(name, help_text, "histogram", labels, buckets=buckets)

    def _child(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Dict[str, Any],
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            child = family.children.get(key)
            if child is None:
                lock = threading.Lock()
                if kind == "counter":
                    child = Counter(lock)
                elif kind == "gauge":
                    child = Gauge(lock)
                else:
                    child = Histogram(lock, buckets or DEFAULT_BUCKETS)
                family.children[key] = child
            return child

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """Existing child or None — never creates (for tests/assertions)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def exposition(self) -> str:
        """Prometheus text format 0.0.4 for every family in the registry."""
        out: List[str] = []
        with self._lock:
            families = [
                (f.name, f.help, f.kind, list(f.children.items()))
                for f in self._families.values()
            ]
        for name, help_text, kind, children in sorted(families):
            out.append(f"# HELP {name} {help_text or name}")
            out.append(f"# TYPE {name} {kind}")
            for key, child in sorted(children):
                out.extend(child._samples(name, key))
        return "\n".join(out) + "\n"
