"""Live ops endpoint: a stdlib HTTP server on a daemon thread.

Routes:

* ``GET /health``  — liveness JSON (status, uptime, active run count);
* ``GET /metrics`` — Prometheus text exposition from the attached
  :class:`~repro.telemetry.registry.MetricsRegistry`;
* ``GET /runs``    — JSON list of this process's runs from the attached
  :class:`~repro.telemetry.runs.RunRegistry`.

``ThreadingHTTPServer`` keeps a slow scraper from wedging the endpoint,
and the handler's logging is silenced so scrapes don't spam stderr during
benchmarks.  Bind with ``port=0`` to take an ephemeral port (the bound
port is available as :attr:`OpsServer.port`), which is what the tests do
to stay parallel-safe.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .registry import MetricsRegistry
from .runs import RunRegistry

__all__ = ["OpsServer"]


class _OpsHandler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        ops: "OpsServer" = self.server.ops  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/health"):
            payload = {
                "status": "ok",
                "uptime_seconds": round(time.time() - ops.started_at, 3),
                "active_runs": ops.runs.active(),
                "total_runs": len(ops.runs.list()),
            }
            self._reply(200, json.dumps(payload), "application/json")
        elif path == "/metrics":
            body = ops.registry.exposition()
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/runs":
            self._reply(200, json.dumps(ops.runs.list()), "application/json")
        else:
            self._reply(404, json.dumps({"error": f"no route {path!r}"}),
                        "application/json")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args: object) -> None:
        return  # scrapes are routine; keep stderr for the run itself


class OpsServer:
    """Owns the HTTP thread and the registries it serves."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        runs: Optional[RunRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.runs = runs if runs is not None else RunRegistry()
        self.host = host
        self._requested_port = port
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "OpsServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _OpsHandler)
        httpd.daemon_threads = True
        httpd.ops = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.started_at = time.time()
        self._thread = threading.Thread(
            # tight poll so stop() does not block ~0.5s on the default
            # serve_forever poll interval (telemetry teardown is on the
            # benched path)
            target=lambda: httpd.serve_forever(poll_interval=0.01),
            name="repro-ops", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"OpsServer({self.url}, {state})"
