"""Observability: dual-clock tracing, a metrics registry, and a live ops
endpoint.

* :class:`Tracer` / :data:`NOOP_TRACER` — dual-clock span recording with
  Chrome trace-event export (:mod:`repro.telemetry.tracer`);
* :class:`MetricsRegistry` — counters/gauges/histograms with Prometheus
  text exposition (:mod:`repro.telemetry.registry`);
* :class:`RunRegistry` / :class:`OpsServer` — the in-process run list and
  the HTTP thread serving ``/metrics``, ``/health``, ``/runs``;
* :class:`Telemetry` — the callback that wires all of it onto a run.

``Telemetry`` is exported lazily (PEP 562): it imports the callback base
from :mod:`repro.engine`, while :mod:`repro.engine.engine` imports the
no-op tracer from here — eager re-export would close that cycle at import
time.  Everything imported eagerly below is stdlib-only.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .runs import RunInfo, RunRegistry
from .server import OpsServer
from .tracer import NOOP_TRACER, NoopTracer, Tracer

__all__ = [
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunInfo",
    "RunRegistry",
    "OpsServer",
    "Telemetry",
    "GLOBAL_RUNS",
]


def __getattr__(name: str):
    if name in ("Telemetry", "GLOBAL_RUNS"):
        from . import callback

        return getattr(callback, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
