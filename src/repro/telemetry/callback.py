"""The ``Telemetry`` callback: one object that turns the lights on.

Attaching ``Telemetry()`` to a run installs a recording
:class:`~repro.telemetry.tracer.Tracer` on the engine and its nodes
(replacing the zero-cost no-op default), mirrors the record stream into a
:class:`~repro.telemetry.registry.MetricsRegistry`, registers the run in
the process-wide :class:`~repro.telemetry.runs.RunRegistry`, and — with
``serve=True`` — starts the live ops endpoint so ``/metrics``, ``/health``
and ``/runs`` answer while the experiment is still in flight.

Everything here *observes*; nothing feeds back into scheduling, selection,
or aggregation, which is what keeps traced runs bit-identical to untraced
ones (pinned by ``tests/scheduler/test_determinism.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.engine.callbacks import Callback
from repro.utils.logging import get_logger

from .registry import MetricsRegistry
from .runs import RunInfo, RunRegistry
from .server import OpsServer
from .tracer import NOOP_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine
    from repro.engine.metrics import MetricsCollector, RoundRecord

__all__ = ["Telemetry", "GLOBAL_RUNS"]

_LOG = get_logger("telemetry")

#: process-wide run registry: every Telemetry callback registers its runs
#: here by default, so one ops endpoint can list all runs in the process.
GLOBAL_RUNS = RunRegistry()

#: staleness is measured in global versions; codec spans are sub-second
_STALENESS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
_SPAN_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class Telemetry(Callback):
    """Turn-key observability for one run.

    Parameters
    ----------
    trace:
        Record dual-clock spans (default on).  ``False`` keeps the no-op
        tracer installed and only the registry/endpoint features are used.
    trace_path:
        Write the Chrome trace-event JSON here at shutdown (always also
        available in memory as ``telemetry.tracer``).
    serve / host / port:
        Start the ops endpoint on setup.  ``port=0`` binds an ephemeral
        port; read it back from ``telemetry.server.port``.
    registry / runs:
        Share a :class:`MetricsRegistry` / :class:`RunRegistry` across
        callbacks; defaults are a fresh registry and the module's
        :data:`GLOBAL_RUNS`.
    max_events:
        Tracer buffer cap (overflow is counted, not stored).
    """

    def __init__(
        self,
        trace: bool = True,
        trace_path: Optional[str] = None,
        serve: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        runs: Optional[RunRegistry] = None,
        max_events: int = 1_000_000,
    ) -> None:
        self.trace = bool(trace)
        self.trace_path = trace_path
        self.registry = registry if registry is not None else MetricsRegistry()
        self.runs = runs if runs is not None else GLOBAL_RUNS
        self.tracer: Any = NOOP_TRACER
        if self.trace:
            self.tracer = Tracer(max_events=max_events, observer=self._observe_span)
        self.server: Optional[OpsServer] = None
        self._serve = bool(serve)
        self._host = host
        self._port = int(port)
        self.run_info: Optional[RunInfo] = None
        self._engine: Optional["Engine"] = None
        # per-span-name instrument caches: the observer runs on every span
        # (hot path under tracing), so skip the registry's lock + label-key
        # construction after the first hit
        self._wall_hist: Dict[str, Any] = {}
        self._sim_hist: Dict[str, Any] = {}
        self._bytes_ctr: Dict[str, Any] = {}
        # record-path instrument caches, same reasoning: on_update fires per
        # aggregation record and would otherwise pay a registry lookup per
        # instrument per record
        self._tier_inst: Dict[str, Any] = {}
        reg = self.registry
        self._updates_ctr = reg.counter("repro_updates_applied_total", "Client updates merged")
        self._bytes_sent_ctr = reg.counter("repro_bytes_sent_total", "Bytes uploaded by clients")
        self._sim_time_g = reg.gauge("repro_sim_time_seconds", "Scheduler virtual clock")
        self._staleness_h = reg.histogram(
            "repro_staleness", "Mean staleness (global versions) per aggregation",
            buckets=_STALENESS_BUCKETS,
        )
        self._runtime_gauges: Optional[tuple] = None
        # robust-aggregation counters are cumulative on the scheduler side;
        # the registry counters advance by deltas so re-sampling never
        # double-counts
        self._robust_ctrs: Optional[Dict[str, Any]] = None
        self._robust_seen: Dict[str, int] = {"attacked": 0, "clipped": 0, "rejected": 0}

    # ------------------------------------------------------------------
    # span -> registry bridge
    # ------------------------------------------------------------------
    def _observe_span(
        self,
        name: str,
        cat: str,
        wall_seconds: Optional[float],
        sim_seconds: Optional[float],
        attrs: Dict[str, Any],
    ) -> None:
        if wall_seconds is not None:
            hist = self._wall_hist.get(name)
            if hist is None:
                hist = self._wall_hist[name] = self.registry.histogram(
                    "repro_span_seconds", "Wall-clock span durations by span name",
                    buckets=_SPAN_BUCKETS, span=name,
                )
            hist.observe(wall_seconds)
        if sim_seconds is not None:
            hist = self._sim_hist.get(name)
            if hist is None:
                hist = self._sim_hist[name] = self.registry.histogram(
                    "repro_span_sim_seconds", "Virtual-clock span durations by span name",
                    span=name,
                )
            hist.observe(sim_seconds)
        nbytes = attrs.get("bytes")
        if nbytes is not None:
            ctr = self._bytes_ctr.get(name)
            if ctr is None:
                ctr = self._bytes_ctr[name] = self.registry.counter(
                    "repro_codec_bytes_total", "Bytes through codec stages", stage=name,
                )
            ctr.inc(float(nbytes))

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_setup(self, engine: "Engine") -> None:
        self._engine = engine
        if self.trace:
            engine.tracer = self.tracer
            for node in engine.nodes:
                node.tracer = self.tracer
        fingerprint = None
        try:
            fingerprint = engine.spec.fingerprint()
        except Exception:  # noqa: BLE001 - opaque specs cannot serialize
            pass
        detail: Dict[str, Any] = {"topology": engine.topology.pattern}
        sched = engine.scheduler
        if sched is not None:
            detail["scheduler"] = getattr(sched, "name", type(sched).__name__)
        if engine.pool is not None:
            detail["pool_size"] = engine.pool.pool_size
            detail["num_clients"] = engine.pool.num_clients
            detail["broker"] = engine.pool.broker.scheme
        cluster = getattr(engine, "cluster", None)
        if cluster is not None:
            detail["cluster"] = cluster.url
            detail["num_clients"] = cluster.num_clients
            # membership/liveness gauges + join/leave/eviction counters
            # become visible on /metrics as soon as the run registers
            cluster.membership.bind_registry(self.registry)
        self.run_info = self.runs.register(fingerprint=fingerprint, **detail)
        self.registry.gauge(
            "repro_run_active", "1 while this run is between setup and shutdown"
        ).set(1)
        if self._serve and self.server is None:
            self.server = OpsServer(
                registry=self.registry, runs=self.runs,
                host=self._host, port=self._port,
            ).start()
            _LOG.info("ops endpoint listening on %s", self.server.url)

    def on_update(self, record: "RoundRecord", metrics: "MetricsCollector") -> None:
        tier = record.tier
        pair = self._tier_inst.get(tier)
        if pair is None:
            pair = self._tier_inst[tier] = (
                self.registry.counter(
                    "repro_records_total", "Aggregation records observed", tier=tier
                ),
                self.registry.gauge("repro_train_loss", "Latest training loss", tier=tier),
            )
        records_ctr, loss_gauge = pair
        records_ctr.inc()
        self._updates_ctr.inc(record.applied)
        self._bytes_sent_ctr.inc(record.bytes_sent)
        self._sim_time_g.set(record.sim_time)
        loss_gauge.set(record.train_loss)
        self._staleness_h.observe(record.staleness_mean)
        self._sample_runtime_gauges()
        if self.run_info is not None:
            self.runs.update(
                self.run_info.run_id,
                rounds=len(metrics.history),
                sim_time=record.sim_time,
                last_train_loss=record.train_loss,
            )

    def on_evaluate(self, record: "RoundRecord", metrics: "MetricsCollector") -> None:
        if record.eval_accuracy is not None:
            self.registry.gauge("repro_eval_accuracy", "Latest evaluation accuracy").set(
                record.eval_accuracy
            )
            if self.run_info is not None:
                self.runs.update(self.run_info.run_id, last_eval_accuracy=record.eval_accuracy)
        if record.eval_loss is not None:
            self.registry.gauge("repro_eval_loss", "Latest evaluation loss").set(record.eval_loss)

    def _sample_runtime_gauges(self) -> None:
        """Poll scheduler/pool occupancy (reads only — never feeds back)."""
        engine = self._engine
        if engine is None:
            return
        if self._runtime_gauges is None:
            reg = self.registry
            self._runtime_gauges = (
                reg.gauge("repro_event_queue_depth", "In-flight events in the virtual-time queue"),
                reg.gauge("repro_clients_in_flight", "Clients with a dispatched update pending"),
                reg.gauge("repro_turns_dispatched", "Training turns dispatched so far"),
                reg.gauge("repro_pool_pending_turns", "Pool turns queued, not yet started"),
                reg.gauge("repro_pool_free_workers", "Idle pool workers"),
                reg.gauge(
                    "repro_pool_window_occupancy",
                    "Started-but-unconsumed turns counted against the admission window",
                ),
                reg.gauge("repro_pool_window_limit", "Admission-window size"),
                reg.gauge("repro_pool_turns_run", "Pool turns completed"),
                reg.gauge(
                    "repro_broker_queue_depth",
                    "Turns dispatched to the broker and not yet completed",
                ),
                reg.gauge(
                    "repro_broker_snapshot_bytes",
                    "Bytes of client state held behind the broker",
                ),
            )
        (queue_g, inflight_g, turns_g, pending_g, free_g, occ_g, window_g,
         turns_run_g, broker_depth_g, broker_bytes_g) = self._runtime_gauges
        sched = engine.scheduler
        if sched is not None and getattr(sched, "engine", None) is engine:
            queue_g.set(len(getattr(sched, "queue", ())))
            inflight_g.set(len(getattr(sched, "_in_flight", ())))
            counts = getattr(sched, "_dispatch_count", None)
            if counts:
                turns_g.set(sum(counts.values()))
        if sched is not None and getattr(sched, "engine", None) is engine:
            counters_fn = getattr(sched, "robust_counters", None)
            if counters_fn is not None:
                if self._robust_ctrs is None:
                    reg = self.registry
                    self._robust_ctrs = {
                        "attacked": reg.counter(
                            "repro_attacked_updates_total",
                            "Updates merged that came from byzantine clients",
                        ),
                        "clipped": reg.counter(
                            "repro_robust_clipped_total",
                            "Updates norm-clipped by the robust aggregator",
                        ),
                        "rejected": reg.counter(
                            "repro_robust_rejected_total",
                            "Updates trimmed or rejected by the robust aggregator",
                        ),
                    }
                counts = counters_fn()
                for key, ctr in self._robust_ctrs.items():
                    delta = int(counts.get(key, 0)) - self._robust_seen[key]
                    if delta > 0:
                        ctr.inc(delta)
                        self._robust_seen[key] += delta
        pool = engine.pool
        if pool is not None:
            pending_g.set(pool.pending_turns())
            free_g.set(pool.broker.idle_workers())
            occ_g.set(pool._unconsumed)
            window_g.set(pool._window)
            turns_run_g.set(pool.turns_run)
            broker_depth_g.set(pool.broker.queue_depth())
            broker_bytes_g.set(pool.broker.snapshot_bytes())

    def on_shutdown(self, engine: "Engine") -> None:
        self.registry.gauge(
            "repro_run_active", "1 while this run is between setup and shutdown"
        ).set(0)
        if self.run_info is not None:
            stop_reason = engine.metrics.stop_reason
            self.runs.finish(
                self.run_info.run_id,
                status="stopped" if stop_reason else "finished",
                stop_reason=stop_reason,
            )
        if self.trace_path and self.trace:
            try:
                self.tracer.save(self.trace_path)
                _LOG.info("trace written to %s (%d events)", self.trace_path, len(self.tracer))
            except OSError as exc:
                _LOG.warning("could not write trace to %s: %s", self.trace_path, exc)
        if self.server is not None:
            self.server.stop()
            self.server = None
