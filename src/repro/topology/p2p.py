"""Peer-to-peer topology: full mesh, every node mixes with every other (Fig. 1c)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import networkx as nx

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, TOPOLOGIES, Topology

__all__ = ["PeerToPeerTopology"]


@TOPOLOGIES.register("p2p", "peer_to_peer", "mesh")
class PeerToPeerTopology(Topology):
    """Uniform all-to-all gossip: equivalent in expectation to FedAvg but
    with no coordinator (mixing weight 1/N to everyone including self)."""

    pattern = "gossip"

    def __init__(self, num_clients: int = 4, inner_comm: Optional[Dict[str, Any]] = None) -> None:
        if num_clients < 2:
            raise ValueError("p2p needs at least 2 nodes")
        self.num_clients = num_clients
        self.inner_comm = dict(inner_comm or {"backend": "torchdist"})
        self._specs: Optional[List[NodeSpec]] = None

    def specs(self) -> List[NodeSpec]:
        if self._specs is None:
            n = self.num_clients
            weight = 1.0 / n
            self._specs = [
                NodeSpec(
                    name=f"peer_{i}",
                    index=i,
                    role=NodeRole.TRAINER,
                    groups={"inner": GroupSpec("inner", i, n, self.inner_comm)},
                    shard=i,
                    mixing={j: weight for j in range(n)},
                )
                for i in range(n)
            ]
        return self._specs

    def graph(self) -> "nx.Graph":
        return nx.complete_graph(self.num_clients)
