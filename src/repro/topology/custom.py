"""Custom graph topology: explicit nodes and edges from config.

The paper's work-in-progress feature ("custom and complex topologies via
Topology's graph-based representations from the job's YAML configuration ...
the edges of the graph will determine which nodes can communicate").  Here it
is implemented: a node list plus edge list (optionally weighted) becomes a
gossip topology whose mixing matrix is the symmetric random-walk matrix with
a configurable self-loop — guaranteed doubly-substochastic rows that sum
to 1, so gossip averaging preserves the mean.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, TOPOLOGIES, Topology

__all__ = ["CustomGraphTopology"]


@TOPOLOGIES.register("custom", "graph")
class CustomGraphTopology(Topology):
    """Gossip over an arbitrary connected undirected graph.

    ``edges`` is a list of ``[u, v]`` (or ``[u, v, weight]``) pairs over node
    ids ``0..num_clients-1``.  Metropolis-Hastings weights are used so the
    mixing matrix is symmetric and doubly stochastic regardless of degree
    skew:  w_uv = 1 / (1 + max(deg(u), deg(v))),  w_uu = 1 - Σ_v w_uv.
    """

    pattern = "gossip"

    def __init__(
        self,
        num_clients: int,
        edges: Sequence[Sequence[int]],
        inner_comm: Optional[Dict[str, Any]] = None,
    ) -> None:
        if num_clients < 2:
            raise ValueError("need at least 2 nodes")
        self.num_clients = num_clients
        self.edges: List[Tuple[int, int]] = []
        for e in edges:
            u, v = int(e[0]), int(e[1])
            if not (0 <= u < num_clients and 0 <= v < num_clients):
                raise ValueError(f"edge {e} references unknown node")
            if u == v:
                raise ValueError("self-loops are implicit; do not list them")
            self.edges.append((u, v))
        g = self.graph()
        if not nx.is_connected(g):
            raise ValueError("custom topology graph must be connected")
        self.inner_comm = dict(inner_comm or {"backend": "torchdist"})
        self._specs: Optional[List[NodeSpec]] = None

    def graph(self) -> "nx.Graph":
        g = nx.Graph()
        g.add_nodes_from(range(self.num_clients))
        g.add_edges_from(self.edges)
        return g

    def specs(self) -> List[NodeSpec]:
        if self._specs is None:
            g = self.graph()
            n = self.num_clients
            out = []
            for i in range(n):
                # Metropolis-Hastings mixing weights
                mixing: Dict[int, float] = {}
                for j in g.neighbors(i):
                    mixing[j] = 1.0 / (1.0 + max(g.degree(i), g.degree(j)))
                mixing[i] = 1.0 - sum(mixing.values())
                out.append(
                    NodeSpec(
                        name=f"node_{i}",
                        index=i,
                        role=NodeRole.TRAINER,
                        groups={"inner": GroupSpec("inner", i, n, self.inner_comm)},
                        shard=i,
                        mixing=mixing,
                    )
                )
            self._specs = out
        return self._specs
