"""Ring (decentralized) topology: each node talks to its two neighbors (Fig. 1b)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import networkx as nx

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, TOPOLOGIES, Topology

__all__ = ["RingTopology"]


@TOPOLOGIES.register("ring", "decentralized")
class RingTopology(Topology):
    """N trainer nodes on a cycle; aggregation is neighbor gossip averaging.

    Mixing weights follow the standard symmetric gossip matrix: 1/3 self,
    1/3 each neighbor (configurable via ``self_weight``).
    """

    pattern = "gossip"

    def __init__(
        self,
        num_clients: int = 4,
        inner_comm: Optional[Dict[str, Any]] = None,
        self_weight: float = 1.0 / 3.0,
    ) -> None:
        if num_clients < 3:
            raise ValueError("a ring needs at least 3 nodes")
        if not (0.0 < self_weight < 1.0):
            raise ValueError("self_weight must be in (0, 1)")
        self.num_clients = num_clients
        self.inner_comm = dict(inner_comm or {"backend": "torchdist"})
        self.self_weight = self_weight
        self._specs: Optional[List[NodeSpec]] = None

    def specs(self) -> List[NodeSpec]:
        if self._specs is None:
            n = self.num_clients
            neighbor_weight = (1.0 - self.self_weight) / 2.0
            out = []
            for i in range(n):
                mixing = {
                    i: self.self_weight,
                    (i - 1) % n: neighbor_weight,
                    (i + 1) % n: neighbor_weight,
                }
                out.append(
                    NodeSpec(
                        name=f"node_{i}",
                        index=i,
                        role=NodeRole.TRAINER,
                        groups={"inner": GroupSpec("inner", i, n, self.inner_comm)},
                        shard=i,
                        mixing=mixing,
                    )
                )
            self._specs = out
        return self._specs

    def graph(self) -> "nx.Graph":
        return nx.cycle_graph(self.num_clients)
