"""Hierarchical tree / hub-and-spoke topology (Fig. 1d and Fig. 7a).

Multiple *sites*, each a dense inner group (site head at inner rank 0,
trainers below) connected over a fast protocol; site heads join a sparse
*outer* group (global root at outer rank 0) over a slow protocol.  This is
the paper's cross-facility pattern: "aggregation within a site can leverage
bandwidth-optimal MPI collectives ... cross-site communication may use gRPC".

Shards are numbered globally across trainers (site-major), so data
partitioning composes with any site layout.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Sequence

import networkx as nx

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, SiteGroup, TOPOLOGIES, Topology

__all__ = ["HierarchicalTopology"]


@TOPOLOGIES.register("hierarchical", "tree", "hub_spoke")
class HierarchicalTopology(Topology):
    """``num_sites`` inner groups of ``clients_per_site`` trainers each.

    ``inner_comm``/``outer_comm`` configs may use *different protocols*
    (e.g. torchdist inner + grpc outer) — the mixed-protocol deployment of
    Fig. 7.  Each site's inner communicator gets a distinct rendezvous
    (port/group suffix) derived from its site id.
    """

    pattern = "hierarchical"

    def __init__(
        self,
        num_sites: int = 2,
        clients_per_site: int = 3,
        inner_comm: Optional[Dict[str, Any]] = None,
        outer_comm: Optional[Dict[str, Any]] = None,
        site_sizes: Optional[Sequence[int]] = None,
    ) -> None:
        if site_sizes is not None:
            self.site_sizes = [int(s) for s in site_sizes]
        else:
            self.site_sizes = [clients_per_site] * num_sites
        if len(self.site_sizes) < 1 or any(s < 1 for s in self.site_sizes):
            raise ValueError("every site needs at least one trainer")
        self.num_sites = len(self.site_sizes)
        self.inner_comm = dict(inner_comm or {"backend": "torchdist"})
        self.outer_comm = dict(outer_comm or {"backend": "grpc"})
        self._specs: Optional[List[NodeSpec]] = None

    def _site_inner_cfg(self, site: int) -> Dict[str, Any]:
        """Per-site copy of the inner comm config with a unique rendezvous."""
        cfg = copy.deepcopy(self.inner_comm)
        if "master_port" in cfg:
            cfg["master_port"] = int(cfg["master_port"]) + site
        cfg["group"] = f"{cfg.get('group', 'inner')}-site{site}"
        cfg.setdefault("group_name", f"site{site}")
        cfg["group_name"] = f"{cfg['group_name']}"
        return cfg

    def specs(self) -> List[NodeSpec]:
        if self._specs is None:
            outer_world = self.num_sites + 1
            out: List[NodeSpec] = [
                NodeSpec(
                    name="root",
                    index=0,
                    role=NodeRole.AGGREGATOR,
                    groups={"outer": GroupSpec("outer", 0, outer_world, self.outer_comm)},
                )
            ]
            index = 1
            shard = 0
            for site, size in enumerate(self.site_sizes):
                inner_cfg = self._site_inner_cfg(site)
                inner_world = size + 1
                out.append(
                    NodeSpec(
                        name=f"site{site}_head",
                        index=index,
                        role=NodeRole.RELAY,
                        groups={
                            "inner": GroupSpec("inner", 0, inner_world, inner_cfg),
                            "outer": GroupSpec("outer", site + 1, outer_world, self.outer_comm),
                        },
                    )
                )
                index += 1
                for c in range(size):
                    out.append(
                        NodeSpec(
                            name=f"site{site}_client{c}",
                            index=index,
                            role=NodeRole.TRAINER,
                            groups={"inner": GroupSpec("inner", c + 1, inner_world, inner_cfg)},
                            shard=shard,
                        )
                    )
                    index += 1
                    shard += 1
            self._specs = out
        return self._specs

    def site_groups(self) -> List[SiteGroup]:
        """Per-site (head, trainers) structure in engine-node indices.

        Index arithmetic mirrors :meth:`specs`: the root is node 0, then each
        site contributes its head followed by its trainers."""
        out: List[SiteGroup] = []
        index = 1
        for site, size in enumerate(self.site_sizes):
            head = index
            trainers = list(range(index + 1, index + 1 + size))
            out.append(SiteGroup(site=site, head=head, trainers=trainers))
            index += 1 + size
        return out

    def graph(self) -> "nx.Graph":
        g = nx.Graph()
        specs = self.specs()
        g.add_nodes_from(s.index for s in specs)
        heads = [s for s in specs if s.role is NodeRole.RELAY]
        for head in heads:
            g.add_edge(0, head.index, link="outer")
        for s in specs:
            if s.role is NodeRole.TRAINER:
                site = s.name.split("_")[0]
                head = next(h for h in heads if h.name.startswith(site))
                g.add_edge(head.index, s.index, link="inner")
        return g
