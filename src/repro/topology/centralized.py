"""Centralized (star) topology: one aggregator, N trainer clients (Fig. 1a)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import networkx as nx

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, TOPOLOGIES, Topology

__all__ = ["CentralizedTopology"]


@TOPOLOGIES.register("centralized", "star")
class CentralizedTopology(Topology):
    """Server at group rank 0; clients at ranks 1..N.

    Mirrors the paper's Fig. 2 config:

    .. code-block:: yaml

        topology:
          _target_: repro.omnifed.topology.CentralizedTopology
          num_clients: 8
          inner_comm:
            _target_: repro.omnifed.communicator.GrpcCommunicator
            master_port: 50051
    """

    pattern = "server"

    def __init__(self, num_clients: int = 4, inner_comm: Optional[Dict[str, Any]] = None) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.num_clients = num_clients
        self.inner_comm = dict(inner_comm or {"backend": "torchdist"})
        self._specs: Optional[List[NodeSpec]] = None

    def specs(self) -> List[NodeSpec]:
        if self._specs is None:
            world = self.num_clients + 1
            out = [
                NodeSpec(
                    name="server",
                    index=0,
                    role=NodeRole.AGGREGATOR,
                    groups={"inner": GroupSpec("inner", 0, world, self.inner_comm)},
                )
            ]
            for i in range(self.num_clients):
                out.append(
                    NodeSpec(
                        name=f"client_{i}",
                        index=i + 1,
                        role=NodeRole.TRAINER,
                        groups={"inner": GroupSpec("inner", i + 1, world, self.inner_comm)},
                        shard=i,
                    )
                )
            self._specs = out
        return self._specs

    def graph(self) -> "nx.Graph":
        g = nx.star_graph(self.num_clients)  # node 0 is the hub
        return g
