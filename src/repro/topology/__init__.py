"""Topology module: node graphs and coordination patterns (paper Fig. 1).

A :class:`~repro.topology.base.Topology` declares the participants
(:class:`~repro.topology.base.NodeSpec`), their roles, the communicator
group(s) each joins (inner vs outer, enabling mixed-protocol deployments),
and — for decentralized patterns — the gossip mixing weights derived from
the node graph (a :mod:`networkx` graph).
"""

from repro.topology.base import GroupSpec, NodeRole, NodeSpec, TOPOLOGIES, Topology, build_topology
from repro.topology.centralized import CentralizedTopology
from repro.topology.custom import CustomGraphTopology
from repro.topology.hierarchical import HierarchicalTopology
from repro.topology.p2p import PeerToPeerTopology
from repro.topology.ring import RingTopology

__all__ = [
    "Topology",
    "NodeSpec",
    "NodeRole",
    "GroupSpec",
    "TOPOLOGIES",
    "build_topology",
    "CentralizedTopology",
    "RingTopology",
    "PeerToPeerTopology",
    "HierarchicalTopology",
    "CustomGraphTopology",
]
