"""Topology abstractions: node specs, roles, communicator groups."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import networkx as nx
import numpy as np

from repro.utils.registry import Registry

__all__ = [
    "NodeRole",
    "GroupSpec",
    "NodeSpec",
    "SiteGroup",
    "Topology",
    "TOPOLOGIES",
    "build_topology",
    "stationary_distribution",
]

TOPOLOGIES: Registry["Topology"] = Registry("topology")


class NodeRole(str, enum.Enum):
    """What a participant does (paper §3.3: trainer, aggregator, or relay)."""

    TRAINER = "trainer"
    AGGREGATOR = "aggregator"
    #: aggregates below and reports above (hierarchical site heads)
    RELAY = "relay"

    def trains(self) -> bool:
        return self is NodeRole.TRAINER

    def aggregates(self) -> bool:
        return self in (NodeRole.AGGREGATOR, NodeRole.RELAY)


@dataclass
class GroupSpec:
    """Membership of one node in one communicator group.

    ``comm_config`` is the (already-merged) communicator configuration; the
    engine instantiates one communicator per (node, group) from it, passing
    this node's ``rank`` and the group's ``world_size``.
    """

    name: str  # "inner" or "outer"
    rank: int
    world_size: int
    comm_config: Dict[str, Any] = field(default_factory=dict)


@dataclass
class NodeSpec:
    """Blueprint for one participant."""

    name: str
    index: int  # global index within the topology
    role: NodeRole
    groups: Dict[str, GroupSpec] = field(default_factory=dict)
    #: does this node hold a training shard? (which one)
    shard: Optional[int] = None
    #: gossip mixing weights for decentralized topologies: peer index -> weight
    mixing: Dict[int, float] = field(default_factory=dict)

    @property
    def inner(self) -> Optional[GroupSpec]:
        return self.groups.get("inner")

    @property
    def outer(self) -> Optional[GroupSpec]:
        return self.groups.get("outer")


@dataclass
class SiteGroup:
    """One site of a hierarchical federation, in engine-node indices.

    ``head`` is the site's aggregating relay; ``trainers`` are the node
    indices of the trainers below it.  The scheduler subsystem consumes this
    to bind a nested per-site execution policy.
    """

    site: int
    head: int
    trainers: List[int]


class Topology:
    """Defines the node graph and coordination pattern.

    Subclasses implement :meth:`specs` (the participants) and
    :meth:`graph` (who communicates with whom, as a networkx graph whose
    nodes are the spec indices).  The engine consumes both.
    """

    #: coordination pattern the engine should run: "server" (broadcast/
    #: gather rounds), "gossip" (neighbor mixing), or "hierarchical"
    pattern: str = "server"

    #: config keys :func:`repro.config.instantiate` must NOT recurse into —
    #: communicator configs are instantiated per node by the engine, after
    #: rank and world size are known
    DEFER_KEYS = ("inner_comm", "outer_comm")

    def specs(self) -> List[NodeSpec]:
        raise NotImplementedError

    def graph(self) -> "nx.Graph":
        raise NotImplementedError

    @property
    def world_size(self) -> int:
        return len(self.specs())

    def trainer_count(self) -> int:
        return sum(1 for s in self.specs() if s.role.trains())

    def site_groups(self) -> List[SiteGroup]:
        """Site structure for multi-tier topologies (empty for flat ones)."""
        return []

    # ------------------------------------------------------------------
    # graph structure (decentralized runtimes consume these uniformly)
    # ------------------------------------------------------------------
    def neighbor_map(self) -> Dict[int, List[int]]:
        """Adjacency as ``{node index: sorted neighbor indices}``."""
        g = self.graph()
        return {int(i): sorted(int(j) for j in g.neighbors(i)) for i in g.nodes}

    def mixing_matrix(self) -> np.ndarray:
        """Row-stochastic mixing matrix ``W`` (``W[i, j]`` = weight node
        ``i`` gives node ``j``'s state when averaging).

        Built from the specs' per-node ``mixing`` dicts when the topology
        declares them (ring/p2p carry hand-tuned weights); otherwise falls
        back to Metropolis-Hastings weights computed from :meth:`graph`, so
        every topology exposes a usable matrix.
        """
        specs = self.specs()
        n = len(specs)
        if not any(s.mixing for s in specs):
            return self.metropolis_hastings_matrix()
        w = np.zeros((n, n), dtype=np.float64)
        for s in specs:
            if s.mixing:
                for j, weight in s.mixing.items():
                    w[s.index, int(j)] = float(weight)
            else:
                w[s.index, s.index] = 1.0  # isolated/aggregator rows
        return w

    def metropolis_hastings_matrix(self) -> np.ndarray:
        """Symmetric doubly-stochastic mixing weights from the graph alone:
        ``w_uv = 1 / (1 + max(deg(u), deg(v)))``, self-loops absorb the
        remainder.  Safe for arbitrary degree skew."""
        g = self.graph()
        n = self.world_size
        w = np.zeros((n, n), dtype=np.float64)
        for u, v in g.edges:
            weight = 1.0 / (1.0 + max(g.degree(u), g.degree(v)))
            w[int(u), int(v)] = weight
            w[int(v), int(u)] = weight
        for i in range(n):
            w[i, i] = 1.0 - w[i].sum()
        return w

    def consensus_weights(self) -> np.ndarray:
        """Stationary distribution ``π`` of the mixing matrix (``πW = π``).

        This is the weighting under which repeated gossip averaging
        preserves the network mean — uniform for the doubly-stochastic
        matrices the built-in topologies use, and the right consensus
        weighting for any custom row-stochastic matrix.
        """
        return stationary_distribution(self.mixing_matrix())

    def describe(self) -> str:
        """One-line summary for logs."""
        g = self.graph()
        return (
            f"{type(self).__name__}(nodes={self.world_size}, trainers={self.trainer_count()}, "
            f"edges={g.number_of_edges()}, pattern={self.pattern})"
        )

    def validate(self) -> None:
        """Sanity-check the spec list (ranks contiguous per group, etc.)."""
        specs = self.specs()
        if not specs:
            raise ValueError("topology has no nodes")
        by_group: Dict[str, List[GroupSpec]] = {}
        for s in specs:
            for gname, gs in s.groups.items():
                by_group.setdefault(f"{gname}:{gs.world_size}:{id(gs.comm_config)}", [])
        # per-group rank uniqueness within same world size and name
        seen: Dict[tuple, set] = {}
        for s in specs:
            for gname, gs in s.groups.items():
                key = (gname, _group_identity(gs))
                ranks = seen.setdefault(key, set())
                if gs.rank in ranks:
                    raise ValueError(f"duplicate rank {gs.rank} in group {gname} of {type(self).__name__}")
                ranks.add(gs.rank)


def stationary_distribution(w: np.ndarray) -> np.ndarray:
    """Stationary distribution ``π`` (``πW = π``) of a row-stochastic matrix,
    falling back to uniform for defective or degenerate inputs."""
    n = w.shape[0]
    vals, vecs = np.linalg.eig(w.T)
    idx = int(np.argmin(np.abs(vals - 1.0)))
    pi = np.real(vecs[:, idx])
    total = pi.sum()
    if not np.isfinite(pi).all() or abs(total) < 1e-12:
        return np.full(n, 1.0 / n)
    pi = pi / total
    if (pi < -1e-9).any():
        return np.full(n, 1.0 / n)
    return np.clip(pi, 0.0, None) / np.clip(pi, 0.0, None).sum()


def _group_identity(gs: GroupSpec) -> str:
    cfg = gs.comm_config or {}
    return f"{cfg.get('master_port', cfg.get('broker_url', ''))}|{cfg.get('group', '')}|{gs.world_size}"


def build_topology(name: str, **kwargs) -> Topology:
    """Build a registered topology template by name."""
    return TOPOLOGIES.build(name, **kwargs)
