"""Topology abstractions: node specs, roles, communicator groups."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import networkx as nx

from repro.utils.registry import Registry

__all__ = [
    "NodeRole",
    "GroupSpec",
    "NodeSpec",
    "SiteGroup",
    "Topology",
    "TOPOLOGIES",
    "build_topology",
]

TOPOLOGIES: Registry["Topology"] = Registry("topology")


class NodeRole(str, enum.Enum):
    """What a participant does (paper §3.3: trainer, aggregator, or relay)."""

    TRAINER = "trainer"
    AGGREGATOR = "aggregator"
    #: aggregates below and reports above (hierarchical site heads)
    RELAY = "relay"

    def trains(self) -> bool:
        return self is NodeRole.TRAINER

    def aggregates(self) -> bool:
        return self in (NodeRole.AGGREGATOR, NodeRole.RELAY)


@dataclass
class GroupSpec:
    """Membership of one node in one communicator group.

    ``comm_config`` is the (already-merged) communicator configuration; the
    engine instantiates one communicator per (node, group) from it, passing
    this node's ``rank`` and the group's ``world_size``.
    """

    name: str  # "inner" or "outer"
    rank: int
    world_size: int
    comm_config: Dict[str, Any] = field(default_factory=dict)


@dataclass
class NodeSpec:
    """Blueprint for one participant."""

    name: str
    index: int  # global index within the topology
    role: NodeRole
    groups: Dict[str, GroupSpec] = field(default_factory=dict)
    #: does this node hold a training shard? (which one)
    shard: Optional[int] = None
    #: gossip mixing weights for decentralized topologies: peer index -> weight
    mixing: Dict[int, float] = field(default_factory=dict)

    @property
    def inner(self) -> Optional[GroupSpec]:
        return self.groups.get("inner")

    @property
    def outer(self) -> Optional[GroupSpec]:
        return self.groups.get("outer")


@dataclass
class SiteGroup:
    """One site of a hierarchical federation, in engine-node indices.

    ``head`` is the site's aggregating relay; ``trainers`` are the node
    indices of the trainers below it.  The scheduler subsystem consumes this
    to bind a nested per-site execution policy.
    """

    site: int
    head: int
    trainers: List[int]


class Topology:
    """Defines the node graph and coordination pattern.

    Subclasses implement :meth:`specs` (the participants) and
    :meth:`graph` (who communicates with whom, as a networkx graph whose
    nodes are the spec indices).  The engine consumes both.
    """

    #: coordination pattern the engine should run: "server" (broadcast/
    #: gather rounds), "gossip" (neighbor mixing), or "hierarchical"
    pattern: str = "server"

    #: config keys :func:`repro.config.instantiate` must NOT recurse into —
    #: communicator configs are instantiated per node by the engine, after
    #: rank and world size are known
    DEFER_KEYS = ("inner_comm", "outer_comm")

    def specs(self) -> List[NodeSpec]:
        raise NotImplementedError

    def graph(self) -> "nx.Graph":
        raise NotImplementedError

    @property
    def world_size(self) -> int:
        return len(self.specs())

    def trainer_count(self) -> int:
        return sum(1 for s in self.specs() if s.role.trains())

    def site_groups(self) -> List[SiteGroup]:
        """Site structure for multi-tier topologies (empty for flat ones)."""
        return []

    def describe(self) -> str:
        """One-line summary for logs."""
        g = self.graph()
        return (
            f"{type(self).__name__}(nodes={self.world_size}, trainers={self.trainer_count()}, "
            f"edges={g.number_of_edges()}, pattern={self.pattern})"
        )

    def validate(self) -> None:
        """Sanity-check the spec list (ranks contiguous per group, etc.)."""
        specs = self.specs()
        if not specs:
            raise ValueError("topology has no nodes")
        by_group: Dict[str, List[GroupSpec]] = {}
        for s in specs:
            for gname, gs in s.groups.items():
                by_group.setdefault(f"{gname}:{gs.world_size}:{id(gs.comm_config)}", [])
        # per-group rank uniqueness within same world size and name
        seen: Dict[tuple, set] = {}
        for s in specs:
            for gname, gs in s.groups.items():
                key = (gname, _group_identity(gs))
                ranks = seen.setdefault(key, set())
                if gs.rank in ranks:
                    raise ValueError(f"duplicate rank {gs.rank} in group {gname} of {type(self).__name__}")
                ranks.add(gs.rank)


def _group_identity(gs: GroupSpec) -> str:
    cfg = gs.comm_config or {}
    return f"{cfg.get('master_port', cfg.get('broker_url', ''))}|{cfg.get('group', '')}|{gs.world_size}"


def build_topology(name: str, **kwargs) -> Topology:
    """Build a registered topology template by name."""
    return TOPOLOGIES.build(name, **kwargs)
