"""Live cluster runtime: real transport, membership, failure detection.

The control plane that turns the simulator into a deployable system — see
:mod:`repro.cluster.coordinator` (engine side), :mod:`repro.cluster.node`
(the ``python -m repro node <url>`` member process), and
:mod:`repro.cluster.runtime` (the ClientRuntime seam the schedulers drive).
"""

from repro.cluster.coordinator import ClusterCoordinator, LiveTicket
from repro.cluster.failure import (
    FailureDetector,
    PhiAccrualDetector,
    TimeoutDetector,
    build_detector,
)
from repro.cluster.heartbeat import Heartbeater
from repro.cluster.membership import Member, Membership
from repro.cluster.node import ClusterNode, run_node
from repro.cluster.runtime import LiveRuntime

__all__ = [
    "ClusterCoordinator",
    "LiveTicket",
    "FailureDetector",
    "TimeoutDetector",
    "PhiAccrualDetector",
    "build_detector",
    "Heartbeater",
    "Member",
    "Membership",
    "ClusterNode",
    "run_node",
    "LiveRuntime",
]
