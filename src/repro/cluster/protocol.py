"""Control-plane message codec for the live cluster runtime.

The cluster speaks the framework's existing binary wire format
(:mod:`repro.comm.wire`) over the existing transports
(:mod:`repro.comm.transport`): every control message is one
``encode_message("control", {...}, {})`` frame whose meta carries an ``op``
key, and every data-plane frame (a client turn or its result) is the exact
frame :mod:`repro.runtime.serde` already produces for the broker seam —
``kind == "request"`` for turns, ``"response"``/``"error"`` for results.
Reusing the serde frames verbatim is what lets a cluster node replay a
client turn bit-identically to a pool worker.

Ops (node -> coordinator, each answered synchronously on the same channel):

``join``       capability exchange; the reply carries the published spec
               YAML, the cohort size, and the heartbeat/lease contract
``heartbeat``  lease renewal; the reply carries ``stop`` once the run ends
``poll``       ask for work; the reply is either a raw serde turn frame
               (kind ``request``) or a control frame with ``empty: true``
``result``     a raw serde result frame, pushed as-is (no control wrapper)
``leave``      graceful deregistration
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.comm.wire import MAGIC, MESSAGE_KINDS, WireError, decode_message, encode_message

_KIND_NAMES = {code: name for name, code in MESSAGE_KINDS.items()}

__all__ = [
    "ProtocolError",
    "encode_control",
    "decode_control",
    "is_turn_frame",
    "peek_kind",
]


class ProtocolError(WireError):
    """A cluster frame that does not follow the control-plane contract."""


def encode_control(op: str, **meta: Any) -> bytes:
    """One control-plane frame: ``op`` plus JSON-safe keyword payload."""
    body: Dict[str, Any] = {"op": str(op)}
    body.update(meta)
    return encode_message("control", body, {})


def decode_control(frame: bytes) -> Tuple[str, Dict[str, Any]]:
    """-> ``(op, meta)``; raises :class:`ProtocolError` on non-control frames."""
    kind, meta, _arrays = decode_message(frame)
    if kind != "control" or "op" not in meta:
        raise ProtocolError(f"expected a control frame with an op, got kind={kind!r}")
    op = str(meta.pop("op"))
    return op, meta


def peek_kind(frame: bytes) -> str:
    """The wire kind from a frame's fixed header, without decoding the body
    (turn frames carry whole model payloads — peeking must stay O(1))."""
    if len(frame) < 5 or frame[:4] != MAGIC:
        raise ProtocolError("not a wire frame (bad magic)")
    kind = _KIND_NAMES.get(frame[4])
    if kind is None:
        raise ProtocolError(f"unknown wire kind code {frame[4]}")
    return kind


def is_turn_frame(frame: bytes) -> bool:
    """True when ``frame`` is a serde turn request (work to execute)."""
    return peek_kind(frame) == "request"
