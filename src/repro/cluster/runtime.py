"""``LiveRuntime``: the ClientRuntime seam over real cluster members.

The same contract the schedulers already drive — ``client_ids()``,
``submit()``, ``evaluate_all()``, ``shutdown()`` — implemented by queueing
serde turn frames on the coordinator's per-member work queues.  Because
clients are *pinned* to members (state lives on the member, no snapshot
shipping) and each member executes its polled turns serially, per-client
FIFO holds exactly as it does for dedicated actors; the policies run
unchanged.

What changes relative to the simulated runtimes:

* ``live = True`` — schedulers switch to wall-clock arrival times and
  disable the scripted heterogeneity/dropout model (real networks provide
  both for free);
* ``live_clients()`` — the membership view; selection only picks clients a
  live member currently serves, so an evicted node's clients stop being
  scheduled within one lease window;
* a turn whose member dies fails with
  :class:`~repro.runtime.broker.PeerLostError`, which the scheduler maps
  onto its dropped-dispatch path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator, LiveTicket
from repro.runtime.base import ClientRuntime
from repro.runtime.broker import PeerLostError
from repro.utils.logging import get_logger

__all__ = ["LiveRuntime"]

_LOG = get_logger("cluster.runtime")


class LiveRuntime(ClientRuntime):
    """ClientRuntime over a :class:`ClusterCoordinator`'s membership."""

    pooled = False
    live = True

    def __init__(self, coordinator: ClusterCoordinator) -> None:
        self.coordinator = coordinator
        self._started = False
        self._down = False

    # ------------------------------------------------------------------
    @property
    def membership(self):
        return self.coordinator.membership

    @property
    def num_clients(self) -> int:
        return self.coordinator.num_clients

    @property
    def url(self) -> str:
        return self.coordinator.url

    def start(self, timeout: Optional[float] = None) -> None:
        """Wait for the joining quorum and pin clients (idempotent)."""
        if self._started:
            return
        self.coordinator.start()
        self.coordinator.wait_for_quorum(timeout)
        self._started = True

    # ------------------------------------------------------------------
    # the ClientRuntime contract
    # ------------------------------------------------------------------
    def client_ids(self) -> List[int]:
        return list(range(self.coordinator.num_clients))

    def live_clients(self) -> Optional[List[int]]:
        return self.membership.live_clients()

    def submit(self, client: int, method: str, *args, **kwargs) -> LiveTicket:
        return self.coordinator.submit_turn(int(client), method, args, kwargs)

    def evaluate_all(self, max_batches: Optional[int] = None,
                     timeout: Optional[float] = None) -> Tuple[float, float]:
        clients = self.live_clients() or []
        if not clients:
            raise RuntimeError(
                "no live cluster members to evaluate on — every node left or "
                "was evicted"
            )
        tickets = [
            (c, self.submit(c, "evaluate", None, max_batches)) for c in clients
        ]
        losses, accs = [], []
        for client, ticket in tickets:
            try:
                loss, acc = ticket.result(timeout)
            except PeerLostError:
                # the member died mid-evaluation: skip its clients, the
                # surviving cohort still yields a mean
                _LOG.warning("evaluation turn for client %d lost to peer failure", client)
                continue
            losses.append(float(loss))
            accs.append(float(acc))
        if not losses:
            raise RuntimeError("every evaluation turn was lost to peer failures")
        return float(np.mean(losses)), float(np.mean(accs))

    def shutdown(self) -> None:
        if self._down:
            return
        self._down = True
        self.coordinator.close()
