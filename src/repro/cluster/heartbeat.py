"""The node-side heartbeat loop.

A :class:`Heartbeater` runs on its own daemon thread and periodically calls
a supplied ``beat()`` callable (which sends one heartbeat frame and returns
the coordinator's reply meta).  It watches the reply for the coordinator's
``stop`` flag and for membership rejection (``ok: false`` — the node was
evicted while partitioned and must stop serving), and tolerates a bounded
number of consecutive transport failures before declaring the coordinator
lost.  Outcomes surface as events on the owner's ``threading.Event``s
rather than exceptions, because the consumer is a turn loop on another
thread.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.utils.logging import get_logger

__all__ = ["Heartbeater"]

_LOG = get_logger("cluster.heartbeat")


class Heartbeater:
    """Periodic heartbeat sender with failure accounting.

    Parameters
    ----------
    beat:
        Sends one heartbeat and returns the reply meta dict.  Raising
        counts as one transport failure; ``max_failures`` consecutive
        failures set ``lost``.
    period:
        Seconds between beats (the coordinator's advertised interval).
    on_stop:
        Called once when the coordinator's reply carries ``stop: true`` or
        rejects the membership.
    """

    def __init__(
        self,
        beat: Callable[[], Dict[str, Any]],
        period: float,
        *,
        max_failures: int = 3,
        on_stop: Optional[Callable[[], None]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("heartbeat period must be > 0")
        self._beat = beat
        self.period = float(period)
        self.max_failures = int(max_failures)
        self._on_stop = on_stop
        self.stopped = threading.Event()   # coordinator asked us to stop
        self.lost = threading.Event()      # coordinator unreachable/evicted us
        self._shutdown = threading.Event()
        self._failures = 0
        self.beats_sent = 0
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "Heartbeater":
        self._thread = threading.Thread(
            target=self._loop, name="cluster-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._shutdown.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._shutdown.wait(self.period):
            try:
                reply = self._beat()
            except Exception as exc:  # noqa: BLE001 - transport failures counted
                self._failures += 1
                _LOG.warning(
                    "heartbeat failed (%d/%d): %s",
                    self._failures, self.max_failures, exc,
                )
                if self._failures >= self.max_failures:
                    self.lost.set()
                    self._signal_stop()
                    return
                continue
            self._failures = 0
            self.beats_sent += 1
            if not reply.get("ok", True):
                # the coordinator no longer knows us (evicted during a
                # partition): stop serving rather than train into the void
                _LOG.warning("heartbeat rejected: membership revoked")
                self.lost.set()
                self._signal_stop()
                return
            if reply.get("stop"):
                self.stopped.set()
                self._signal_stop()
                return

    def _signal_stop(self) -> None:
        if self._on_stop is not None:
            try:
                self._on_stop()
            except Exception:  # noqa: BLE001
                _LOG.exception("heartbeat on_stop hook failed")
