"""Failure detection over heartbeat arrivals: lease timeout and phi-accrual.

Two detectors behind one interface — ``observe(peer, now)`` on every
heartbeat, ``suspect(peer, now) -> bool`` when the membership sweep asks
whether a peer should be evicted:

``timeout``
    The classic lease: a peer is suspect once ``now - last_heartbeat``
    exceeds the lease window.  Deterministic and easy to reason about; the
    default.

``phi``
    The phi-accrual detector (Hayashibara et al., the Akka/Cassandra
    design, also used by Fedstellar-style FL deployments): heartbeat
    inter-arrival times feed a per-peer normal model, and suspicion is the
    continuous value ``phi = -log10(P(arrival later than now))``.  Crossing
    ``threshold`` (8 ≈ a 1-in-10^8 chance the peer is alive and merely
    late) marks the peer suspect.  Adapts to jittery links instead of
    hard-coding a window; the lease still applies as a hard upper bound so
    a peer whose very first heartbeats never arrive cannot linger.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["FailureDetector", "TimeoutDetector", "PhiAccrualDetector", "build_detector"]

DETECTOR_KINDS = ("timeout", "phi")


class FailureDetector:
    """Heartbeat-arrival observer answering "is this peer dead?"."""

    def observe(self, peer: str, now: float) -> None:
        raise NotImplementedError

    def suspect(self, peer: str, now: float) -> bool:
        raise NotImplementedError

    def suspicion(self, peer: str, now: float) -> float:
        """A monotone liveness score (detector-specific scale) for gauges."""
        raise NotImplementedError

    def forget(self, peer: str) -> None:
        """Drop a peer's history (after leave/eviction)."""


class TimeoutDetector(FailureDetector):
    """Suspect a peer once its last heartbeat is older than the lease."""

    def __init__(self, lease: float = 3.0) -> None:
        if lease <= 0:
            raise ValueError("lease must be > 0")
        self.lease = float(lease)
        self._last: Dict[str, float] = {}

    def observe(self, peer: str, now: float) -> None:
        self._last[peer] = float(now)

    def suspect(self, peer: str, now: float) -> bool:
        last = self._last.get(peer)
        return last is not None and (now - last) > self.lease

    def suspicion(self, peer: str, now: float) -> float:
        last = self._last.get(peer)
        if last is None:
            return 0.0
        return max(0.0, now - last) / self.lease

    def forget(self, peer: str) -> None:
        self._last.pop(peer, None)


class PhiAccrualDetector(FailureDetector):
    """Phi-accrual suspicion over a sliding window of inter-arrival times."""

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 100,
        min_std: float = 0.05,
        lease: float = 3.0,
        first_estimate: float = 0.5,
    ) -> None:
        if threshold <= 0:
            raise ValueError("phi threshold must be > 0")
        self.threshold = float(threshold)
        self.window = int(window)
        self.min_std = float(min_std)
        self.lease = float(lease)
        self.first_estimate = float(first_estimate)
        self._last: Dict[str, float] = {}
        self._intervals: Dict[str, List[float]] = {}

    def observe(self, peer: str, now: float) -> None:
        last = self._last.get(peer)
        if last is not None:
            history = self._intervals.setdefault(peer, [])
            history.append(max(1e-6, float(now) - last))
            if len(history) > self.window:
                del history[: len(history) - self.window]
        self._last[peer] = float(now)

    def phi(self, peer: str, now: float) -> float:
        last = self._last.get(peer)
        if last is None:
            return 0.0
        elapsed = max(0.0, float(now) - last)
        history = self._intervals.get(peer) or [self.first_estimate]
        mean = sum(history) / len(history)
        var = sum((x - mean) ** 2 for x in history) / len(history)
        std = max(math.sqrt(var), self.min_std, 1e-6)
        # P(interval > elapsed) under N(mean, std); phi = -log10 of it
        z = (elapsed - mean) / std
        p_later = 0.5 * math.erfc(z / math.sqrt(2.0))
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def suspect(self, peer: str, now: float) -> bool:
        if self.phi(peer, now) > self.threshold:
            return True
        # hard bound: a peer with too little history for phi to accrue must
        # still die within the lease window
        last = self._last.get(peer)
        return last is not None and (now - last) > self.lease

    def suspicion(self, peer: str, now: float) -> float:
        return self.phi(peer, now)

    def forget(self, peer: str) -> None:
        self._last.pop(peer, None)
        self._intervals.pop(peer, None)


def build_detector(kind: str, *, lease: float = 3.0,
                   phi_threshold: float = 8.0,
                   window: Optional[int] = None) -> FailureDetector:
    kind = str(kind).strip().lower()
    if kind == "timeout":
        return TimeoutDetector(lease=lease)
    if kind == "phi":
        return PhiAccrualDetector(
            threshold=phi_threshold, lease=lease,
            window=int(window) if window is not None else 100,
        )
    raise ValueError(f"unknown failure detector {kind!r}; have {DETECTOR_KINDS}")
