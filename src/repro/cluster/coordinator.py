"""The cluster coordinator: the control plane's server half.

Runs inside the engine process.  Hosts one
:class:`~repro.comm.transport.ServerTransport` (TCP for real deployments,
in-proc for tests), a :class:`~repro.cluster.membership.Membership`
registry fed by the join/heartbeat/leave ops, a per-member work queue of
pre-encoded turn frames, and a sweep thread that asks the failure detector
who died and evicts them — failing the evicted member's queued and
in-flight turns with :class:`~repro.runtime.broker.PeerLostError` so the
scheduler maps them onto its dropped-dispatch path instead of stalling.

Protocol handling is synchronous per connection (the transport runs one
thread per connection), so a node's ``poll`` may long-wait on the member's
queue condition without blocking other members.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cluster.failure import build_detector
from repro.cluster.membership import Member, Membership
from repro.cluster.protocol import ProtocolError, decode_control, encode_control, peek_kind
from repro.comm.transport import make_server_transport
from repro.runtime import serde
from repro.runtime.broker import PeerLostError
from repro.utils.logging import get_logger

__all__ = ["LiveTicket", "ClusterCoordinator"]

_LOG = get_logger("cluster.coordinator")


class LiveTicket:
    """Future-like handle for one live turn (the ClientRuntime ticket shape)."""

    def __init__(self, turn_id: int, client: int) -> None:
        self.turn_id = int(turn_id)
        self.client = int(client)
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"live turn {self.turn_id} (client {self.client}) timed out"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"live turn {self.turn_id} (client {self.client}) timed out"
            )
        return self._error


class ClusterCoordinator:
    """Membership + turn dispatch for one live run."""

    def __init__(
        self,
        spec_yaml: str,
        num_clients: int,
        *,
        transport: str = "tcp",
        bind: str = "127.0.0.1:0",
        min_nodes: int = 1,
        join_timeout: float = 60.0,
        heartbeat: float = 0.5,
        lease: float = 3.0,
        detector: str = "timeout",
        phi_threshold: float = 8.0,
    ) -> None:
        self.spec_yaml = str(spec_yaml)
        self.num_clients = int(num_clients)
        self.transport_kind = str(transport)
        self.min_nodes = int(min_nodes)
        self.join_timeout = float(join_timeout)
        self.heartbeat = float(heartbeat)
        self.lease = float(lease)
        self.membership = Membership(
            self.num_clients,
            build_detector(detector, lease=lease, phi_threshold=phi_threshold),
        )
        self._server = make_server_transport(self.transport_kind, bind)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        # node_id -> queue of (turn_id, frame); turn_id -> ticket; in-flight
        # turn_id -> node_id (polled, result not yet posted)
        self._queues: Dict[str, Deque[Tuple[int, bytes]]] = {}
        self._tickets: Dict[int, LiveTicket] = {}
        self._in_flight: Dict[int, str] = {}
        self._turn_seq = 0
        self._stopping = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterCoordinator":
        """Bind the transport and start the eviction sweep (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._server.start(self._handle)
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="cluster-sweep", daemon=True
        )
        self._sweeper.start()
        _LOG.info("cluster coordinator listening on %s", self.url)
        return self

    @property
    def url(self) -> str:
        return f"{self.transport_kind}://{self._server.address}"

    def wait_for_quorum(self, timeout: Optional[float] = None) -> None:
        """Block until ``min_nodes`` members joined, then pin clients."""
        deadline = time.monotonic() + (timeout if timeout is not None else self.join_timeout)
        while len(self.membership.alive_members()) < self.min_nodes:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"cluster quorum not reached: {len(self.membership.alive_members())}"
                    f"/{self.min_nodes} nodes joined within "
                    f"{timeout if timeout is not None else self.join_timeout:.1f}s "
                    f"(nodes dial in with `python -m repro node {self.url}`)"
                )
            time.sleep(0.02)
        self.membership.assign_initial()
        _LOG.info(
            "cluster quorum reached: %d member(s), %d clients pinned",
            len(self.membership.alive_members()), self.num_clients,
        )

    def close(self, grace: Optional[float] = None) -> None:
        """Broadcast stop, give members a grace window to leave, tear down."""
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        with self._work:
            self._work.notify_all()
        if grace is None:
            grace = min(2.0, 4 * self.heartbeat)
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            if not self.membership.alive_members():
                break
            time.sleep(0.02)
        self._server.stop()
        if self._sweeper is not None:
            self._sweeper.join(timeout=2.0)
        # anything still pending can never complete
        with self._lock:
            self._fail_tickets_locked(
                list(self._tickets), "coordinator shut down"
            )

    # ------------------------------------------------------------------
    # engine-facing dispatch
    # ------------------------------------------------------------------
    def submit_turn(self, client: int, method: str, args: tuple, kwargs: dict) -> LiveTicket:
        """Encode one turn and queue it on the client's owning member."""
        with self._lock:
            self._turn_seq += 1
            turn_id = self._turn_seq
        ticket = LiveTicket(turn_id, client)
        owner = self.membership.owner_of(client)
        if owner is None or self._stopping.is_set():
            ticket.set_exception(PeerLostError(
                f"client {client} has no live member"
                + (" (coordinator stopping)" if self._stopping.is_set() else "")
            ))
            return ticket
        frame = serde.encode_turn(turn_id, client, method, args, kwargs)
        with self._work:
            # the owner may have been evicted between the lookup and here;
            # re-check under the queue lock, where eviction drains queues
            member = self.membership.owner_of(client)
            if member is None:
                ticket.set_exception(PeerLostError(f"client {client} has no live member"))
                return ticket
            self._tickets[turn_id] = ticket
            self._queues.setdefault(member.node_id, deque()).append((turn_id, frame))
            self._work.notify_all()
        return ticket

    def pending_turns(self) -> int:
        with self._lock:
            return len(self._tickets)

    # ------------------------------------------------------------------
    # protocol handler (runs on transport connection threads)
    # ------------------------------------------------------------------
    def _handle(self, frame: bytes) -> bytes:
        kind = peek_kind(frame)
        if kind in ("response", "error"):
            return self._handle_result(frame)
        op, meta = decode_control(frame)
        if op == "join":
            return self._handle_join(meta)
        if op == "heartbeat":
            return self._handle_heartbeat(meta)
        if op == "poll":
            return self._handle_poll(meta)
        if op == "leave":
            return self._handle_leave(meta)
        if op == "status":
            return encode_control(
                "reply", ok=True, members=self.membership.describe(),
                pending=self.pending_turns(), stop=self._stopping.is_set(),
            )
        raise ProtocolError(f"unknown cluster op {op!r}")

    def _handle_join(self, meta: Dict[str, Any]) -> bytes:
        node_id = str(meta.get("node_id") or "")
        if not node_id:
            return encode_control("reply", ok=False, error="join needs a node_id")
        if self._stopping.is_set():
            return encode_control("reply", ok=False, error="run is stopping", stop=True)
        member = self.membership.join(node_id, dict(meta.get("caps") or {}))
        return encode_control(
            "reply", ok=True, node_id=member.node_id,
            num_clients=self.num_clients, heartbeat=self.heartbeat,
            lease=self.lease, spec=self.spec_yaml, clients=list(member.clients),
        )

    def _handle_heartbeat(self, meta: Dict[str, Any]) -> bytes:
        node_id = str(meta.get("node_id") or "")
        ok = self.membership.heartbeat(node_id)
        return encode_control("reply", ok=ok, stop=self._stopping.is_set())

    def _handle_poll(self, meta: Dict[str, Any]) -> bytes:
        node_id = str(meta.get("node_id") or "")
        wait = min(float(meta.get("wait", 0.5)), 30.0)
        member = self.membership.get(node_id)
        if member is None or not member.alive:
            return encode_control("reply", ok=False, empty=True,
                                  stop=self._stopping.is_set())
        deadline = time.monotonic() + wait
        with self._work:
            while True:
                queue = self._queues.get(node_id)
                if queue:
                    turn_id, frame = queue.popleft()
                    self._in_flight[turn_id] = node_id
                    return frame
                if self._stopping.is_set():
                    return encode_control("reply", ok=True, empty=True, stop=True)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return encode_control("reply", ok=True, empty=True, stop=False)
                self._work.wait(remaining)

    def _handle_leave(self, meta: Dict[str, Any]) -> bytes:
        node_id = str(meta.get("node_id") or "")
        orphans = self.membership.leave(node_id)
        with self._lock:
            self._drop_member_turns_locked(
                node_id, f"member {node_id} left the cluster"
            )
        return encode_control("reply", ok=True, orphans=orphans)

    def _handle_result(self, frame: bytes) -> bytes:
        result = serde.decode_result(frame)
        turn_id = result["turn"]
        with self._lock:
            ticket = self._tickets.pop(turn_id, None)
            self._in_flight.pop(turn_id, None)
        if ticket is None:
            # duplicate or a turn already failed by eviction — drop it
            return encode_control("reply", ok=True, duplicate=True)
        if result["ok"]:
            ticket.set_result(result["value"])
        else:
            err = result["error"]
            ticket.set_exception(RuntimeError(
                f"remote turn failed on {result['worker'] or 'unknown node'}: "
                f"{err['type']}: {err['message']}\n{err.get('traceback', '')}"
            ))
        return encode_control("reply", ok=True)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _sweep_loop(self) -> None:
        period = max(0.05, min(self.heartbeat, self.lease / 4.0))
        while not self._stopping.wait(period):
            for member in self.membership.sweep():
                with self._lock:
                    self._drop_member_turns_locked(
                        member.node_id,
                        f"member {member.node_id} evicted by the failure detector",
                    )
                with self._work:
                    self._work.notify_all()

    def _drop_member_turns_locked(self, node_id: str, reason: str) -> None:
        queue = self._queues.pop(node_id, None)
        doomed: List[int] = [tid for tid, _ in (queue or ())]
        doomed.extend(
            tid for tid, owner in self._in_flight.items() if owner == node_id
        )
        self._fail_tickets_locked(doomed, reason)

    def _fail_tickets_locked(self, turn_ids: List[int], reason: str) -> None:
        for tid in turn_ids:
            self._in_flight.pop(tid, None)
            ticket = self._tickets.pop(tid, None)
            if ticket is not None and not ticket.done():
                ticket.set_exception(PeerLostError(
                    f"turn {tid} (client {ticket.client}) lost: {reason}"
                ))

    # ------------------------------------------------------------------
    def members_lost(self) -> List[Member]:
        """Evicted members (for status displays)."""
        return [m for m in self.membership._members.values() if m.state == "evicted"]
