"""Cluster membership: who is alive, and which clients they serve.

The coordinator owns one :class:`Membership` registry.  Nodes enter through
a join handshake (capability exchange: host, pid, slots), stay alive by
renewing their lease with heartbeats, and exit either gracefully (leave) or
by eviction when the :class:`~repro.cluster.failure.FailureDetector` stops
believing their heartbeats.

Logical clients (data-shard indices) are *pinned* to members: once the
minimum quorum joins, every client is assigned round-robin over the joined
members (ordered by join time, so the assignment is reproducible given the
same join order), and a client's state lives on its member for the rest of
the run — no snapshot shipping, which is what keeps per-client FIFO trivial
over a network.  When a member dies its clients become *orphans*: they drop
out of the live set (selection stops picking them) until a new member joins
and adopts them, restarting those clients from the published baseline.

Everything here is synchronized on one lock and does no I/O; the
coordinator calls in from its transport handler and sweep threads.  State
transitions invoke the optional ``events`` hook (joined/left/evicted/
adopted) and update bound telemetry instruments, so liveness is visible on
the ops endpoint the moment it changes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.failure import FailureDetector
from repro.utils.logging import get_logger

__all__ = ["Member", "Membership"]

_LOG = get_logger("cluster.membership")

#: member lifecycle states
ALIVE = "alive"
LEFT = "left"
EVICTED = "evicted"


@dataclass
class Member:
    """One joined node process."""

    node_id: str
    caps: Dict[str, Any] = field(default_factory=dict)
    state: str = ALIVE
    joined_at: float = 0.0
    last_heartbeat: float = 0.0
    heartbeats: int = 0
    clients: List[int] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.state == ALIVE


class Membership:
    """Join/heartbeat/leave/evict registry with client pinning."""

    def __init__(
        self,
        num_clients: int,
        detector: FailureDetector,
        *,
        clock: Callable[[], float] = time.monotonic,
        events: Optional[Callable[[str, Member], None]] = None,
    ) -> None:
        self.num_clients = int(num_clients)
        self.detector = detector
        self._clock = clock
        self._events = events
        self._lock = threading.RLock()
        self._members: Dict[str, Member] = {}
        self._owner: Dict[int, str] = {}  # client -> node_id
        self._unassigned: List[int] = list(range(self.num_clients))
        self._assigned_once = False
        # telemetry instruments, bound lazily via bind_registry
        self._gauge_members: Optional[Dict[str, Any]] = None
        self._gauge_live_clients: Any = None
        self._ctr_joins: Any = None
        self._ctr_evictions: Any = None
        self._ctr_leaves: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def join(self, node_id: str, caps: Optional[Dict[str, Any]] = None) -> Member:
        """Admit (or re-admit) a node; adopts orphans after initial assignment."""
        now = self._clock()
        with self._lock:
            existing = self._members.get(node_id)
            if existing is not None and existing.alive:
                # idempotent re-join (a node retrying its handshake)
                existing.caps.update(caps or {})
                existing.last_heartbeat = now
                return existing
            member = Member(
                node_id=node_id, caps=dict(caps or {}),
                joined_at=now, last_heartbeat=now,
            )
            self._members[node_id] = member
            self.detector.observe(node_id, now)
            if self._assigned_once and self._unassigned:
                self._adopt(member)
            self._fire("joined", member)
            if self._ctr_joins is not None:
                self._ctr_joins.inc()
            self._sample_gauges()
            _LOG.info("member %s joined (%d alive)", node_id, len(self.alive_members()))
            return member

    def heartbeat(self, node_id: str) -> bool:
        """Record one heartbeat; returns False for unknown/dead members
        (the node should re-join or exit)."""
        now = self._clock()
        with self._lock:
            member = self._members.get(node_id)
            if member is None or not member.alive:
                return False
            member.last_heartbeat = now
            member.heartbeats += 1
            self.detector.observe(node_id, now)
            return True

    def leave(self, node_id: str) -> List[int]:
        """Graceful exit; returns the orphaned client ids."""
        with self._lock:
            member = self._members.get(node_id)
            if member is None or not member.alive:
                return []
            member.state = LEFT
            orphans = self._orphan(member)
            self.detector.forget(node_id)
            self._fire("left", member)
            if self._ctr_leaves is not None:
                self._ctr_leaves.inc()
            self._sample_gauges()
            _LOG.info("member %s left; orphaned clients %s", node_id, orphans)
            return orphans

    def sweep(self) -> List[Member]:
        """Evict every member the failure detector now suspects."""
        now = self._clock()
        evicted: List[Member] = []
        with self._lock:
            for member in self._members.values():
                if member.alive and self.detector.suspect(member.node_id, now):
                    member.state = EVICTED
                    self._orphan(member)
                    self.detector.forget(member.node_id)
                    evicted.append(member)
            for member in evicted:
                self._fire("evicted", member)
                if self._ctr_evictions is not None:
                    self._ctr_evictions.inc()
            if evicted:
                self._sample_gauges()
        for member in evicted:
            _LOG.warning(
                "member %s evicted after %.1fs of silence; clients re-orphaned",
                member.node_id, self._clock() - member.last_heartbeat,
            )
        return evicted

    # ------------------------------------------------------------------
    # client pinning
    # ------------------------------------------------------------------
    def assign_initial(self) -> None:
        """Round-robin every unassigned client over the alive members,
        ordered by join time (called once the joining quorum is reached)."""
        with self._lock:
            members = self.alive_members()
            if not members:
                raise RuntimeError("cannot assign clients: no alive members")
            for i, client in enumerate(list(self._unassigned)):
                self._pin(client, members[i % len(members)])
            self._unassigned.clear()
            self._assigned_once = True
            self._sample_gauges()

    def _adopt(self, member: Member) -> None:
        """A post-quorum joiner takes every orphaned client (locked)."""
        adopted = list(self._unassigned)
        for client in adopted:
            self._pin(client, member)
        self._unassigned.clear()
        if adopted:
            self._fire("adopted", member)
            _LOG.info("member %s adopted orphaned clients %s", member.node_id, adopted)

    def _pin(self, client: int, member: Member) -> None:
        self._owner[client] = member.node_id
        member.clients.append(client)
        member.clients.sort()

    def _orphan(self, member: Member) -> List[int]:
        orphans = list(member.clients)
        member.clients.clear()
        for client in orphans:
            self._owner.pop(client, None)
        self._unassigned.extend(orphans)
        self._unassigned.sort()
        return orphans

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def alive_members(self) -> List[Member]:
        with self._lock:
            members = [m for m in self._members.values() if m.alive]
            members.sort(key=lambda m: (m.joined_at, m.node_id))
            return members

    def get(self, node_id: str) -> Optional[Member]:
        with self._lock:
            return self._members.get(node_id)

    def owner_of(self, client: int) -> Optional[Member]:
        with self._lock:
            node_id = self._owner.get(int(client))
            member = self._members.get(node_id) if node_id is not None else None
            return member if member is not None and member.alive else None

    def live_clients(self) -> List[int]:
        """Sorted clients currently pinned to an alive member."""
        with self._lock:
            return sorted(
                c for c, nid in self._owner.items()
                if (m := self._members.get(nid)) is not None and m.alive
            )

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {ALIVE: 0, LEFT: 0, EVICTED: 0}
            for member in self._members.values():
                out[member.state] = out.get(member.state, 0) + 1
            return out

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-safe membership table (for status endpoints/logs)."""
        with self._lock:
            now = self._clock()
            return [
                {
                    "node_id": m.node_id,
                    "state": m.state,
                    "clients": list(m.clients),
                    "heartbeats": m.heartbeats,
                    "age_seconds": round(now - m.joined_at, 3),
                    "suspicion": round(self.detector.suspicion(m.node_id, now), 3)
                    if m.alive else None,
                    "caps": dict(m.caps),
                }
                for m in self._members.values()
            ]

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def bind_registry(self, registry: Any) -> None:
        """Attach Prometheus-style instruments from a telemetry registry."""
        with self._lock:
            self._gauge_members = {
                state: registry.gauge(
                    "repro_cluster_members",
                    "Cluster members by lifecycle state", state=state,
                )
                for state in (ALIVE, LEFT, EVICTED)
            }
            self._gauge_live_clients = registry.gauge(
                "repro_cluster_live_clients",
                "Logical clients currently served by an alive member",
            )
            self._ctr_joins = registry.counter(
                "repro_cluster_joins_total", "Join handshakes accepted"
            )
            self._ctr_evictions = registry.counter(
                "repro_cluster_evictions_total",
                "Members evicted by the failure detector",
            )
            self._ctr_leaves = registry.counter(
                "repro_cluster_leaves_total", "Graceful member departures"
            )
            # backfill events that happened before telemetry attached (the
            # quorum joins land before the engine fires on_setup)
            counts = self.counts()
            if self._members:
                self._ctr_joins.inc(len(self._members))
            if counts[EVICTED]:
                self._ctr_evictions.inc(counts[EVICTED])
            if counts[LEFT]:
                self._ctr_leaves.inc(counts[LEFT])
            self._sample_gauges()

    def _sample_gauges(self) -> None:
        if self._gauge_members is None:
            return
        for state, count in self.counts().items():
            gauge = self._gauge_members.get(state)
            if gauge is not None:
                gauge.set(count)
        self._gauge_live_clients.set(len(self.live_clients()))

    def _fire(self, event: str, member: Member) -> None:
        if self._events is None:
            return
        try:
            self._events(event, member)
        except Exception:  # noqa: BLE001 - observers never break membership
            _LOG.exception("membership event hook failed for %s(%s)", event, member.node_id)
