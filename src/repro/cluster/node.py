"""The ``repro node`` process: one live cluster member.

Started as ``python -m repro node tcp://host:port`` (or ``inproc://name``
inside tests).  The node dials the coordinator with a bounded-retry TCP
connect — so node processes may start *before* the coordinator binds — and
then:

1. **joins** with a capability exchange (host, pid, slots) and receives the
   published :class:`~repro.experiment.spec.ExperimentSpec` YAML plus the
   heartbeat/lease contract;
2. **rebuilds an engine-identical trainer node** from the spec's seeded
   factories (the same construction as a redis broker worker, which is what
   makes a live turn bit-identical to a simulated one given the same
   inputs);
3. **serves turns**: poll -> swap in the client's local snapshot -> run the
   method -> swap out -> post the serde result frame, while a
   :class:`~repro.cluster.heartbeat.Heartbeater` renews the lease on a
   second channel;
4. **leaves gracefully** on SIGTERM/SIGINT or the coordinator's stop flag —
   the in-flight turn finishes, then the node deregisters.

Client state lives here, keyed by client id: a client the node adopts
(fresh assignment or an orphan from an evicted peer) starts from the
published baseline — the cluster's restart semantics.
"""

from __future__ import annotations

import os
import signal
import socket as socket_mod
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.cluster.heartbeat import Heartbeater
from repro.cluster.protocol import decode_control, encode_control, peek_kind
from repro.comm.transport import TransportError, make_channel
from repro.runtime import serde
from repro.utils.logging import get_logger

__all__ = ["ClusterNode", "run_node", "parse_cluster_url"]

_LOG = get_logger("cluster.node")


def parse_cluster_url(url: str) -> Tuple[str, str]:
    """``tcp://host:port`` / ``inproc://name`` -> (transport kind, address)."""
    kind, sep, address = url.partition("://")
    if not sep or kind not in ("tcp", "inproc") or not address:
        raise ValueError(
            f"cluster URL must be tcp://host:port or inproc://name, got {url!r}"
        )
    return kind, address


def build_trainer_node(spec_yaml: str, num_clients: int, name: str):
    """(node, data provider, baseline) rebuilt from a published spec.

    Mirrors :meth:`repro.runtime.worker.BrokerWorker.load`: the same seeded
    factories the engine uses, a trainer-role node with no mounted shard —
    datasets are mounted per turn via the provider's client views.
    """
    from repro.data.views import ClientDataProvider
    from repro.experiment import spec as spec_mod
    from repro.node.node import Node
    from repro.topology.base import NodeRole, NodeSpec

    spec = spec_mod.ExperimentSpec.from_yaml(spec_yaml)
    datamodule = spec_mod.resolve_datamodule(spec)
    model_fn = spec_mod.resolve_model_fn(spec, datamodule)
    algorithm_fn = spec_mod.resolve_algorithm_fn(spec)
    compressor_fn, outer_compressor_fn, dp_fn = spec_mod.resolve_plugin_fns(spec)
    seed = int(spec.seed)
    # same pure derivation as the engine and broker workers: a live member
    # reconstructs the attacker set from the published spec alone
    attack_plan = spec_mod.resolve_attack_plan(spec, int(num_clients), datamodule.num_classes)

    provider = ClientDataProvider(
        datamodule,
        int(num_clients),
        spec.data.partition,
        alpha=spec.data.partition_alpha,
        seed=seed,
        feature_noniid=float(spec.data.feature_noniid),
    )
    nspec = NodeSpec(name=name, index=2_000_000, role=NodeRole.TRAINER)
    node = Node(
        spec=nspec,
        model=model_fn(),
        algorithm=algorithm_fn(),
        train_dataset=None,
        test_dataset=datamodule.test,
        batch_size=int(spec.data.batch_size),
        seed=seed,
        dp=dp_fn() if dp_fn is not None else None,
        compressor=compressor_fn() if compressor_fn is not None else None,
        outer_compressor=outer_compressor_fn() if outer_compressor_fn is not None else None,
        # live mode has no scripted faults: real processes fail for real
        drop_prob=0.0,
        straggler_prob=0.0,
        straggler_delay=0.0,
        attack=attack_plan.attack if attack_plan is not None else None,
        attacker_ids=attack_plan.attacker_ids if attack_plan is not None else (),
    )
    node.setup_local()
    return node, provider, node.pool_baseline()


class ClusterNode:
    """One joinable member process (or in-proc member, in tests)."""

    def __init__(
        self,
        url: str,
        node_id: Optional[str] = None,
        *,
        poll_wait: float = 0.5,
        connect_timeout: float = 3.0,
        connect_retries: int = 20,
        connect_backoff: float = 0.25,
    ) -> None:
        self.url = url
        self.kind, self.address = parse_cluster_url(url)
        self.node_id = node_id or f"{socket_mod.gethostname()}-{os.getpid()}"
        self.poll_wait = float(poll_wait)
        self._channel_opts: Dict[str, Any] = {}
        if self.kind == "tcp":
            self._channel_opts = {
                "connect_timeout": connect_timeout,
                "connect_retries": connect_retries,
                "connect_backoff": connect_backoff,
            }
        self._work = None       # turn channel
        self._control = None    # heartbeat/leave channel
        self._heartbeater: Optional[Heartbeater] = None
        self._stopping = threading.Event()
        self.node: Any = None
        self.provider: Any = None
        self.baseline: Any = None
        self._snapshots: Dict[int, Any] = {}
        self.turns_run = 0
        self.heartbeat_period = 0.5

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request shutdown; the in-flight turn finishes first."""
        self._stopping.set()

    def join(self) -> Dict[str, Any]:
        """Dial the coordinator and run the join handshake."""
        self._work = make_channel(self.kind, self.address, **self._channel_opts)
        self._control = make_channel(self.kind, self.address, **self._channel_opts)
        caps = {
            "host": socket_mod.gethostname(),
            "pid": os.getpid(),
            "slots": 1,
        }
        reply = self._call_control(
            self._control, encode_control("join", node_id=self.node_id, caps=caps)
        )
        if not reply.get("ok"):
            raise ConnectionError(
                f"cluster join rejected: {reply.get('error', 'unknown reason')}"
            )
        self.heartbeat_period = float(reply.get("heartbeat", 0.5))
        return reply

    def load(self, join_reply: Dict[str, Any]) -> None:
        self.node, self.provider, self.baseline = build_trainer_node(
            str(join_reply["spec"]),
            int(join_reply["num_clients"]),
            name=f"cluster_node_{self.node_id}",
        )

    def run(self, max_turns: Optional[int] = None) -> int:
        """Join, serve turns until stopped, leave; returns turns completed."""
        join_reply = self.join()
        self.load(join_reply)
        self._heartbeater = Heartbeater(
            self._beat, self.heartbeat_period, on_stop=self._stopping.set
        ).start()
        _LOG.info("node %s serving cluster %s", self.node_id, self.url)
        try:
            while not self._stopping.is_set():
                if max_turns is not None and self.turns_run >= max_turns:
                    break
                try:
                    reply = self._work.call(encode_control(
                        "poll", node_id=self.node_id, wait=self.poll_wait
                    ))
                except (ConnectionError, OSError) as exc:
                    if self._stopping.is_set():
                        break
                    _LOG.error("node %s lost the coordinator: %s", self.node_id, exc)
                    return self.turns_run
                if peek_kind(reply) == "request":
                    self._serve_turn(reply)
                    continue
                _op, meta = decode_control(reply)
                if meta.get("stop") or not meta.get("ok", True):
                    break
        finally:
            self._shutdown()
        return self.turns_run

    # ------------------------------------------------------------------
    def _serve_turn(self, frame: bytes) -> None:
        """Execute one serde turn against the local snapshot store."""
        turn_id, client, method, args, kwargs = serde.decode_turn(frame)
        delay = float(os.environ.get("REPRO_NODE_TURN_DELAY", "0") or 0)
        if delay:
            # widens the kill window for live failure tests (mirrors the
            # broker worker's REPRO_WORKER_TURN_DELAY)
            time.sleep(delay)
        snapshot = self._snapshots.get(client)
        try:
            needs_data = method in ("local_update", "run_round")
            dataset = self.provider.view(client) if needs_data else None
            self.node.begin_client_turn(client, snapshot, dataset, self.baseline)
            try:
                value = getattr(self.node, method)(*args, **kwargs)
            finally:
                # swap out even after a failed turn (dedicated-node
                # semantics: the client keeps whatever state the failure
                # left)
                turns = snapshot.turns if snapshot is not None else 0
                self._snapshots[client] = self.node.end_client_turn(turns)
            result = serde.encode_result(turn_id, client, value, worker=self.node_id)
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            result = serde.encode_error(
                turn_id, client, exc,
                traceback_text=traceback.format_exc(), worker=self.node_id,
            )
        try:
            self._work.call(result)
        except (ConnectionError, OSError) as exc:
            _LOG.error("node %s could not post turn %d result: %s",
                       self.node_id, turn_id, exc)
            self._stopping.set()
            return
        self.turns_run += 1

    def _beat(self) -> Dict[str, Any]:
        assert self._control is not None
        return self._call_control(
            self._control, encode_control("heartbeat", node_id=self.node_id)
        )

    def _call_control(self, channel, frame: bytes) -> Dict[str, Any]:
        _op, meta = decode_control(channel.call(frame))
        return meta

    def _shutdown(self) -> None:
        self._stopping.set()
        if self._heartbeater is not None:
            self._heartbeater.stop()
        # graceful deregistration: best effort, the lease sweep is the
        # backstop if the coordinator is already gone
        if self._control is not None:
            try:
                self._call_control(
                    self._control, encode_control("leave", node_id=self.node_id)
                )
            except (ConnectionError, OSError):
                pass
            self._control.close()
        if self._work is not None:
            self._work.close()
        _LOG.info("node %s exiting after %d turns", self.node_id, self.turns_run)


def run_node(url: str, node_id: Optional[str] = None,
             max_turns: Optional[int] = None) -> int:
    """CLI entrypoint (``python -m repro node <url>``); returns exit code."""
    try:
        node = ClusterNode(url, node_id=node_id)
    except ValueError as exc:
        _LOG.error("node startup failed: %s", exc)
        return 2

    # SIGTERM/SIGINT finish the in-flight turn, release the membership
    # lease, and deregister — mirroring the broker worker's graceful path
    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        _LOG.info("node %s received signal %d, finishing current turn", node.node_id, signum)
        node.stop()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)

    env_cap = os.environ.get("REPRO_NODE_MAX_TURNS")
    if max_turns is None and env_cap:
        max_turns = int(env_cap)
    try:
        node.run(max_turns=max_turns)
    except (TransportError, ConnectionError) as exc:
        _LOG.error("node %s failed: %s", node.node_id, exc)
        return 2
    return 0
