"""Pluggable client selection strategies (paper-adjacent: which clients a
round or an async dispatch slot trains on).

Strategies generalize the engine's old hard-coded uniform sampling behind a
registry, so partial participation composes like every other axis:

``random``           uniform sampling without replacement (FedAvg default);
``round_robin``      deterministic rotation through the pool — every client
                     participates equally often, useful for fairness
                     baselines and debugging;
``power_of_choice``  loss-biased sampling (Cho et al.): draw a candidate set
                     of ``d`` clients uniformly, keep the ``k`` with the
                     highest last-known training loss.  Clients never seen
                     before rank first, so the pool is explored before it is
                     exploited.

All strategies are deterministic under a fixed seed and call sequence
regardless of pool ordering; the only inputs are the seed, the sequence of
pools offered, and the loss table handed in by the caller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.registry import Registry

__all__ = [
    "SelectionStrategy",
    "RandomSelection",
    "RoundRobinSelection",
    "PowerOfChoiceSelection",
    "SELECTORS",
    "build_selector",
]

SELECTORS: Registry["SelectionStrategy"] = Registry("selection")


class SelectionStrategy:
    """Chooses ``k`` participants from a pool of trainer indices."""

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng((self.seed, 0x5E1EC7))

    def select(
        self,
        pool: Sequence[int],
        k: int,
        round_idx: int = 0,
        losses: Optional[Dict[int, float]] = None,
    ) -> List[int]:
        """Return ``k`` distinct client indices drawn from ``pool``.

        ``losses`` maps client index -> last observed training loss; loss-aware
        strategies use it, others ignore it.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


@SELECTORS.register("random", "uniform")
class RandomSelection(SelectionStrategy):
    """Uniform sampling without replacement (the classic FedAvg sampler)."""

    name = "random"

    def select(
        self,
        pool: Sequence[int],
        k: int,
        round_idx: int = 0,
        losses: Optional[Dict[int, float]] = None,
    ) -> List[int]:
        k = min(int(k), len(pool))
        if k <= 0:
            return []
        return sorted(self._rng.choice(list(pool), size=k, replace=False).tolist())


@SELECTORS.register("round_robin", "cyclic")
class RoundRobinSelection(SelectionStrategy):
    """Deterministic least-served-first rotation: pick the ``k`` pool members
    with the fewest previous selections (ties break on the client id).

    On a static pool this is the classic cyclic rotation; when the caller
    offers a different subset each time (the async runtime's idle set), it
    still keeps participation counts within one of each other — the fairness
    property the cyclic cursor loses once the pool shifts under it.
    """

    name = "round_robin"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._served: Dict[int, int] = {}

    def select(
        self,
        pool: Sequence[int],
        k: int,
        round_idx: int = 0,
        losses: Optional[Dict[int, float]] = None,
    ) -> List[int]:
        k = min(int(k), len(pool))
        if k <= 0:
            return []
        ranked = sorted(pool, key=lambda c: (self._served.get(c, 0), c))
        chosen = ranked[:k]
        for c in chosen:
            self._served[c] = self._served.get(c, 0) + 1
        return sorted(chosen)


@SELECTORS.register("power_of_choice", "pow_d", "loss_biased")
class PowerOfChoiceSelection(SelectionStrategy):
    """Power-of-choice (Cho et al. 2020): uniformly sample a candidate set of
    ``d`` clients, then keep the ``k`` with the largest last-known loss.

    ``d`` defaults to ``2k`` (clamped to the pool); larger ``d`` biases
    harder toward high-loss clients.  Unseen clients (no recorded loss) sort
    first so every client is visited before the bias kicks in.
    """

    name = "power_of_choice"

    def __init__(self, seed: int = 0, d: Optional[int] = None) -> None:
        super().__init__(seed)
        self.d = d

    def select(
        self,
        pool: Sequence[int],
        k: int,
        round_idx: int = 0,
        losses: Optional[Dict[int, float]] = None,
    ) -> List[int]:
        pool = list(pool)
        k = min(int(k), len(pool))
        if k <= 0:
            return []
        d = self.d if self.d is not None else 2 * k
        d = max(k, min(int(d), len(pool)))
        candidates = self._rng.choice(pool, size=d, replace=False).tolist()
        losses = losses or {}
        # unseen clients get +inf so exploration precedes exploitation;
        # ties break on the index for determinism
        ranked = sorted(
            candidates,
            key=lambda c: (-losses.get(c, float("inf")), c),
        )
        return sorted(ranked[:k])


def build_selector(name: str, /, **kwargs) -> SelectionStrategy:
    """Build a registered selection strategy (``random``, ``round_robin``,
    ``power_of_choice``)."""
    return SELECTORS.build(name, **kwargs)
