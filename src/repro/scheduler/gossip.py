"""Decentralized asynchronous gossip: serverless pairwise averaging.

The third and final topology tier of the async runtime (after the flat
server policies and the hierarchical coordinator): ring, p2p-mesh, and
custom-graph federations run *without* a coordinator, in the spirit of
AD-PSGD.  Each peer loops

    train locally → publish its state to a sampled neighbor set →
    mix whatever neighbor states have arrived → train again

under the same virtual-time event queue as every other policy.  Training is
real (each step runs ``Node.gossip_update`` on the peer's actor thread);
*time* is virtual: the base heterogeneity model stamps each peer's compute,
and a second, per-**edge** model stamps every neighbor message — so slow
links, not just slow devices, shape the dynamics, and lost messages model
link faults rather than client crashes.

Knobs:

* ``neighbor_selection`` — who a publish reaches: ``all`` neighbors,
  ``random_k`` uniformly sampled ones, or ``pairwise`` (one random partner
  per step — classic randomized gossip);
* ``mixing`` — receiver-side weights: the ``topology``'s own mixing matrix
  or ``metropolis_hastings`` weights computed from the graph;
* ``barrier`` — ``True`` reproduces the synchronous gossip round (every
  peer trains, every message lands, everyone mixes at the slowest arrival)
  under the same clock, so sync vs. async gossip compare head-to-head.

States travel through the peer's compressor/DP codec (``Node.
gossip_publish``), delta-coded against the peer's previously *published*
replica — the CHOCO-SGD trick: receivers track what the sender last sent,
so lossy codecs compress small differences instead of raw weights.

Staleness: a message carries the sender's step count; by mix time the
sender may have produced newer states, and the discount attenuates the
mixing weight accordingly, with the freed mass returning to the receiver's
self-weight (rows stay stochastic, so averaging never diverges).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.scheduler.base import SCHEDULERS, Scheduler
from repro.scheduler.events import PendingUpdate
from repro.scheduler.heterogeneity import HeterogeneityModel
from repro.topology.base import stationary_distribution
from repro.utils.logging import get_logger

__all__ = ["GossipScheduler"]

_LOG = get_logger("scheduler")

#: real-seconds timeout for one local training / codec call
_TRAIN_TIMEOUT = 600.0

_SELECTION_MODES = ("all", "random_k", "pairwise")
_MIXING_MODES = ("topology", "metropolis_hastings")


def _is_float(arr: np.ndarray) -> bool:
    return np.issubdtype(np.asarray(arr).dtype, np.floating)


@SCHEDULERS.register("gossip_async", "gossip", "ad_psgd")
class GossipScheduler(Scheduler):
    """Asynchronous (or barrier) gossip over a decentralized topology.

    Parameters
    ----------
    neighbor_selection:
        ``all`` | ``random_k`` | ``pairwise`` — which neighbors a peer's
        publish reaches.
    neighbor_k:
        Targets per publish under ``random_k`` (clamped to the degree).
    mixing:
        ``topology`` (the topology's declared mixing weights) or
        ``metropolis_hastings`` (recomputed from the graph; symmetric and
        doubly stochastic under any degree skew).
    barrier:
        ``True`` runs synchronous gossip rounds under the same virtual
        clock: every peer trains, all messages land, everyone mixes at the
        slowest arrival.  The baseline arm of sync-vs-async comparisons.
    edge_heterogeneity:
        Latency/dropout model of the links, sampled per *directed edge*
        (``client_spread`` gives persistently slow links; ``dropout`` is
        message loss).  The base ``heterogeneity`` kwarg keeps modelling
        per-peer compute.
    track_consensus:
        Record the RMS distance of peer models from consensus on every
        metrics record (costs one pass over the ledger per record).
    """

    name = "gossip_async"
    patterns = ("gossip",)
    requires_aggregator = False

    def __init__(
        self,
        neighbor_selection: str = "all",
        neighbor_k: int = 1,
        mixing: str = "topology",
        barrier: bool = False,
        edge_heterogeneity: Optional[Any] = None,
        track_consensus: bool = True,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        neighbor_selection = str(neighbor_selection)
        if neighbor_selection not in _SELECTION_MODES:
            raise ValueError(
                f"unknown neighbor_selection {neighbor_selection!r}; have {_SELECTION_MODES}"
            )
        mixing = str(mixing)
        if mixing not in _MIXING_MODES:
            raise ValueError(f"unknown mixing {mixing!r}; have {_MIXING_MODES}")
        if neighbor_k < 1:
            raise ValueError("neighbor_k must be >= 1")
        self.neighbor_selection = neighbor_selection
        self.neighbor_k = int(neighbor_k)
        self.mixing = mixing
        self.barrier = bool(barrier)
        self.track_consensus = bool(track_consensus)
        self._edge_hetero_cfg = edge_heterogeneity
        self.edge_hetero: Optional[HeterogeneityModel] = None

        # runtime ledger, populated by bind()/run()
        self.peers: List[int] = []
        self.peer_states: Dict[int, Dict[str, np.ndarray]] = {}
        self.published: Dict[int, Dict[str, np.ndarray]] = {}
        self.steps: Dict[int, int] = {}
        self.inbox: Dict[int, List[Dict[str, Any]]] = {}
        self.edge_bytes: Dict[Tuple[int, int], int] = {}
        self.msgs_sent = 0
        self.msgs_lost = 0
        self.mixed_in = 0  # neighbor states merged across all mixes
        self._w: Optional[np.ndarray] = None
        self._pi: Optional[np.ndarray] = None
        self._neighbors: Dict[int, List[int]] = {}
        self._edge_ids: Dict[Tuple[int, int], int] = {}
        self._edge_count: Dict[Tuple[int, int], int] = {}
        self._gossip_rng: Optional[np.random.Generator] = None
        self._bytes_seen = 0
        self._edge_seen: Dict[Tuple[int, int], int] = {}
        # moving-target defense: per-epoch overlay resampling (bind() wires
        # these from the engine's mtd spec; None means a static topology)
        self.mtd: Optional[Any] = None
        self._mtd_epoch = 0
        self._mtd_every = 0
        self._mtd_applied_mark = 0

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def bind(self, engine: "Engine", **scope: Any) -> "GossipScheduler":  # noqa: F821
        if scope:
            raise ValueError("a gossip scheduler cannot be bound in site scope")
        if self.engine is engine and self.peer_states:
            # re-entry from a follow-up run_async(): the ledger continues
            return self
        super().bind(engine)
        bad = next(
            (
                n.algorithm
                for n in engine.nodes
                if n.role.trains() and not n.algorithm.uploads_full_state
            ),
            None,
        )
        if bad is not None:
            raise ValueError(
                f"scheduler {self.name!r} mixes raw model states and needs a "
                f"full-state-uploading algorithm; {bad.name!r} uploads "
                "deltas/variates"
            )
        topo = engine.topology
        # peers are engine *node indices* (the graph/mixing-matrix id space),
        # pinned explicitly so they stay correct regardless of the id space
        # the flat binding hands out (decentralized runs are dedicated-node
        # by construction: every peer owns a live model replica)
        self.peers = [n.spec.index for n in engine.nodes if n.role.trains()]
        self.clients = list(self.peers)
        neighbor_map = topo.neighbor_map()
        self._neighbors = {
            p: [j for j in neighbor_map.get(p, []) if j != p] for p in self.peers
        }
        empty = [p for p, ns in self._neighbors.items() if not ns]
        if empty:
            raise ValueError(f"gossip peers {empty} have no neighbors to exchange with")
        if self.mixing == "metropolis_hastings":
            self._w = topo.metropolis_hastings_matrix()
        else:
            self._w = topo.mixing_matrix()
        # consensus weights come from the matrix actually driving the mix
        # (MH weights may disagree with the topology's declared matrix)
        self._pi = stationary_distribution(self._w)
        seed = int(self.seed if self.seed is not None else engine.seed)
        # a distinct stream for the links so edge/compute draws never alias
        self.edge_hetero = HeterogeneityModel.from_config(
            self._edge_hetero_cfg, seed=seed + 104729
        )
        self._gossip_rng = np.random.default_rng((seed, 0x9055))
        mtd_spec = getattr(engine, "mtd", None)
        if mtd_spec is not None:
            from repro.robust.mtd import MovingTargetDefense  # cycle guard

            self.mtd = MovingTargetDefense(
                self.peers,
                degree=int(mtd_spec.degree),
                seed=int(mtd_spec.seed if mtd_spec.seed is not None else seed),
            )
            self._mtd_every = int(mtd_spec.reshuffle_every or len(self.peers))
            self._install_mtd_epoch()
        else:
            # static-topology edge ids keep their historical enumeration so
            # existing runs stay byte-identical; MTD uses stable u*span+v ids
            # instead (any pair can become an edge in some epoch)
            self._edge_ids = {
                edge: i
                for i, edge in enumerate(
                    sorted((u, v) for u in self.peers for v in self._neighbors[u])
                )
            }
        self.steps = {p: 0 for p in self.peers}
        self.inbox = {p: [] for p in self.peers}
        _LOG.info(
            "gossip scheduler bound: %d peers, %d directed edges, "
            "selection=%s mixing=%s barrier=%s mtd=%s",
            len(self.peers), sum(len(ns) for ns in self._neighbors.values()),
            self.neighbor_selection, self.mixing, self.barrier, self.mtd is not None,
        )
        return self

    def _install_mtd_epoch(self) -> None:
        """Adopt the overlay sampled for the current MTD epoch."""
        assert self.mtd is not None
        neighbor_map, w = self.mtd.sample(self._mtd_epoch)
        self._neighbors = {
            p: [j for j in neighbor_map.get(p, []) if j != p] for p in self.peers
        }
        self._w = w
        self._pi = stationary_distribution(w)

    def _maybe_reshuffle(self) -> None:
        """Advance the MTD epoch once enough updates have applied."""
        if self.mtd is None:
            return
        if self.applied - self._mtd_applied_mark >= self._mtd_every:
            self._mtd_applied_mark = self.applied
            self._mtd_epoch += 1
            self._install_mtd_epoch()

    def _edge_stream_id(self, edge: Tuple[int, int]) -> int:
        return self.mtd.edge_id(*edge) if self.mtd is not None else self._edge_ids[edge]

    # ------------------------------------------------------------------
    # the ledger (no server: consensus state stands in for the global model)
    # ------------------------------------------------------------------
    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        return self.consensus_state()

    def consensus_state(self) -> Dict[str, np.ndarray]:
        """Mixing-weighted (stationary-distribution) average of the peer
        ledger — what repeated gossip averaging converges to."""
        assert self.peer_states and self._pi is not None
        from repro.nn.serialization import state_average  # cycle guard

        return state_average(
            [self.peer_states[p] for p in self.peers],
            [float(self._pi[p]) for p in self.peers],
        )

    def consensus_distance(self) -> float:
        """RMS distance of peer models from the consensus average."""
        assert self.peer_states and self._pi is not None
        keys = [k for k, v in self.peer_states[self.peers[0]].items() if _is_float(v)]
        vecs = np.stack(
            [
                np.concatenate(
                    [np.asarray(self.peer_states[p][k], dtype=np.float64).ravel() for k in keys]
                )
                for p in self.peers
            ]
        )
        weights = np.asarray([self._pi[p] for p in self.peers], dtype=np.float64)
        center = (weights[:, None] * vecs).sum(axis=0) / weights.sum()
        return float(np.sqrt(np.mean(np.sum((vecs - center) ** 2, axis=1))))

    def _ensure_states(self) -> None:
        if self.peer_states:
            return
        assert self.engine is not None
        from repro.nn.serialization import clone_state  # cycle guard

        for p in self.peers:
            state = dict(self.engine.nodes[self._node_pos[p]].model.state_dict())
            self.peer_states[p] = clone_state(state)
            # receivers' replica of what each peer last announced: the common
            # initial state, so the first delta-coded publish decodes exactly
            self.published[p] = clone_state(state)

    # ------------------------------------------------------------------
    # event mechanics
    # ------------------------------------------------------------------
    def _dispatch_train(self, peer: int, at: float) -> PendingUpdate:
        """Start one local step on ``peer`` from its current mixed state."""
        assert self.engine is not None and self.hetero is not None
        count = self._dispatch_count.get(peer, 0)
        self._dispatch_count[peer] = count + 1
        latency, dropped = self.hetero.sample(peer, count)
        future = None
        if not dropped:
            future = self.engine.actors[self._node_pos[peer]].submit(
                "gossip_update", self.peer_states[peer], self.steps[peer]
            )
        event = PendingUpdate(
            arrival=at + latency,
            seq=self.queue.next_seq(),
            client=peer,
            version=self.steps[peer],
            dispatched_at=at,
            dropped=dropped,
            future=future,
        )
        self.queue.push(event)
        self._in_flight[peer] = event
        return event

    def _select_targets(self, peer: int) -> List[int]:
        neighbors = self._neighbors[peer]
        assert self._gossip_rng is not None
        if self.neighbor_selection == "all":
            return list(neighbors)
        if self.neighbor_selection == "pairwise":
            return [int(self._gossip_rng.choice(neighbors))]
        k = min(self.neighbor_k, len(neighbors))
        return sorted(
            int(x) for x in self._gossip_rng.choice(neighbors, size=k, replace=False)
        )

    def _publish(self, peer: int, at: float) -> None:
        """Push ``peer``'s freshly trained state to its sampled targets.

        The state is encoded once through the peer's compressor/DP codec
        (delta-coded against its previously published replica) and the
        decoded reconstruction — what every receiver would see — is what
        travels; bytes are charged per directed edge, and each message may
        independently be delayed or lost by the edge model.
        """
        targets = self._select_targets(peer)
        if not targets:
            return
        assert self.engine is not None and self.edge_hetero is not None
        with self.tracer.span("gossip.publish", cat="gossip", sim_time=at,
                              peer=peer, targets=len(targets)) as span:
            pub = self.engine.actors[self._node_pos[peer]].call(
                "gossip_publish", self.published[peer], timeout=_TRAIN_TIMEOUT
            )
            state, nbytes = pub["state"], int(pub["bytes"])
            span.set(bytes=nbytes)
        self.published[peer] = state
        sent_steps = self.steps[peer]
        for target in targets:
            edge = (peer, target)
            self.edge_bytes[edge] = self.edge_bytes.get(edge, 0) + nbytes
            self.msgs_sent += 1
            count = self._edge_count.get(edge, 0)
            self._edge_count[edge] = count + 1
            latency, lost = self.edge_hetero.sample(self._edge_stream_id(edge), count)
            if lost:
                self.msgs_lost += 1
                continue
            weight = 0.5 if self.neighbor_selection == "pairwise" else float(
                self._w[target, peer]
            )
            self.queue.push(
                PendingUpdate(
                    arrival=at + latency,
                    seq=self.queue.next_seq(),
                    client=target,
                    version=sent_steps,
                    dispatched_at=at,
                    value={
                        "sender": peer,
                        "state": state,
                        "weight": weight,
                        "sent_steps": sent_steps,
                    },
                )
            )

    def _mix(self, peer: int, state: Dict[str, np.ndarray]) -> List[int]:
        """Average ``peer``'s trained state with its arrived neighbor states.

        Keeps only the newest message per sender (an old replica is
        superseded by a fresher one), discounts each by its staleness, and
        returns the freed weight to the peer itself so the combination stays
        convex.  Integer buffers (e.g. BatchNorm counters) stay local,
        matching the synchronous gossip round.
        """
        with self.tracer.span("gossip.mix", cat="gossip", sim_time=self.now,
                              peer=peer) as span:
            msgs, self.inbox[peer] = self.inbox[peer], []
            latest: Dict[int, Dict[str, Any]] = {}
            for m in msgs:
                latest[int(m["sender"])] = m  # arrival order: newest wins
            assert self.discount is not None
            entries: List[Tuple[Dict[str, np.ndarray], float]] = []
            taus: List[int] = []
            total = 0.0
            for sender in sorted(latest):
                m = latest[sender]
                tau = max(0, self.steps[sender] - int(m["sent_steps"]))
                weight = float(m["weight"]) * self.discount(tau)
                if weight <= 0.0:
                    continue
                entries.append((m["state"], weight))
                taus.append(tau)
                total += weight
            if total > 1.0:  # can't happen with latest-per-sender + stochastic rows
                entries = [(s, w / total) for s, w in entries]
                total = 1.0
            self_weight = 1.0 - total
            if self.robust is not None and entries:
                # robust neighbor mixing: the peer's own state competes with
                # its neighbors' under the robust rule instead of trusting
                # the staleness-discounted convex combination outright
                mixed = self.robust.mix(state, self_weight, entries)
            else:
                mixed = {}
                for key, v in state.items():
                    arr = np.asarray(v)
                    if _is_float(arr):
                        acc = self_weight * arr.astype(np.float64)
                        for neighbor_state, weight in entries:
                            acc = acc + weight * np.asarray(neighbor_state[key], dtype=np.float64)
                        mixed[key] = acc.astype(arr.dtype)
                    else:
                        mixed[key] = np.copy(arr)
            self.peer_states[peer] = mixed
            self.mixed_in += len(entries)
            span.set(merged=len(entries))
        return taus

    def _annotate(self, record: "RoundRecord") -> None:  # noqa: F821
        """Per-edge byte deltas and consensus distance for one record."""
        total = sum(self.edge_bytes.values())
        record.bytes_sent = total - self._bytes_seen
        self._bytes_seen = total
        for edge, sent in self.edge_bytes.items():
            prev = self._edge_seen.get(edge, 0)
            if sent > prev:
                record.per_edge[f"{edge[0]}->{edge[1]}"] = sent - prev
                self._edge_seen[edge] = sent
        if self.track_consensus:
            record.consensus_dist = self.consensus_distance()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def _execute(self, total_updates: Optional[int]) -> None:
        target = self._start(total_updates)
        self._ensure_states()
        if self.barrier:
            while self.applied < target:
                self._barrier_round()
        else:
            self._run_async(target)

    def _run_async(self, target: int) -> None:
        for peer in self.peers:
            if peer not in self._in_flight:
                self._dispatch_train(peer, self.now)
        while self.applied < target:
            event = self.queue.pop()
            self.now = max(self.now, event.arrival)
            if event.value is not None:  # a neighbor message lands
                self.tracer.sim_span(
                    "gossip.msg", event.dispatched_at, event.arrival, cat="gossip",
                    track=f"edge {event.value['sender']}->{event.client}",
                    sender=event.value["sender"], receiver=event.client,
                )
                self.inbox[event.client].append(event.value)
                continue
            peer = event.client
            self._in_flight.pop(peer, None)
            self.tracer.sim_span(
                "peer.train", event.dispatched_at, event.arrival, cat="gossip",
                track=f"peer {peer}", peer=peer, dropped=event.dropped,
            )
            if event.dropped:
                # the peer's compute failed this cycle: nothing to publish
                # or mix; retry from its current state
                self.dropped += 1
                self._dispatch_train(peer, self.now)
                continue
            result = event.result(_TRAIN_TIMEOUT)
            self.steps[peer] += 1
            if self.engine.nodes[self._node_pos[peer]].is_attacker:
                self.attacked += 1
            stats = result.get("stats", {})
            if "loss" in stats:
                self.last_loss[peer] = float(stats["loss"])
            self._publish(peer, self.now)
            taus = self._mix(peer, result["state"])
            self.applied += 1
            self.version += 1
            record = self.record_aggregation([result], taus)
            self._annotate(record)
            self._maybe_reshuffle()
            self._dispatch_train(peer, self.now)

    def _barrier_round(self) -> None:
        """One synchronous gossip round under the virtual clock: every peer
        trains from the round-start states, messages land on their own
        schedule, and everyone mixes at the slowest arrival (the barrier)."""
        start = self.now
        for peer in self.peers:
            if peer not in self._in_flight:
                self._dispatch_train(peer, start)
        trained: Dict[int, Dict[str, np.ndarray]] = {}
        merged: List[Dict[str, Any]] = []
        barrier_time = start
        while self.queue:
            event = self.queue.pop()
            barrier_time = max(barrier_time, event.arrival)
            if event.value is not None:
                self.tracer.sim_span(
                    "gossip.msg", event.dispatched_at, event.arrival, cat="gossip",
                    track=f"edge {event.value['sender']}->{event.client}",
                    sender=event.value["sender"], receiver=event.client,
                )
                self.inbox[event.client].append(event.value)
                continue
            peer = event.client
            self._in_flight.pop(peer, None)
            self.tracer.sim_span(
                "peer.train", event.dispatched_at, event.arrival, cat="gossip",
                track=f"peer {peer}", peer=peer, dropped=event.dropped,
            )
            if event.dropped:
                self.dropped += 1
                continue
            result = event.result(_TRAIN_TIMEOUT)
            self.steps[peer] += 1
            if self.engine.nodes[self._node_pos[peer]].is_attacker:
                self.attacked += 1
            stats = result.get("stats", {})
            if "loss" in stats:
                self.last_loss[peer] = float(stats["loss"])
            trained[peer] = result["state"]
            merged.append(result)
            self._publish(peer, event.arrival)
        self.now = barrier_time
        taus: List[int] = []
        for peer in self.peers:
            # dropped peers still mix what arrived, from their old state
            taus.extend(self._mix(peer, trained.get(peer, self.peer_states[peer])))
        self.applied += len(trained)
        self.version += 1
        if merged:
            record = self.record_aggregation(merged, taus)
            self._annotate(record)
        self._maybe_reshuffle()

    def drain(self) -> None:
        """Retire in-flight training without mixing it; discard queued
        messages; push every peer's final mixed state back into its node so
        ``Engine.evaluate()``/``global_state()`` see the federation's
        actual models after the run."""
        assert self.engine is not None
        while self.queue:
            event = self.queue.pop()
            if event.future is not None:
                self.now = max(self.now, event.arrival)
                event.result(_TRAIN_TIMEOUT)
        self._in_flight.clear()
        for peer in self.inbox:
            self.inbox[peer] = []
        if self.peer_states:
            from repro.engine.actor import wait_all  # cycle guard

            futures = [
                self.engine.actors[self._node_pos[p]].submit(
                    "gossip_adopt", self.peer_states[p]
                )
                for p in self.peers
            ]
            wait_all(futures, timeout=60)

    def __repr__(self) -> str:
        return (
            f"GossipScheduler(selection={self.neighbor_selection!r}, "
            f"mixing={self.mixing!r}, barrier={self.barrier}, "
            f"peers={len(self.peers)}, applied={self.applied})"
        )
