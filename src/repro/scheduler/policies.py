"""Concrete execution policies: sync barrier, semi-sync deadline, FedAsync,
FedBuff.

All four share the virtual-time runtime of :class:`~repro.scheduler.base.
Scheduler`; they differ only in *when* arrivals enter the global model:

``sync``       barrier per round — aggregate once everyone arrived (the
               engine's classic semantics, re-expressed as a policy so the
               three modes compare under one latency model);
``semi_sync``  aggregate whatever arrived by a deadline; stragglers carry
               over and are merged late with a staleness discount;
``fedasync``   merge every arrival immediately, weighted by
               ``alpha · s(staleness)`` (Xie et al. 2019);
``fedbuff``    buffer staleness-discounted deltas and flush every ``K``
               arrivals (Nguyen et al. 2022).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.nn.serialization import clone_state
from repro.scheduler.base import SCHEDULERS, Scheduler
from repro.scheduler.events import PendingUpdate
from repro.utils.logging import get_logger

__all__ = [
    "SyncScheduler",
    "SemiSyncScheduler",
    "FedAsyncScheduler",
    "FedBuffScheduler",
]

_LOG = get_logger("scheduler")


def _interpolate(
    global_state: Dict[str, np.ndarray],
    client_state: Dict[str, np.ndarray],
    weight: float,
) -> Dict[str, np.ndarray]:
    """``(1 - w)·global + w·client`` on float entries; integer buffers (e.g.
    BatchNorm step counts) adopt the client's value."""
    out: Dict[str, np.ndarray] = {}
    for key, g in global_state.items():
        c = client_state.get(key)
        if c is None:
            out[key] = np.copy(g)
        elif np.issubdtype(np.asarray(g).dtype, np.floating):
            out[key] = ((1.0 - weight) * g + weight * np.asarray(c)).astype(g.dtype)
        else:
            out[key] = np.copy(c)
    return out


def _float_delta(
    state: Dict[str, np.ndarray], base: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """``state − base`` on float entries (what delta-buffering policies
    accumulate); integer buffers are skipped."""
    delta: Dict[str, np.ndarray] = {}
    for key, c in state.items():
        b = base.get(key)
        if b is not None and np.issubdtype(np.asarray(b).dtype, np.floating):
            delta[key] = np.asarray(c) - b
    return delta


def _apply_buffered_deltas(
    global_state: Dict[str, np.ndarray],
    buffer: List[Dict[str, Any]],
    server_lr: float,
) -> Dict[str, np.ndarray]:
    """One FedBuff flush: mean of discounted deltas scaled by ``server_lr``.

    Dividing by the buffer count (not the weight sum) keeps the staleness
    discount absolute — a buffer of uniformly stale updates steps
    proportionally smaller, instead of the discount cancelling out of the
    normalization.  Shared by the flat FedBuff policy and the hierarchical
    outer tier so the two "fedbuff" semantics cannot diverge.
    """
    new_state = clone_state(global_state)
    for item in buffer:
        scale = server_lr * item["weight"] / len(buffer)
        for key, d in item["delta"].items():
            new_state[key] = (new_state[key] + scale * d).astype(new_state[key].dtype)
    return new_state


def _robust_flush_deltas(
    global_state: Dict[str, np.ndarray],
    buffer: List[Dict[str, Any]],
    server_lr: float,
    robust: Any,
) -> Dict[str, np.ndarray]:
    """A FedBuff flush through a robust rule: combine the discount-weighted
    deltas robustly (median/trimmed mean/Krum screen out poisoned steps,
    norm-clip bounds them at zero base), then apply one ``server_lr`` step.
    With a plain weighted mean this reduces to :func:`_apply_buffered_deltas`.
    """
    weighted = [
        {key: item["weight"] * d for key, d in item["delta"].items()} for item in buffer
    ]
    combined = robust.combine(weighted, [1.0] * len(weighted), base=None)
    new_state = clone_state(global_state)
    for key, d in combined.items():
        if key in new_state:
            new_state[key] = (new_state[key] + server_lr * d).astype(new_state[key].dtype)
    return new_state


# ----------------------------------------------------------------------
# round-based policies
# ----------------------------------------------------------------------
@SCHEDULERS.register("semi_sync", "deadline", "semisync")
class SemiSyncScheduler(Scheduler):
    """Deadline-based semi-synchronous rounds.

    Each round dispatches up to ``clients_per_round`` idle clients, then
    closes at ``now + deadline`` virtual seconds: arrivals inside the window
    aggregate via the algorithm's own ``aggregate`` hook (so FedProx,
    Scaffold, ... all work).  Updates still in flight at the deadline remain
    queued — stale carryover — and merge in the round they finally arrive.

    The staleness discount enters through each entry's effective sample
    weight (``meta['num_samples'] *= s(τ)``), which the FedAvg-family
    weighted aggregators honor.  Algorithms that average *unweighted*
    (e.g. Scaffold's variate average) ignore sample weights and therefore
    merge stale carryover at full strength; the raw ``meta['staleness']``
    rides along for aggregators that want to handle it themselves.
    """

    name = "semi_sync"

    def __init__(
        self,
        deadline: float = 1.0,
        clients_per_round: Optional[int] = None,
        min_updates: int = 1,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        if deadline <= 0 and not math.isinf(deadline):
            raise ValueError("deadline must be > 0 (or inf for a full barrier)")
        if clients_per_round is not None and clients_per_round < 1:
            raise ValueError("clients_per_round must be >= 1 (or None for the default)")
        self.deadline = float(deadline)
        self.clients_per_round = clients_per_round
        self.min_updates = max(1, int(min_updates))

    # -- round mechanics ------------------------------------------------
    def _round_window(self) -> float:
        """Virtual time at which this round closes."""
        if math.isinf(self.deadline):
            # full barrier: everyone dispatched must arrive
            last = max((e.arrival for e in self.queue), default=self.now)
            return last
        return self.now + self.deadline

    def _execute(self, total_updates: Optional[int]) -> None:
        target = self._start(total_updates)
        while self.applied < target:
            k = self.clients_per_round
            if k is None:
                k = self.concurrency if self.concurrency else len(self.clients)
            for client in self.select_idle(k):
                self.dispatch(client)
            if not self.queue:
                # nothing dispatched and nothing carried over: no arrival can
                # ever close this round — fail loudly instead of spinning
                raise RuntimeError(
                    "semi-sync round has no updates in flight (empty selection "
                    "with an empty carry-over queue)"
                )
            window = self._round_window()
            arrivals = self.queue.pop_until(window)
            while (
                sum(1 for e in arrivals if not e.dropped) < self.min_updates
                and self.queue
            ):
                # too few usable updates landed inside the window (dropped
                # arrivals carry nothing): extend to the next arrival so
                # every aggregation merges at least ``min_updates`` updates
                # and progress is guaranteed
                head = self.queue.peek()
                assert head is not None
                window = head.arrival
                arrivals.extend(self.queue.pop_until(window))
            self.now = max(self.now, window)
            merged, staleness = self._aggregate_round(arrivals)
            if merged:
                self.applied += len(merged)
                self.record_aggregation(merged, staleness)

    def _aggregate_round(self, arrivals: List[PendingUpdate]):
        entries: List[Dict[str, Any]] = []
        merged: List[Dict[str, Any]] = []
        staleness: List[int] = []
        assert self.discount is not None
        for event in arrivals:
            result = self.retire(event)
            if event.dropped:
                continue
            tau = self.staleness_of(event)
            weight = self.discount(tau)
            meta = dict(result.get("meta", {}))
            meta["num_samples"] = float(meta.get("num_samples", 1)) * weight
            meta["staleness"] = tau
            entries.append({"rank": event.client, "state": result["state"], "meta": meta})
            merged.append(result)
            staleness.append(tau)
        if entries:
            algo = self.server.algorithm
            with self.tracer.span("sched.aggregate", cat="sched", sim_time=self.now,
                                  policy=self.name, merged=len(entries)):
                if self.robust is not None:
                    # the robust rule replaces the weighted mean; the
                    # staleness discount still enters through each entry's
                    # effective sample weight, exactly as it does for the
                    # algorithm aggregators
                    self.global_state = self.robust.combine(
                        [e["state"] for e in entries],
                        [float(e["meta"].get("num_samples", 1.0)) for e in entries],
                        base=self.global_state,
                    )
                else:
                    self.global_state = algo.aggregate(entries, self.global_state, self.version)
            self.version += 1
        return merged, staleness


@SCHEDULERS.register("sync", "bsp", "barrier")
class SyncScheduler(SemiSyncScheduler):
    """Full barrier per round: the engine's classic semantics expressed as a
    policy, so sync/semi-sync/async compare under one straggler model.
    Every round waits for the slowest dispatched client (deadline = ∞)."""

    name = "sync"

    def __init__(self, clients_per_round: Optional[int] = None, **kwargs: Any) -> None:
        kwargs.pop("deadline", None)
        super().__init__(deadline=math.inf, clients_per_round=clients_per_round, **kwargs)


# ----------------------------------------------------------------------
# continuous (event-driven) policies
# ----------------------------------------------------------------------
class _ContinuousScheduler(Scheduler):
    """Shared loop for event-driven policies: keep ``concurrency`` updates in
    flight, retire the earliest arrival, hand it to :meth:`ingest`, refill."""

    def _execute(self, total_updates: Optional[int]) -> None:
        target = self._start(total_updates)
        for client in self.select_idle(self.concurrency or 1):
            self.dispatch(client)
        while self.applied < target:
            if not self.queue:
                for client in self.select_idle(self.concurrency or 1):
                    self.dispatch(client)
                if not self.queue:
                    raise RuntimeError("async scheduler has no dispatchable clients")
            event = self.queue.pop()
            result = self.retire(event)
            if not event.dropped:
                self.ingest(event, result)
            for client in self.select_idle(1):
                self.dispatch(client)
        self.flush()

    def ingest(self, event: PendingUpdate, result: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Drain any buffered state at the end of a run (no-op by default)."""


@SCHEDULERS.register("fedasync", "async")
class FedAsyncScheduler(_ContinuousScheduler):
    """FedAsync: every arrival is merged immediately as
    ``x ← (1 − α_τ)·x + α_τ·x_client`` with ``α_τ = alpha · s(staleness)``.

    Interpolates raw model states, so it requires a full-state-uploading
    algorithm (the FedAvg family).
    """

    name = "fedasync"
    requires_full_state = True

    def __init__(self, alpha: float = 0.6, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if not (0.0 < alpha <= 1.0):
            raise ValueError("fedasync alpha must be in (0, 1]")
        self.alpha = float(alpha)
        # robust mode keeps a sliding window of recent arrivals and
        # interpolates toward their robust combination instead of the raw
        # (possibly byzantine) arrival — one poisoned state then moves the
        # target only as far as the robust rule lets it
        self._robust_window: List[Dict[str, np.ndarray]] = []

    def ingest(self, event: PendingUpdate, result: Dict[str, Any]) -> None:
        assert self.discount is not None
        tau = self.staleness_of(event)
        weight = self.alpha * self.discount(tau)
        target = result["state"]
        if self.robust is not None:
            self._robust_window.append(result["state"])
            cap = max(3, int(self.concurrency or 1))
            if len(self._robust_window) > cap:
                self._robust_window.pop(0)
            target = self.robust.combine(
                list(self._robust_window),
                [1.0] * len(self._robust_window),
                base=self.global_state,
            )
        with self.tracer.span("sched.aggregate", cat="sched", sim_time=self.now,
                              policy=self.name, client=event.client, staleness=tau):
            self.global_state = _interpolate(self.global_state, target, weight)
        self.version += 1
        self.applied += 1
        self.record_aggregation([result], [tau])


@SCHEDULERS.register("fedbuff", "buffered")
class FedBuffScheduler(_ContinuousScheduler):
    """FedBuff: buffer staleness-discounted client *deltas* (client state −
    the global state it trained from) and apply their weighted mean every
    ``buffer_size`` arrivals, scaled by ``server_lr``.

    Like FedAsync this differences raw model states, so it requires a
    full-state-uploading algorithm.
    """

    name = "fedbuff"
    requires_full_state = True
    needs_base_state = True

    def __init__(self, buffer_size: int = 4, server_lr: float = 1.0, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.buffer_size = int(buffer_size)
        self.server_lr = float(server_lr)
        self._buffer: List[Dict[str, Any]] = []
        self.flush_count = 0

    def ingest(self, event: PendingUpdate, result: Dict[str, Any]) -> None:
        assert self.discount is not None and event.base_state is not None
        tau = self.staleness_of(event)
        weight = self.discount(tau)
        delta = _float_delta(result["state"], event.base_state)
        self._buffer.append(
            {"delta": delta, "weight": weight, "staleness": tau, "result": result}
        )
        if len(self._buffer) >= self.buffer_size:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        # detach the buffer before touching state: record_aggregation may
        # raise StopRun (callback-requested stop), and already-applied
        # deltas must never survive to be re-applied by the next flush
        buffer, self._buffer = self._buffer, []
        with self.tracer.span("sched.aggregate", cat="sched", sim_time=self.now,
                              policy=self.name, merged=len(buffer)):
            if self.robust is not None:
                self.global_state = _robust_flush_deltas(
                    self.global_state, buffer, self.server_lr, self.robust
                )
            else:
                self.global_state = _apply_buffered_deltas(
                    self.global_state, buffer, self.server_lr
                )
        self.version += 1
        self.applied += len(buffer)
        self.flush_count += 1
        self.record_aggregation(
            [item["result"] for item in buffer],
            [item["staleness"] for item in buffer],
        )

    def flush(self) -> None:
        # leftover partial buffer at the end of a run still carries signal
        self._flush_buffer()
