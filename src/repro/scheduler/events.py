"""Virtual-time event queue over in-flight actor futures.

Schedulers dispatch local training to node actors and record, for each
dispatch, the *virtual* arrival time its update would reach the server under
the heterogeneity model.  The queue orders in-flight updates by that arrival
time; popping the earliest event and blocking on its future is the async
runtime's one synchronization point (real compute may finish in any order —
virtual ordering is what the policies reason about).
"""

from __future__ import annotations

import heapq
import itertools
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional

__all__ = ["PendingUpdate", "EventQueue"]


@dataclass(order=True)
class PendingUpdate:
    """One dispatched-but-not-yet-aggregated update (client or site-head).

    Trainer updates carry a ``future`` (local training still running on the
    client's actor thread); site-head updates in hierarchical federations are
    computed before they are enqueued — the site's inner rounds have already
    run — so they carry their payload in ``value`` instead and :meth:`result`
    returns it without blocking.
    """

    arrival: float  # virtual seconds at which the update reaches the server
    seq: int  # tie-breaker: dispatch order
    client: int = field(compare=False)  # node index in the engine
    version: int = field(compare=False)  # global model version trained against
    dispatched_at: float = field(compare=False)  # virtual dispatch time
    dropped: bool = field(compare=False, default=False)
    future: Optional["Future[Any]"] = field(compare=False, default=None)
    #: pre-computed payload for events with no future (site-head uploads)
    value: Optional[Any] = field(compare=False, default=None)
    #: global state at dispatch time (delta-buffering policies need it)
    base_state: Optional[Any] = field(compare=False, default=None)

    def result(self, timeout: Optional[float] = None) -> Any:
        if self.future is None:
            assert self.value is not None, "event has neither future nor value"
            return self.value
        return self.future.result(timeout)


class EventQueue:
    """Min-heap of :class:`PendingUpdate` keyed by virtual arrival time."""

    def __init__(self) -> None:
        self._heap: List[PendingUpdate] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[PendingUpdate]:
        return iter(sorted(self._heap))

    def next_seq(self) -> int:
        return next(self._seq)

    def push(self, event: PendingUpdate) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> PendingUpdate:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[PendingUpdate]:
        return self._heap[0] if self._heap else None

    def pop_until(self, deadline: float) -> List[PendingUpdate]:
        """Pop every event with ``arrival <= deadline``, earliest first."""
        out: List[PendingUpdate] = []
        while self._heap and self._heap[0].arrival <= deadline:
            out.append(heapq.heappop(self._heap))
        return out
