"""Scheduler subsystem: the framework's execution-policy layer.

OmniFed's topology/algorithm/communication decomposition fixes *where* nodes
sit, *what* they optimize, and *how* bytes move — this package makes *when*
updates enter the global model a fourth configurable axis.  It provides

* client **selection strategies** (:mod:`~repro.scheduler.selection`):
  ``random``, ``round_robin``, ``power_of_choice``;
* **staleness discounts** (:mod:`~repro.scheduler.staleness`):
  ``constant``, ``polynomial``, ``hinge``;
* a reproducible **heterogeneity/fault model**
  (:mod:`~repro.scheduler.heterogeneity`): lognormal/uniform latency,
  dropout;
* four **execution policies** (:mod:`~repro.scheduler.policies`) over a
  virtual-time event queue: ``sync``, ``semi_sync`` (deadline),
  ``fedasync``, ``fedbuff``;
* a **hierarchical coordinator** (:mod:`~repro.scheduler.hierarchical`):
  ``hier_async`` nests a per-site inner policy under an asynchronous (or
  barrier) outer merge at the global root — the paper's cross-facility
  scenario with per-tier policy choice;
* a **decentralized gossip runtime** (:mod:`~repro.scheduler.gossip`):
  ``gossip_async`` runs ring/p2p/custom-graph federations serverless —
  each peer trains, pushes its state to a sampled neighbor set over a
  per-edge latency/loss model, and mixes arrivals with mixing-matrix
  weights scaled by a staleness discount (``barrier=true`` reproduces the
  synchronous gossip round under the same clock).

Compose like any other axis::

    engine = Engine.from_names(..., scheduler="fedbuff")
    engine.run_async(total_updates=48)

or from YAML (``scheduler=fedasync`` on the CLI selects
``conf/scheduler/fedasync.yaml``; ``scheduler=hier_async
scheduler.inner=fedbuff scheduler.outer=fedasync`` picks per-tier
policies on a hierarchical topology).
"""

from repro.scheduler.base import SCHEDULERS, Scheduler, build_scheduler
from repro.scheduler.events import EventQueue, PendingUpdate
from repro.scheduler.gossip import GossipScheduler
from repro.scheduler.heterogeneity import HeterogeneityModel
from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.policies import (
    FedAsyncScheduler,
    FedBuffScheduler,
    SemiSyncScheduler,
    SyncScheduler,
)
from repro.scheduler.selection import (
    SELECTORS,
    PowerOfChoiceSelection,
    RandomSelection,
    RoundRobinSelection,
    SelectionStrategy,
    build_selector,
)
from repro.scheduler.staleness import (
    STALENESS,
    build_staleness,
    constant_discount,
    hinge_discount,
    polynomial_discount,
)

__all__ = [
    "Scheduler",
    "SCHEDULERS",
    "build_scheduler",
    "SyncScheduler",
    "SemiSyncScheduler",
    "FedAsyncScheduler",
    "FedBuffScheduler",
    "HierarchicalScheduler",
    "GossipScheduler",
    "SelectionStrategy",
    "RandomSelection",
    "RoundRobinSelection",
    "PowerOfChoiceSelection",
    "SELECTORS",
    "build_selector",
    "STALENESS",
    "build_staleness",
    "constant_discount",
    "polynomial_discount",
    "hinge_discount",
    "HeterogeneityModel",
    "EventQueue",
    "PendingUpdate",
]
