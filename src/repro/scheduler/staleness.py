"""Staleness discount functions for asynchronous aggregation.

When an update trained against global version ``v`` arrives at version
``v + τ``, its contribution is scaled by ``s(τ) ∈ (0, 1]``.  The shapes
follow FedAsync (Xie et al. 2019):

``constant``     s(τ) = 1 — staleness ignored;
``polynomial``   s(τ) = (1 + τ)^(-a) — smooth decay, the FedAsync default;
``hinge``        s(τ) = 1 while τ ≤ b, then 1 / (1 + a·(τ − b)) — tolerate
                 mild staleness, damp only real laggards.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Union

__all__ = [
    "constant_discount",
    "polynomial_discount",
    "hinge_discount",
    "STALENESS",
    "build_staleness",
]

#: discount function: staleness (τ ≥ 0) -> weight multiplier in (0, 1]
StalenessFn = Callable[[float], float]


def constant_discount() -> StalenessFn:
    """No discount; every update counts fully regardless of age."""

    def fn(tau: float) -> float:
        return 1.0

    return fn


def polynomial_discount(exponent: float = 0.5) -> StalenessFn:
    """FedAsync's ``s(τ) = (1 + τ)^(-a)``; ``a`` controls decay speed."""
    if exponent < 0:
        raise ValueError("polynomial staleness exponent must be >= 0")

    def fn(tau: float) -> float:
        return float((1.0 + max(0.0, tau)) ** -exponent)

    return fn


def hinge_discount(threshold: float = 4.0, slope: float = 0.5) -> StalenessFn:
    """Full weight up to ``threshold`` versions late, hyperbolic decay after."""
    if threshold < 0 or slope < 0:
        raise ValueError("hinge threshold and slope must be >= 0")

    def fn(tau: float) -> float:
        tau = max(0.0, tau)
        if tau <= threshold:
            return 1.0
        return float(1.0 / (1.0 + slope * (tau - threshold)))

    return fn


STALENESS: Dict[str, Callable[..., StalenessFn]] = {
    "constant": constant_discount,
    "none": constant_discount,
    "polynomial": polynomial_discount,
    "poly": polynomial_discount,
    "hinge": hinge_discount,
}


def build_staleness(
    spec: Union[str, StalenessFn, None], **kwargs: Any
) -> StalenessFn:
    """Resolve a staleness spec (name, callable, or None) to a function."""
    if spec is None:
        return polynomial_discount(**kwargs) if kwargs else polynomial_discount()
    if callable(spec):
        return spec
    key = str(spec).strip().lower()
    if key not in STALENESS:
        raise ValueError(f"unknown staleness discount {spec!r}; have {sorted(STALENESS)}")
    return STALENESS[key](**kwargs)
