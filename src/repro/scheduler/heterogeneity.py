"""Client heterogeneity and fault model: reproducible stragglers and dropouts.

Real federations mix fast datacenter workers with slow edge devices.  The
model assigns every client a persistent speed factor plus per-dispatch jitter
drawn from a configurable distribution, and an independent dropout coin per
dispatch.  All draws are keyed by ``(seed, client, dispatch#)`` with fresh
generators, so outcomes are identical no matter how the runtime interleaves
clients — the property that makes straggler experiments repeatable.

Latency families:

``lognormal``  heavy right tail — the classic straggler shape;
``uniform``    bounded jitter in ``[low, high]``;
``constant``   fixed ``mean`` seconds (degenerate case, handy in tests).

Latencies are *virtual* seconds: schedulers advance their virtual clock by
them (same philosophy as :class:`repro.utils.timer.SimClock`) instead of
sleeping, so a laptop reproduces WAN-scale straggler dynamics in real
milliseconds.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["HeterogeneityModel"]

_LATENCY_KINDS = ("lognormal", "uniform", "constant")


def _keyed_rng(key: Tuple[int, ...]) -> np.random.Generator:
    """``default_rng(key)`` minus its argument-dispatch overhead — the model
    draws one fresh keyed generator per dispatch, squarely on the hot path."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(key)))


class HeterogeneityModel:
    """Per-client latency distribution + dropout probability.

    Parameters
    ----------
    latency:
        ``lognormal`` | ``uniform`` | ``constant``.
    mean:
        Scale of the latency draw (lognormal median / constant value), in
        virtual seconds.
    sigma:
        Lognormal shape parameter (ignored by other kinds).
    low, high:
        Bounds for ``uniform``.
    dropout:
        Probability that a dispatched update never arrives.
    client_spread:
        Std-dev of the persistent per-client speed factor (lognormal around
        1); ``0`` makes every client identically distributed.
    """

    def __init__(
        self,
        latency: str = "lognormal",
        mean: float = 1.0,
        sigma: float = 0.5,
        low: float = 0.5,
        high: float = 2.0,
        dropout: float = 0.0,
        client_spread: float = 0.0,
        seed: int = 0,
    ) -> None:
        latency = str(latency).strip().lower()
        if latency not in _LATENCY_KINDS:
            raise ValueError(f"unknown latency kind {latency!r}; have {_LATENCY_KINDS}")
        if mean <= 0:
            raise ValueError("latency mean must be > 0")
        if not (0.0 <= dropout < 1.0):
            raise ValueError("dropout must be in [0, 1)")
        if latency == "uniform" and not (0 <= low <= high):
            raise ValueError("uniform latency needs 0 <= low <= high")
        self.latency = latency
        self.mean = float(mean)
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)
        self.dropout = float(dropout)
        self.client_spread = float(client_spread)
        self.seed = int(seed)

    @classmethod
    def from_config(cls, cfg: Optional[Any], seed: int = 0) -> "HeterogeneityModel":
        """Accept an existing model, a plain kwargs dict, or None (no-op model)."""
        if isinstance(cfg, cls):
            return cfg
        kwargs: Dict[str, Any] = dict(cfg or {})
        kwargs.setdefault("seed", seed)
        if not kwargs.keys() - {"seed"}:
            # no heterogeneity configured: constant unit latency, no faults
            kwargs.setdefault("latency", "constant")
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def speed_factor(self, client: int) -> float:
        """Persistent multiplier for this client (slow devices stay slow)."""
        if self.client_spread <= 0:
            return 1.0
        rng = _keyed_rng((self.seed, client, 0x5CA1E))
        return float(np.exp(self.client_spread * rng.standard_normal()))

    def sample(self, client: int, dispatch: int) -> Tuple[float, bool]:
        """(virtual latency seconds, dropped?) for a client's n-th dispatch."""
        rng = _keyed_rng((self.seed, client, dispatch, 0x1A7E27))
        if self.latency == "lognormal":
            delay = self.mean * float(np.exp(self.sigma * rng.standard_normal()))
        elif self.latency == "uniform":
            delay = float(rng.uniform(self.low, self.high))
        else:  # constant
            delay = self.mean
        delay *= self.speed_factor(client)
        dropped = bool(self.dropout > 0 and rng.random() < self.dropout)
        return delay, dropped

    def __repr__(self) -> str:
        return (
            f"HeterogeneityModel({self.latency}, mean={self.mean}, "
            f"sigma={self.sigma}, dropout={self.dropout}, "
            f"client_spread={self.client_spread}, seed={self.seed})"
        )
