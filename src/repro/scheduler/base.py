"""Scheduler base: the execution-policy layer of the framework.

A :class:`Scheduler` decides *when* client updates enter the global model —
the axis the synchronous engine hard-codes as one barrier per round.  It owns

* a :class:`~repro.scheduler.selection.SelectionStrategy` (who trains),
* a staleness discount (how much late updates count),
* a :class:`~repro.scheduler.heterogeneity.HeterogeneityModel` (how long
  each client takes, who drops out), and
* an :class:`~repro.scheduler.events.EventQueue` of in-flight updates over
  the engine's thread-actor futures.

Training is real (each dispatch runs ``Node.local_update`` on the client's
actor thread); *time* is virtual: the heterogeneity model stamps every
dispatch with an arrival time and policies advance ``self.now`` instead of
sleeping, so straggler dynamics are reproducible and fast.  Concrete
policies (sync barrier, semi-sync deadline, FedAsync, FedBuff) live in
:mod:`repro.scheduler.policies`.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.runtime.broker import BrokerTurnLost, PeerLostError
from repro.scheduler.events import EventQueue, PendingUpdate
from repro.scheduler.heterogeneity import HeterogeneityModel
from repro.scheduler.selection import SelectionStrategy, build_selector
from repro.scheduler.staleness import StalenessFn, build_staleness
from repro.telemetry.tracer import NOOP_TRACER
from repro.topology.base import NodeRole
from repro.utils.logging import get_logger
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine
    from repro.engine.metrics import MetricsCollector, RoundRecord
    from repro.node.node import Node

__all__ = ["Scheduler", "SCHEDULERS", "build_scheduler"]

_LOG = get_logger("scheduler")

SCHEDULERS: Registry["Scheduler"] = Registry("scheduler")

#: actor-future timeout for one local training call (real seconds)
_TRAIN_TIMEOUT = 600.0


class Scheduler:
    """Execution policy driving an engine's federation without a global barrier.

    Subclasses implement :meth:`run`; the base class provides dispatch,
    event-queue bookkeeping, staleness accounting, metric records, and
    evaluation cadence.  A scheduler is constructed standalone (so YAML
    configs can instantiate it) and attached with :meth:`bind` before use.
    """

    name = "base"

    def __init__(
        self,
        *,
        concurrency: Optional[int] = None,
        selection: Optional[str] = None,
        selection_kwargs: Optional[Dict[str, Any]] = None,
        staleness: Any = "polynomial",
        staleness_kwargs: Optional[Dict[str, Any]] = None,
        heterogeneity: Optional[Any] = None,
        seed: Optional[int] = None,
        # evaluate every N *applied updates* (None: the engine's per-round
        # eval_every, scaled by the trainer count so all policies evaluate
        # comparably often; 0: never)
        eval_every: Optional[int] = None,
    ) -> None:
        self.concurrency = concurrency
        self._selection = selection
        self._selection_kwargs = dict(selection_kwargs or {})
        self._staleness_spec = staleness
        self._staleness_kwargs = dict(staleness_kwargs or {})
        self._hetero_cfg = heterogeneity
        self.seed = seed
        self.eval_every = eval_every

        # runtime state, populated by bind()/run()
        self.engine: Optional["Engine"] = None
        self.runtime: Optional[Any] = None  # ClientRuntime: id -> actor/pool
        self.metrics: Optional["MetricsCollector"] = None
        self.tier = "global"  # "site" when bound as a nested per-site policy
        self.selector: Optional[SelectionStrategy] = None
        self.discount: Optional[StalenessFn] = None
        self.hetero: Optional[HeterogeneityModel] = None
        self.clients: List[int] = []
        self.queue = EventQueue()
        self.now = 0.0  # virtual seconds
        self.version = 0  # global model version (== number of aggregations)
        self.applied = 0  # client updates merged into the global model
        self.dropped = 0  # dispatches lost to the fault model
        self.last_loss: Dict[int, float] = {}
        self._in_flight: Dict[int, PendingUpdate] = {}
        self._dispatch_count: Dict[int, int] = {}
        self._server_idx: Optional[int] = None
        self._node_pos: Dict[int, int] = {}
        self._wall_anchor = 0.0
        # adversarial robustness (bound from the engine): the robust
        # aggregator instance for this tier (None: plain staleness-weighted
        # aggregation), the attacker id set for arrival counting, and the
        # count of byzantine updates that reached this scheduler
        self.robust: Optional[Any] = None
        self._attacker_ids: frozenset = frozenset()
        self.attacked = 0
        # live (wall-clock) execution: set at bind time from the runtime's
        # ``live`` flag; arrival times then track real elapsed seconds and
        # the scripted heterogeneity model is disabled
        self._live = False
        self._live_epoch = 0.0
        self._eval_updates = 0  # evaluate every N applied updates (0 = never)
        self._next_eval = 0
        # (version, global_state, payload): server_payload built once per
        # model version instead of once per dispatch.  Consumers treat
        # payloads as immutable, and the stable payload *object* per version
        # is what downstream caches key on (turn fusion batches same-payload
        # turns; the redis broker interns one wire copy per version)
        self._payload_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    #: policies that merge raw client states without the algorithm's
    #: ``aggregate`` hook require full-state uploads (FedAvg family)
    requires_full_state = False
    #: delta-buffering policies diff arrivals against the global state they
    #: were dispatched from; others skip pinning it so superseded states
    #: are freed as soon as the next aggregation replaces them
    needs_base_state = False

    #: server-driven policies resolve an aggregator node at bind time;
    #: decentralized (gossip) policies have no server and skip that step
    requires_aggregator = True

    #: topology coordination patterns this scheduler can drive when bound as
    #: the engine's top-level execution policy (scoped site-tier bindings
    #: skip the check — the coordinator vouches for them)
    patterns = ("server",)

    def bind(
        self,
        engine: "Engine",
        *,
        clients: Optional[Sequence[int]] = None,
        server_idx: Optional[int] = None,
        metrics: Optional["MetricsCollector"] = None,
    ) -> "Scheduler":
        """Attach to an engine: resolve server, client pool, and models.

        Without keyword arguments this is a *flat* binding — the scheduler
        drives the whole federation against the engine's single aggregator.
        A hierarchical coordinator instead binds one policy per site with
        ``clients`` (that site's trainer indices), ``server_idx`` (the site
        head's position in ``engine.nodes``), and a private ``metrics``
        collector, turning any flat policy into that site's intra-site
        execution policy.
        """
        scoped = clients is not None or server_idx is not None
        if not scoped and engine.topology.pattern not in self.patterns:
            need = "/".join(self.patterns)
            if "hierarchical" in self.patterns:
                hint = (
                    "flat topologies use the flat policies "
                    "(sync, semi_sync, fedasync, fedbuff)"
                )
            elif "gossip" in self.patterns:
                hint = (
                    "gossip policies need a decentralized topology "
                    "(ring, p2p, or custom)"
                )
            else:
                hint = (
                    "use scheduler=hier_async (with scheduler.inner=... per site) "
                    "for hierarchical federations and scheduler=gossip_async for "
                    "decentralized (ring/p2p/custom) ones"
                )
            raise ValueError(
                f"scheduler {self.name!r} needs a {need}-pattern topology "
                f"(got {engine.topology.pattern!r}); {hint}"
            )
        self.engine = engine
        self.metrics = metrics if metrics is not None else engine.metrics
        self.tier = "site" if scoped else "global"
        seed = int(self.seed if self.seed is not None else engine.seed)
        if self._selection is None:
            # no scheduler-level override: honor the engine's configured
            # strategy (so `selection=power_of_choice scheduler=fedasync`
            # behaves the same with and without a scheduler); site-tier
            # bindings get their own copy so per-site selection state
            # (round-robin cursors, rng streams) stays independent
            self.selector = copy.deepcopy(engine.selector) if scoped else engine.selector
        else:
            self.selector = build_selector(self._selection, seed=seed, **self._selection_kwargs)
        self.discount = build_staleness(self._staleness_spec, **self._staleness_kwargs)
        self.hetero = HeterogeneityModel.from_config(self._hetero_cfg, seed=seed)
        if clients is not None:
            # scoped binding: the coordinator addresses engine nodes directly
            self.clients = [int(c) for c in clients]
            self.runtime = engine.node_runtime(self.clients)
        else:
            # flat binding: logical client ids (data-shard indices), served
            # by the engine's client runtime — a dedicated actor per client,
            # or the shared worker pool in pooled execution.  Either way the
            # ids (and so every selection/heterogeneity stream keyed on
            # them) are identical, which is what makes pooled runs
            # bit-reproduce dedicated ones.
            self.runtime = engine.client_runtime()
            self.clients = list(self.runtime.client_ids())
        self._live = bool(getattr(self.runtime, "live", False))
        if self._live:
            # wall-clock execution: real processes provide latency and
            # failures, so the scripted model degenerates to "arrives now"
            # (mean must stay > 0; a nanosecond never orders ahead of real
            # elapsed time) and dropouts come only from membership
            self.hetero = HeterogeneityModel(latency="constant", mean=1e-9, seed=seed)
        if server_idx is not None:
            self._server_idx = int(server_idx)
            if self._server_idx < 0 or self._server_idx >= len(engine.nodes):
                raise ValueError(
                    f"server_idx {self._server_idx} is out of range for this "
                    f"engine ({len(engine.nodes)} nodes on a "
                    f"{engine.topology.pattern!r}-pattern topology)"
                )
            node = engine.nodes[self._server_idx]
            if not node.role.aggregates():
                raise ValueError(
                    f"node {self._server_idx} ({node.name!r}) cannot serve a "
                    f"site tier for scheduler {self.name!r}: its role "
                    f"{node.role.value!r} does not aggregate on this "
                    f"{engine.topology.pattern!r}-pattern topology — bind "
                    "server_idx to an aggregator or relay (site-head) node"
                )
        elif self.requires_aggregator:
            try:
                self._server_idx = next(
                    i for i, n in enumerate(engine.nodes) if n.role is NodeRole.AGGREGATOR
                )
            except StopIteration:
                raise ValueError("scheduler needs a topology with an aggregator node") from None
        if self.requires_full_state and self._server_idx is not None:
            algo = engine.nodes[self._server_idx].algorithm
            if not algo.uploads_full_state:
                raise ValueError(
                    f"scheduler {self.name!r} interpolates raw model states and "
                    f"needs a full-state-uploading algorithm; {algo.name!r} "
                    "uploads deltas/variates — use semi_sync or sync instead"
                )
        plan = getattr(engine, "attack_plan", None)
        self._attacker_ids = frozenset(plan.attacker_ids) if plan is not None else frozenset()
        robust_factory = getattr(engine, "robust_factory", None)
        self.robust = robust_factory() if robust_factory is not None else None
        if self.robust is not None and self._server_idx is not None:
            from repro.algorithms.base import Algorithm

            algo = engine.nodes[self._server_idx].algorithm
            if not algo.uploads_full_state:
                raise ValueError(
                    f"robust aggregation ({self.robust.name!r}) operates on raw "
                    f"model states; algorithm {algo.name!r} uploads deltas/"
                    "control variates — use a full-state algorithm (the "
                    "fedavg family) or drop aggregation.robust"
                )
            uses_algo_aggregate = (
                self.name in ("sync", "semi_sync") or getattr(self, "outer", None) == "sync"
            )
            if uses_algo_aggregate and type(algo).aggregate is not Algorithm.aggregate:
                # never silently ignore a robustness request: a custom
                # aggregate() and a robust rule cannot both own the merge
                raise ValueError(
                    f"robust aggregator {self.robust.name!r} would replace "
                    f"{algo.name!r}'s custom aggregate(); pick a plain "
                    "weighted-mean algorithm or drop aggregation.robust"
                )
        self._node_pos = {
            n.spec.index: i for i, n in enumerate(engine.nodes) if n.role.trains()
        }
        if self._attacker_ids and clients is not None:
            # scoped (site-tier) bindings address engine node indices, not
            # logical client ids; translate the attacker set through each
            # node's pinned data shard so arrival counting stays correct
            self._attacker_ids = frozenset(
                c for c in self.clients
                if engine.nodes[self._node_pos[c]].client_id in self._attacker_ids
            )
        if self.concurrency is None:
            # honor the engine's partial-participation knob: at most
            # client_fraction of the pool is in flight (round policies also
            # use this as their per-round dispatch count)
            self.concurrency = max(1, int(round(engine.client_fraction * len(self.clients))))
        self.concurrency = max(1, min(int(self.concurrency), len(self.clients)))
        # evaluation cadence is counted in *applied updates* so policies with
        # different aggregation granularity (1 for FedAsync, K for FedBuff,
        # a round's worth for sync) evaluate comparably often; the engine's
        # per-round eval_every maps to one round's worth of updates —
        # ``concurrency``, which already reflects partial participation
        if self.eval_every is None:
            self._eval_updates = int(engine.eval_every) * self.concurrency
        else:
            self._eval_updates = int(self.eval_every)
        return self

    # ------------------------------------------------------------------
    # shared runtime machinery
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The engine's tracer, read per call: ``bind`` happens before the
        setup callbacks fire, so a tracer captured at bind time would still
        be the no-op default even when Telemetry later installs a real one."""
        engine = self.engine
        return engine.tracer if engine is not None else NOOP_TRACER

    @property
    def server(self) -> "Node":
        assert self.engine is not None and self._server_idx is not None
        return self.engine.nodes[self._server_idx]

    @property
    def global_state(self) -> Dict[str, np.ndarray]:
        state = self.server.global_state
        assert state is not None, "scheduler used before engine async setup"
        return state

    @global_state.setter
    def global_state(self, state: Dict[str, np.ndarray]) -> None:
        self.server.global_state = state

    def idle_clients(self) -> List[int]:
        live = self.runtime.live_clients() if self.runtime is not None else None
        if live is None:
            return [c for c in self.clients if c not in self._in_flight]
        # live runtime: selection only sees clients a live member serves, so
        # an evicted peer's clients stop being picked within one sweep
        alive = set(live)
        return [c for c in self.clients if c in alive and c not in self._in_flight]

    def select_idle(self, k: int) -> List[int]:
        """Pick up to ``k`` idle clients via the selection strategy."""
        idle = self.idle_clients()
        if not idle or k <= 0:
            return []
        assert self.selector is not None
        return self.selector.select(idle, min(k, len(idle)), self.version, losses=self.last_loss)

    def dispatch(self, client: int) -> PendingUpdate:
        """Send the current global model to ``client`` and start local training."""
        assert self.engine is not None and self.hetero is not None
        if client in self._in_flight:
            raise RuntimeError(f"client {client} already has an update in flight")
        count = self._dispatch_count.get(client, 0)
        self._dispatch_count[client] = count + 1
        latency, dropped = self.hetero.sample(client, count)
        if dropped:
            # a dropped client crashed or lost connectivity: no training
            # happens and nothing reaches the server (matching the sync
            # engine's drop model, and keeping stateful client algorithms
            # from silently diverging from what the server saw); the event
            # still occupies the client until the server would notice
            future = None
        else:
            cache = self._payload_cache
            if cache is not None and cache[0] == self.version and cache[1] is self.global_state:
                payload = cache[2]
            else:
                payload = self.server.algorithm.server_payload(self.global_state)
                self._payload_cache = (self.version, self.global_state, payload)
            assert self.runtime is not None
            future = self.runtime.submit(
                client, "local_update", payload, self.version, self.version
            )
        event = PendingUpdate(
            arrival=self.now + latency,
            seq=self.queue.next_seq(),
            client=client,
            version=self.version,
            dispatched_at=self.now,
            dropped=dropped,
            future=future,
            # aggregations replace (never mutate) the state dict, so a
            # reference suffices where the policy needs the dispatch base
            base_state=self.global_state if self.needs_base_state else None,
        )
        self.queue.push(event)
        self._in_flight[client] = event
        return event

    def retire(self, event: PendingUpdate) -> Dict[str, Any]:
        """Block on an event's future, advance virtual time, free the client."""
        self.now = max(self.now, event.arrival)
        self._in_flight.pop(event.client, None)
        self.tracer.sim_span(
            "client.turn", event.dispatched_at, event.arrival, cat="sched",
            track=f"client {event.client}", client=event.client,
            version=event.version, dropped=event.dropped,
        )
        if event.dropped:
            # nothing ever arrived: no stats, no loss signal for selection
            self.dropped += 1
            return {}
        try:
            result = event.result(_TRAIN_TIMEOUT)
        except PeerLostError as exc:
            # a live member serving this client left or was evicted: map the
            # loss onto the dropped-dispatch path (every policy already
            # skips dropped events) so the run continues on the survivors
            _LOG.warning("dispatch for client %d lost: %s", event.client, exc)
            event.dropped = True
            self.dropped += 1
            if self._live:
                self.now = max(self.now, time.perf_counter() - self._live_epoch)
            return {}
        except BrokerTurnLost as exc:
            # a broker-backed runtime lost the turn (dead worker, retries
            # exhausted): fail the run with the dispatch pinned, instead of
            # stalling until _TRAIN_TIMEOUT with the window full
            raise BrokerTurnLost(
                f"dispatch for client {event.client} (version "
                f"{event.version}) failed at the broker: {exc}"
            ) from exc
        if self._live:
            # virtual arrival stamps only order events; the clock itself
            # tracks real elapsed time once the result is actually here
            self.now = max(self.now, time.perf_counter() - self._live_epoch)
        stats = result.get("stats", {})
        if "loss" in stats:
            self.last_loss[event.client] = float(stats["loss"])
        if event.client in self._attacker_ids:
            # a byzantine update actually reached this tier (dropped and
            # lost dispatches return earlier and never count)
            self.attacked += 1
        return result

    def staleness_of(self, event: PendingUpdate) -> int:
        return max(0, self.version - event.version)

    def robust_counters(self) -> Dict[str, int]:
        """Attack/defense counters for telemetry: byzantine updates that
        arrived, plus the robust aggregator's clip/reject totals.
        Hierarchical coordinators override this to fold in their site tiers.
        """
        out = {"attacked": int(self.attacked), "clipped": 0, "rejected": 0}
        if self.robust is not None:
            out["clipped"] = int(self.robust.counters.get("clipped", 0))
            out["rejected"] = int(self.robust.counters.get("rejected", 0))
        return out

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def record_aggregation(
        self,
        merged: Sequence[Dict[str, Any]],
        staleness: Sequence[int],
    ) -> "RoundRecord":
        """Append one metrics record for an aggregation event."""
        # imported lazily: repro.engine.engine imports this module, and the
        # engine package __init__ pulls engine.py in — a top-level import
        # here would close that cycle before Scheduler exists
        from repro.engine.metrics import RoundRecord

        assert self.engine is not None and self.metrics is not None
        wall = time.perf_counter() - self._wall_anchor
        record = RoundRecord(
            round_idx=len(self.metrics.history),
            wall_seconds=wall,
            sim_time=self.now,
            applied=len(merged),
            staleness_mean=float(np.mean(staleness)) if len(staleness) else 0.0,
            tier=self.tier,
        )
        losses, accs, weights = [], [], []
        for res in merged:
            stats = res.get("stats", {})
            if "loss" in stats:
                w = float(stats.get("samples", 1.0))
                losses.append(float(stats["loss"]) * w)
                accs.append(float(stats.get("accuracy", 0.0)) * w)
                weights.append(w)
        total_w = sum(weights)
        if total_w > 0:
            record.train_loss = sum(losses) / total_w
            record.train_accuracy = sum(accs) / total_w
        if self._eval_updates and self.applied >= self._next_eval:
            record.eval_loss, record.eval_accuracy = self.engine.evaluate()
            while self._next_eval <= self.applied:
                self._next_eval += self._eval_updates
        # re-anchor after evaluation so its cost is charged to no record —
        # mirroring the sync engine, whose round timer also excludes eval
        self._wall_anchor = time.perf_counter()
        self.metrics.add(record)
        return record

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self, total_updates: Optional[int] = None) -> "MetricsCollector":
        """Drive the federation until ``total_updates`` more client updates
        have been merged; returns the engine's metrics history.  Calling
        ``run`` again continues the same federation (version, virtual clock,
        and metrics carry over).

        This is a template over the policy's :meth:`_execute` loop: a
        callback-requested stop (:class:`~repro.engine.metrics.StopRun`,
        raised from the ``MetricsCollector.add`` hook point) is caught here
        for *every* policy, so all six execution policies honor callbacks
        and early stopping without per-policy wiring; the run then finishes
        normally (drain in-flight updates, final evaluation).
        """
        from repro.engine.metrics import StopRun

        if self.metrics is not None:
            self.metrics.reset_stop()  # a stop from a previous run is spent
        try:
            self._execute(total_updates)
        except StopRun as stop:
            _LOG.info("scheduler %s stopped early: %s", self.name, stop.reason)
        return self._finish()

    def _execute(self, total_updates: Optional[int]) -> None:
        """The policy's driving loop (overridden by concrete policies)."""
        raise NotImplementedError

    def _start(self, total_updates: Optional[int]) -> int:
        """Per-run bookkeeping; returns the target value of ``self.applied``."""
        assert self.engine is not None, "call bind(engine) before run()"
        if self.tier != "site":
            # site-tier chunks run many times per federation; their
            # coordinator already set up every node before the first chunk,
            # so they skip the fleet-wide actor round-trip
            self.engine.setup_async()
        self._wall_anchor = time.perf_counter()
        if self._live:
            # anchor wall time so self.now continues monotonically across
            # repeated run() calls on the same federation
            self._live_epoch = time.perf_counter() - self.now
        if total_updates is None:
            total_updates = self.engine.global_rounds * len(self.clients)
        if total_updates < 1:
            raise ValueError("total_updates must be >= 1")
        if self._eval_updates:
            self._next_eval = self.applied + self._eval_updates
        return self.applied + int(total_updates)

    def drain(self) -> None:
        """Retire every still-in-flight dispatch without aggregating it.

        Called at the end of a run so no training futures are left queued on
        the actors (they would otherwise stall ``engine.shutdown``) and no
        pinned dispatch-time state outlives the run.  Site-tier bindings
        restore the clock afterwards: cancelled-at-the-boundary dispatches
        must not delay the site's upload timestamp (their updates never
        merge anywhere, so their latency gates nothing)."""
        before = self.now
        while self.queue:
            self.retire(self.queue.pop())
        if self.tier == "site":
            self.now = before

    def _finish(self) -> "MetricsCollector":
        """Drain, make sure the run ends on an evaluated record, and return
        the metrics (mirrors the sync engine's always-evaluate-last-round)."""
        assert self.engine is not None and self.metrics is not None
        self.drain()
        history = self.metrics.history
        if self._eval_updates and history and history[-1].eval_accuracy is None:
            history[-1].eval_loss, history[-1].eval_accuracy = self.engine.evaluate()
        return self.metrics

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(selection={self._selection!r}, "
            f"concurrency={self.concurrency}, version={self.version}, "
            f"applied={self.applied})"
        )


def build_scheduler(name: str, /, **kwargs) -> Scheduler:
    """Build a registered scheduler (``sync``, ``semi_sync``, ``fedasync``,
    ``fedbuff``) by name."""
    return SCHEDULERS.build(name, **kwargs)
