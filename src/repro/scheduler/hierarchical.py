"""Hierarchical asynchronous federation: per-tier execution policies.

The paper's cross-facility scenario (Fig. 1d / Fig. 7) nests two very
different links: dense intra-site groups over fast collectives and sparse
cross-site links over slow RPC.  This module makes the *execution policy*
composable per tier, the same way the topology already composes protocols:

* each **site head** runs a nested *inner* policy over its trainers — any
  flat scheduler (``sync`` barrier, ``semi_sync`` deadline, ``fedasync``,
  ``fedbuff``) bound in site scope, with the head playing the server role;
* the **global root** merges site-level uploads under an *outer* policy:
  ``fedasync`` (staleness-discounted interpolation per arrival — async
  HierFAVG), ``fedbuff`` (buffered site deltas), or ``sync`` (barrier
  across sites, reproducing the synchronous hierarchy under the same
  virtual clock).

Site uploads travel through the site head's ``outer_compressor``/DP codec,
delta-coded against the global state the site was dispatched from — exactly
the slow-link treatment of the synchronous hierarchical round (§3.4.5).

Virtual time has two latency models: the inner heterogeneity model stamps
trainer dispatches inside each site, and ``outer_heterogeneity`` stamps the
cross-site link (one draw per direction; uplink draws may also drop).  A
site blocks awaiting the next global model after it uploads — asynchrony
lives *across* sites: a slow site no longer stalls the federation, it just
merges late with a staleness discount.  Real compute still happens (inner
rounds run the trainers' actors); site rounds execute serially in wall
time, which keeps the virtual-time accounting exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.scheduler.base import SCHEDULERS, Scheduler, build_scheduler
from repro.scheduler.events import PendingUpdate
from repro.scheduler.heterogeneity import HeterogeneityModel
from repro.scheduler.policies import (
    _apply_buffered_deltas,
    _float_delta,
    _interpolate,
    _robust_flush_deltas,
)
from repro.utils.logging import get_logger

__all__ = ["HierarchicalScheduler"]

_LOG = get_logger("scheduler")

#: real-seconds timeout for head-actor codec calls
_HEAD_TIMEOUT = 600.0

_OUTER_POLICIES = ("fedasync", "fedbuff", "sync")

# site lifecycle states
_IDLE = "idle"  # needs a fresh global dispatch
_READY = "ready"  # has a global model, inner round not yet run
_UPLOADING = "uploading"  # site round done, upload in the outer queue


@dataclass
class _Site:
    """Runtime bookkeeping for one site of the hierarchy."""

    site: int  # site id within the topology
    head: int  # engine-node position of the site head
    trainers: List[int]
    inner: Scheduler
    samples: int  # total training samples below this head (outer weight)
    state: str = _IDLE
    base_state: Optional[Dict[str, np.ndarray]] = None  # global at dispatch
    base_version: int = 0
    draws: int = 0  # outer-link latency draws taken so far
    hist_mark: int = 0  # site-collector records already consumed
    merged_rounds: int = 0  # site rounds merged into the global model

    @property
    def collector(self):
        assert self.inner.metrics is not None
        return self.inner.metrics


@SCHEDULERS.register("hier_async", "hierarchical", "hier")
class HierarchicalScheduler(Scheduler):
    """Two-tier execution policy over a hierarchical topology.

    Parameters
    ----------
    inner:
        Name of the per-site policy (``sync``, ``semi_sync``, ``fedasync``,
        ``fedbuff``) — every site head runs its own scoped instance.
    inner_kwargs:
        Extra kwargs for the inner policy (e.g. ``deadline``,
        ``buffer_size``).  Staleness/selection/heterogeneity settings of
        this scheduler are inherited unless explicitly overridden here.
    outer:
        Root merge policy: ``fedasync`` | ``fedbuff`` | ``sync``.
    outer_alpha:
        Interpolation weight for the ``fedasync`` outer policy (scaled by
        the staleness discount).
    outer_buffer_size, outer_server_lr:
        Buffering parameters for the ``fedbuff`` outer policy.
    updates_per_site_round:
        Inner updates a site applies before uploading (default: the site's
        trainer count — one site-round's worth).
    outer_heterogeneity:
        Latency/dropout model of the slow cross-site link (one draw per
        direction, keyed by the site head's node index).  The base
        ``heterogeneity`` kwarg keeps modelling the trainers inside sites.
    """

    name = "hier_async"
    patterns = ("hierarchical",)

    def __init__(
        self,
        inner: str = "sync",
        outer: str = "fedasync",
        inner_kwargs: Optional[Dict[str, Any]] = None,
        outer_alpha: float = 0.6,
        outer_buffer_size: int = 2,
        outer_server_lr: float = 1.0,
        updates_per_site_round: Optional[int] = None,
        outer_heterogeneity: Optional[Any] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        inner = str(inner)
        if inner in ("hier_async", "hierarchical", "hier"):
            raise ValueError("inner policy cannot itself be hierarchical (one nesting level)")
        outer = str(outer)
        if outer not in _OUTER_POLICIES:
            raise ValueError(f"unknown outer policy {outer!r}; have {_OUTER_POLICIES}")
        if not (0.0 < outer_alpha <= 1.0):
            raise ValueError("outer_alpha must be in (0, 1]")
        if outer_buffer_size < 1:
            raise ValueError("outer_buffer_size must be >= 1")
        if updates_per_site_round is not None and updates_per_site_round < 1:
            raise ValueError("updates_per_site_round must be >= 1")
        self.inner = inner
        self.outer = outer
        self.inner_kwargs = dict(inner_kwargs or {})
        self.outer_alpha = float(outer_alpha)
        self.outer_buffer_size = int(outer_buffer_size)
        self.outer_server_lr = float(outer_server_lr)
        self.updates_per_site_round = updates_per_site_round
        self._outer_hetero_cfg = outer_heterogeneity
        self.outer_hetero: Optional[HeterogeneityModel] = None
        self.sites: List[_Site] = []
        self._site_by_head: Dict[int, _Site] = {}
        self._outer_buffer: List[Dict[str, Any]] = []
        self.outer_flushes = 0
        self._robust_window: List[Dict[str, np.ndarray]] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def bind(self, engine: "Engine", **scope: Any) -> "HierarchicalScheduler":  # noqa: F821
        if scope:
            raise ValueError("a hierarchical scheduler cannot be bound in site scope")
        if self.engine is engine and self.sites:
            # re-entry from a follow-up run_async(): keep the live site
            # schedulers (their clocks and versions continue the federation)
            return self
        super().bind(engine)
        groups = engine.topology.site_groups()
        if not groups:
            raise ValueError(
                f"scheduler {self.name!r} needs a topology with site groups "
                f"(got {type(engine.topology).__name__} exposing none)"
            )
        seed = int(self.seed if self.seed is not None else engine.seed)
        # a distinct stream for the slow link so inner/outer draws never alias
        self.outer_hetero = HeterogeneityModel.from_config(self._outer_hetero_cfg, seed=seed + 7919)
        self.sites = []
        for g in groups:
            inner = self._build_inner()
            from repro.engine.metrics import MetricsCollector  # cycle guard

            inner.bind(
                engine,
                clients=g.trainers,
                server_idx=g.head,
                metrics=MetricsCollector(),
            )
            samples = int(sum(engine.nodes[t].num_samples for t in g.trainers))
            self.sites.append(
                _Site(site=g.site, head=g.head, trainers=list(g.trainers), inner=inner, samples=samples)
            )
        self._site_by_head = {s.head: s for s in self.sites}
        _LOG.info(
            "hierarchical scheduler bound: %d sites, inner=%s outer=%s",
            len(self.sites), self.inner, self.outer,
        )
        return self

    def _build_inner(self) -> Scheduler:
        kwargs = dict(self.inner_kwargs)
        kwargs.pop("eval_every", None)  # site tiers never evaluate globally
        kwargs.setdefault("staleness", self._staleness_spec)
        kwargs.setdefault("staleness_kwargs", dict(self._staleness_kwargs))
        kwargs.setdefault("heterogeneity", self._hetero_cfg)
        if self._selection is not None:
            kwargs.setdefault("selection", self._selection)
            kwargs.setdefault("selection_kwargs", dict(self._selection_kwargs))
        kwargs.setdefault("seed", self.seed)
        return build_scheduler(self.inner, eval_every=0, **kwargs)

    # ------------------------------------------------------------------
    # outer-tier mechanics
    # ------------------------------------------------------------------
    def _dispatch_site(self, site: _Site) -> None:
        """Ship the current global model down the slow link to a site head."""
        assert self.engine is not None and self.outer_hetero is not None
        latency, _ = self.outer_hetero.sample(site.head, site.draws)  # downlink never drops
        site.draws += 1
        payload = self.server.algorithm.server_payload(self.global_state)
        self.engine.actors[site.head].call("adopt_global", payload, timeout=_HEAD_TIMEOUT)
        # pin the dispatch-time global: the root decodes this site's next
        # delta-coded upload against exactly this reference (aggregations
        # replace the state dict, so holding the reference is enough)
        site.base_state = self.global_state
        site.base_version = self.version
        site.inner.now = max(site.inner.now, self.now + latency)
        site.state = _READY

    def _run_site_round(self, site: _Site) -> None:
        """Run one inner-policy chunk at a site and enqueue its upload."""
        assert self.engine is not None and self.outer_hetero is not None
        inner = site.inner
        before = inner.applied
        with self.tracer.span("site.round", cat="hier", site=site.site,
                              sim_time=inner.now, policy=inner.name):
            inner.run(self.updates_per_site_round or len(site.trainers))
        applied = inner.applied - before
        recs = site.collector.history[site.hist_mark:]
        site.hist_mark = len(site.collector.history)
        w_total = sum(r.applied for r in recs)
        stats: Dict[str, float] = {"samples": float(site.samples)}
        if w_total > 0:
            stats["loss"] = sum(r.train_loss * r.applied for r in recs) / w_total
            stats["accuracy"] = sum(r.train_accuracy * r.applied for r in recs) / w_total
        wire, meta = self.engine.actors[site.head].call(
            "site_upload", site.base_state, site.samples, timeout=_HEAD_TIMEOUT
        )
        latency, dropped = self.outer_hetero.sample(site.head, site.draws)
        site.draws += 1
        event = PendingUpdate(
            arrival=inner.now + latency,
            seq=self.queue.next_seq(),
            client=site.head,
            version=site.base_version,
            dispatched_at=inner.now,
            dropped=dropped,
            value={
                "state": wire,
                "meta": meta,
                "stats": stats,
                "applied": applied,
                "site": site.site,
            },
        )
        event.base_state = site.base_state
        self.queue.push(event)
        site.state = _UPLOADING

    def _decode(self, event: PendingUpdate) -> Dict[str, np.ndarray]:
        upload = event.value
        return self.server.decode_site_upload(upload["state"], upload["meta"], event.base_state)

    def _merge_next_arrival(self) -> None:
        """Async outer step: pop the earliest site upload and merge it."""
        event = self.queue.pop()
        self.now = max(self.now, event.arrival)
        site = self._site_by_head[event.client]
        site.state = _IDLE
        self.tracer.sim_span(
            "site.upload", event.dispatched_at, event.arrival, cat="hier",
            track=f"site {event.value['site']}", site=event.value["site"],
            dropped=event.dropped,
        )
        if event.dropped:
            # the upload was lost on the slow link: the root notices at the
            # (virtual) timeout and redispatches; nothing merges
            self.dropped += 1
        else:
            upload = event.value
            tau = self.staleness_of(event)
            assert self.discount is not None
            if self.outer == "fedasync":
                weight = self.outer_alpha * self.discount(tau)
                with self.tracer.span("outer.merge", cat="hier", sim_time=self.now,
                                      policy=self.outer, site=upload["site"]):
                    target = self._decode(event)
                    if self.robust is not None:
                        # robust outer fedasync: interpolate toward a robust
                        # combination of the recent site uploads rather than
                        # trusting the latest arrival alone
                        self._robust_window.append(target)
                        cap = max(3, len(self.sites))
                        while len(self._robust_window) > cap:
                            self._robust_window.pop(0)
                        target = self.robust.combine(
                            list(self._robust_window),
                            [1.0] * len(self._robust_window),
                            base=self.global_state,
                        )
                    self.global_state = _interpolate(self.global_state, target, weight)
                self.version += 1
                site.merged_rounds += 1
                self._record_outer([upload], [tau])
            else:  # fedbuff outer: buffer the site delta, flush every K
                assert event.base_state is not None
                delta = _float_delta(self._decode(event), event.base_state)
                site.merged_rounds += 1
                self._outer_buffer.append(
                    {"delta": delta, "weight": self.discount(tau), "upload": upload, "tau": tau}
                )
                if len(self._outer_buffer) >= self.outer_buffer_size:
                    self._flush_outer()
        self._dispatch_site(site)

    def _merge_sync_barrier(self) -> None:
        """Sync outer round: wait for every site, aggregate once, redispatch."""
        assert self.engine is not None
        events: List[PendingUpdate] = []
        while self.queue:
            events.append(self.queue.pop())
        if not events:
            raise RuntimeError("sync outer barrier reached with no site uploads in flight")
        self.now = max(self.now, max(e.arrival for e in events))
        entries, uploads, staleness = [], [], []
        for event in events:
            site = self._site_by_head[event.client]
            site.state = _IDLE
            if event.dropped:
                self.dropped += 1
                continue
            entries.append(
                {
                    "rank": event.client,
                    "state": self._decode(event),
                    "meta": {"num_samples": int(event.value["meta"].get("num_samples", 1))},
                }
            )
            site.merged_rounds += 1
            uploads.append(event.value)
            staleness.append(self.staleness_of(event))
        if entries:
            algo = self.server.algorithm
            with self.tracer.span("outer.merge", cat="hier", sim_time=self.now,
                                  policy=self.outer, merged=len(entries)):
                if self.robust is not None:
                    self.global_state = self.robust.combine(
                        [e["state"] for e in entries],
                        [float(e["meta"].get("num_samples", 1.0)) for e in entries],
                        base=self.global_state,
                    )
                else:
                    self.global_state = algo.aggregate(entries, self.global_state, self.version)
            self.version += 1
            self._record_outer(uploads, staleness)
        for site in self.sites:
            if site.state == _IDLE:
                self._dispatch_site(site)

    def _flush_outer(self) -> None:
        if not self._outer_buffer:
            return
        # detach before applying: _record_outer may raise StopRun, and
        # applied site deltas must not survive to be re-applied next flush
        buffer, self._outer_buffer = self._outer_buffer, []
        with self.tracer.span("outer.merge", cat="hier", sim_time=self.now,
                              policy=self.outer, merged=len(buffer)):
            if self.robust is not None:
                self.global_state = _robust_flush_deltas(
                    self.global_state, buffer, self.outer_server_lr, self.robust
                )
            else:
                self.global_state = _apply_buffered_deltas(
                    self.global_state, buffer, self.outer_server_lr
                )
        self.version += 1
        self.outer_flushes += 1
        self._record_outer(
            [item["upload"] for item in buffer],
            [item["tau"] for item in buffer],
        )

    # ------------------------------------------------------------------
    # two-tier round accounting
    # ------------------------------------------------------------------
    def _record_outer(self, uploads: Sequence[Dict[str, Any]], staleness: Sequence[int]) -> None:
        """One global record per root aggregation.

        ``applied`` counts *client* updates carried by the merged site
        uploads (so totals compare 1:1 with flat policies), ``sites_merged``
        counts the uploads, and ``per_node`` keeps the per-site breakdown.
        Site-tier records live in each site's own collector
        (``scheduler.site_metrics``).
        """
        from repro.engine.metrics import RoundRecord

        assert self.engine is not None and self.metrics is not None
        applied = int(sum(u["applied"] for u in uploads))
        record = RoundRecord(
            round_idx=len(self.metrics.history),
            wall_seconds=time.perf_counter() - self._wall_anchor,
            sim_time=self.now,
            applied=applied,
            staleness_mean=float(np.mean(staleness)) if len(staleness) else 0.0,
            tier=self.tier,
            sites_merged=len(uploads),
        )
        losses, accs, weights = [], [], []
        for u in uploads:
            stats = u.get("stats", {})
            record.per_node[f"site{u['site']}"] = {
                k: float(v) for k, v in stats.items() if isinstance(v, (int, float))
            }
            record.per_node[f"site{u['site']}"]["applied"] = float(u["applied"])
            if "loss" in stats:
                w = float(stats.get("samples", 1.0))
                losses.append(float(stats["loss"]) * w)
                accs.append(float(stats.get("accuracy", 0.0)) * w)
                weights.append(w)
        if sum(weights) > 0:
            record.train_loss = sum(losses) / sum(weights)
            record.train_accuracy = sum(accs) / sum(weights)
        self.applied += applied
        if self._eval_updates and self.applied >= self._next_eval:
            record.eval_loss, record.eval_accuracy = self.engine.evaluate()
            while self._next_eval <= self.applied:
                self._next_eval += self._eval_updates
        self._wall_anchor = time.perf_counter()
        self.metrics.add(record)

    @property
    def site_metrics(self) -> List["MetricsCollector"]:  # noqa: F821
        """Per-site inner-tier histories, site-major."""
        return [s.collector for s in self.sites]

    def robust_counters(self) -> Dict[str, int]:
        """Root counters plus every site tier's (attacked updates retire at
        the inner schedulers; robust rejections can happen at either tier)."""
        out = super().robust_counters()
        for site in self.sites:
            inner = site.inner.robust_counters()
            for key in out:
                out[key] += inner[key]
        return out

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def _execute(self, total_updates: Optional[int]) -> None:
        target = self._start(total_updates)
        for site in self.sites:
            if site.state == _IDLE:
                self._dispatch_site(site)
        while self.applied < target:
            for site in self.sites:
                if site.state == _READY:
                    self._run_site_round(site)
            if self.outer == "sync":
                self._merge_sync_barrier()
            else:
                self._merge_next_arrival()
        if self.outer == "fedbuff":
            self._flush_outer()

    def drain(self) -> None:
        """Discard queued site uploads without advancing the virtual clock.

        Unlike trainer dispatches these carry no futures (their inner rounds
        completed before enqueueing), so there is nothing to unblock — and
        retiring them would charge un-merged uploads to the makespan."""
        while self.queue:
            event = self.queue.pop()
            site = self._site_by_head.get(event.client)
            if site is not None:
                site.state = _IDLE

    def __repr__(self) -> str:
        return (
            f"HierarchicalScheduler(inner={self.inner!r}, outer={self.outer!r}, "
            f"sites={len(self.sites)}, version={self.version}, applied={self.applied})"
        )
