"""Command-line entry point: config-driven experiments, the paper's workflow.

Usage::

    python -m repro                                    # default experiment
    python -m repro algorithm=fedprox +algorithm.mu=0.1
    python -m repro topology=hierarchical global_rounds=5
    python -m repro scheduler=fedasync                 # async execution policy
    python -m repro scheduler=fedbuff scheduler.buffer_size=8
    python -m repro topology=hierarchical scheduler=hier_async \
        scheduler.inner=fedbuff scheduler.outer=fedasync   # per-tier policies
    python -m repro topology=ring scheduler=gossip_async \
        scheduler.neighbor_selection=pairwise              # decentralized gossip
    python -m repro --config-dir my_confs --config-name exp  algorithm=moon
    python -m repro --list                             # show config groups

Every positional argument is a Hydra-style override (``group=option``,
``key.path=value``, ``+new.key=value``, ``~key``).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.conf import builtin_store
from repro.config import ConfigStore, compose, dumps
from repro.engine import Engine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("overrides", nargs="*", help="Hydra-style overrides (key=value)")
    parser.add_argument("--config-dir", default=None, help="directory of config groups")
    parser.add_argument("--config-name", default="experiment", help="primary config name")
    parser.add_argument("--list", action="store_true", help="list available config groups")
    parser.add_argument("--dry-run", action="store_true", help="print the composed config and exit")
    args = parser.parse_args(argv)

    store = ConfigStore(args.config_dir) if args.config_dir else builtin_store()

    if args.list:
        for group in ["topology", "algorithm", "model", "datamodule", "scheduler",
                      "compression", "privacy"]:
            options = store.available(group)
            if options:
                print(f"{group:12s} {', '.join(options)}")
        return 0

    cfg = compose(store, args.config_name, overrides=args.overrides)
    if args.dry_run:
        print(dumps(cfg.to_container()))
        return 0

    engine = Engine.from_config(cfg)
    try:
        if engine.scheduler is not None:
            metrics = engine.run_async()
            sched = engine.scheduler
            tiers = ""
            if getattr(sched, "sites", None):
                tiers = (f", {len(sched.sites)} sites, "
                         f"inner={sched.inner} outer={sched.outer}")
            elif getattr(sched, "peers", None):
                last_dist = next(
                    (r.consensus_dist for r in reversed(metrics.history)
                     if r.consensus_dist is not None),
                    None,
                )
                tiers = (f", {len(sched.peers)} peers, "
                         f"{sched.neighbor_selection}/{sched.mixing} gossip")
                if last_dist is not None:
                    tiers += f", consensus dist {last_dist:.4f}"
            print(f"scheduler: {sched.name} "
                  f"(sim makespan {metrics.sim_makespan():.2f}s, "
                  f"{metrics.total_applied()} updates applied{tiers})")
        else:
            metrics = engine.run()
        print(metrics.table())
        print("summary:", metrics.summary())
        comm = engine.comm_summary()
        for group, stats in sorted(comm.items()):
            print(
                f"comm[{group}]: {int(stats['bytes_sent']):,d} bytes, "
                f"{stats['sim_seconds']:.4f}s simulated"
            )
    finally:
        engine.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
