"""Command-line entry point: config-driven experiments, the paper's workflow.

Usage::

    python -m repro                                    # default experiment
    python -m repro algorithm=fedprox +algorithm.mu=0.1
    python -m repro topology=hierarchical global_rounds=5
    python -m repro scheduler=fedasync                 # async execution policy
    python -m repro scheduler=fedbuff scheduler.buffer_size=8
    python -m repro topology=hierarchical scheduler=hier_async \
        scheduler.inner=fedbuff scheduler.outer=fedasync   # per-tier policies
    python -m repro topology=ring scheduler=gossip_async \
        scheduler.neighbor_selection=pairwise              # decentralized gossip
    python -m repro --print-config algorithm=moon      # dump the resolved spec
    python -m repro run my_spec.yaml                   # run a saved spec file
    python -m repro broker=redis://localhost:6379/0    # broker-backed pool
    python -m repro worker 'redis://host:6379/0?run=<ns>'  # turn-pulling worker
    python -m repro mode=live +cluster.bind=127.0.0.1:7070 +cluster.min_nodes=3
    python -m repro node tcp://127.0.0.1:7070          # live cluster member
    python -m repro run my_spec.yaml --save runs/exp1  # archive the RunResult
    python -m repro --config-dir my_confs --config-name exp  algorithm=moon
    python -m repro --list                             # show config groups

Every positional argument is a Hydra-style override (``group=option``,
``key.path=value``, ``+new.key=value``, ``~key``).  ``run <spec.yaml>``
instead loads a typed :class:`~repro.experiment.ExperimentSpec` dumped by
``--print-config`` (or ``ExperimentSpec.save``) and executes it through
``Experiment.run()``.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.conf import builtin_store
from repro.config import ConfigStore, compose, dumps
from repro.experiment import Experiment, ExperimentSpec, RunResult


def _print_result(experiment: Experiment, result: RunResult) -> None:
    engine = experiment.engine
    sched = engine.scheduler if engine is not None else None
    if result.mode == "async" and sched is not None:
        metrics = result.metrics
        tiers = ""
        if getattr(sched, "sites", None):
            tiers = (f", {len(sched.sites)} sites, "
                     f"inner={sched.inner} outer={sched.outer}")
        elif getattr(sched, "peers", None):
            last_dist = next(
                (r.consensus_dist for r in reversed(metrics.history)
                 if r.consensus_dist is not None),
                None,
            )
            tiers = (f", {len(sched.peers)} peers, "
                     f"{sched.neighbor_selection}/{sched.mixing} gossip")
            if last_dist is not None:
                tiers += f", consensus dist {last_dist:.4f}"
        print(f"scheduler: {sched.name} "
              f"(sim makespan {metrics.sim_makespan():.2f}s, "
              f"{metrics.total_applied()} updates applied{tiers})")
    print(result.table())
    print("summary:", result.summary())
    for group, stats in sorted(result.comm.items()):
        print(
            f"comm[{group}]: {int(stats['bytes_sent']):,d} bytes, "
            f"{stats['sim_seconds']:.4f}s simulated"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "overrides", nargs="*",
        help="Hydra-style overrides (key=value); or `run <spec.yaml>` to "
             "execute a saved ExperimentSpec",
    )
    parser.add_argument("--config-dir", default=None, help="directory of config groups")
    parser.add_argument("--config-name", default="experiment", help="primary config name")
    parser.add_argument("--list", action="store_true", help="list available config groups")
    parser.add_argument("--dry-run", action="store_true", help="print the composed config and exit")
    parser.add_argument(
        "--print-config", action="store_true",
        help="print the resolved ExperimentSpec as YAML and exit "
             "(reusable via `python -m repro run <file>`)",
    )
    parser.add_argument(
        "--save", default=None, metavar="DIR",
        help="archive the RunResult (metrics, spec, final state) to DIR",
    )
    args = parser.parse_args(argv)

    store = ConfigStore(args.config_dir) if args.config_dir else builtin_store()

    if args.list:
        for group in ["topology", "algorithm", "model", "datamodule", "scheduler",
                      "compression", "privacy"]:
            options = store.available(group)
            if options:
                print(f"{group:12s} {', '.join(options)}")
        return 0

    if args.overrides and args.overrides[0] == "worker":
        # worker mode: `python -m repro worker <broker-url>` — pull client
        # turns from a running broker until it says stop
        if len(args.overrides) != 2:
            parser.error("usage: python -m repro worker <broker-url>")
        from repro.runtime.worker import run_worker

        return run_worker(args.overrides[1])

    if args.overrides and args.overrides[0] == "node":
        # node mode: `python -m repro node tcp://host:port` — join a live
        # cluster coordinator and serve client turns until told to stop
        if len(args.overrides) != 2:
            parser.error("usage: python -m repro node <cluster-url>")
        from repro.cluster.node import run_node

        return run_node(args.overrides[1])

    if args.overrides and args.overrides[0] == "run":
        # spec-file mode: `python -m repro run <spec.yaml>`
        if len(args.overrides) != 2:
            parser.error("usage: python -m repro run <spec.yaml>")
        spec = ExperimentSpec.load(args.overrides[1])
    else:
        cfg = compose(store, args.config_name, overrides=args.overrides)
        if args.dry_run:
            print(dumps(cfg.to_container()))
            return 0
        spec = ExperimentSpec.from_config(cfg)

    if args.print_config:
        print(spec.to_yaml(), end="")
        return 0

    experiment = Experiment(spec)
    result = experiment.run()
    _print_result(experiment, result)
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
