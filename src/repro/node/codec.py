"""Update codec: optional DP and compression applied to uploaded states.

Uploads are state dicts.  The codec flattens the floating entries to one
vector, applies (in order) differential privacy then compression, and ships
the compressor's payload arrays under a reserved ``__czip__.`` prefix with a
self-describing spec in the metadata — so the receiver can decode without
out-of-band knowledge, whatever keys the algorithm chose to upload.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.compression.base import CompressedPayload, Compressor
from repro.nn.serialization import StateSpec, state_dict_to_vector, vector_to_state_dict
from repro.privacy.dp import DifferentialPrivacy

__all__ = ["encode_update", "decode_update"]

_PREFIX = "__czip__."


def _float_keys(state: Dict[str, np.ndarray]) -> List[str]:
    return [k for k, v in state.items() if np.issubdtype(np.asarray(v).dtype, np.floating)]


def encode_update(
    state: Dict[str, np.ndarray],
    compressor: Optional[Compressor] = None,
    dp: Optional[DifferentialPrivacy] = None,
    reference: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Privatize/compress ``state``; returns (wire_state, extra_meta).

    With ``reference`` (the round-start global state for full-state uploads),
    the *difference* is what gets privatized/compressed — lossy compression
    of raw weights would destroy the model, while deltas are small and
    sparsity-friendly.  The receiver adds its copy of the reference back.
    """
    if compressor is None and dp is None:
        return state, {}
    keys = _float_keys(state)
    vec, spec = state_dict_to_vector(state, keys)
    extra: Dict[str, Any] = {}
    delta_coded = False
    if reference is not None and all(k in reference for k in keys):
        ref_vec, _ = state_dict_to_vector(reference, keys)
        vec = vec - ref_vec
        delta_coded = True
    if dp is not None:
        vec = dp.apply(vec)
        extra["dp"] = {"epsilon": dp.epsilon, "delta": dp.delta, "mechanism": dp.mechanism}
    if compressor is None:
        # re-assemble the privatized floats alongside untouched int entries
        if delta_coded:
            vec = vec + ref_vec
        out = OrderedDict(vector_to_state_dict(vec, spec))
        for k, v in state.items():
            if k not in out:
                out[k] = v
        return out, extra
    extra["delta_coded"] = delta_coded
    payload = compressor.compress(vec)
    wire: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for k, v in state.items():
        if k not in keys:
            wire[k] = v  # integer buffers travel raw
    for name, arr in payload.arrays.items():
        wire[_PREFIX + name] = arr
    extra.update(
        {
            "compressed": True,
            "comp_meta": dict(payload.meta),
            "original_bytes": int(payload.original_bytes),
            "spec": [[k, list(shape), np.dtype(dt).name] for k, shape, dt in spec.entries],
        }
    )
    return wire, extra


def decode_update(
    wire_state: Dict[str, np.ndarray],
    meta: Dict[str, Any],
    compressor: Optional[Compressor] = None,
    reference: Optional[Dict[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_update` (DP noise is, of course, not removed)."""
    if not meta.get("compressed"):
        return dict(wire_state)
    if compressor is None:
        raise ValueError("received a compressed update but no compressor is configured")
    arrays = {k[len(_PREFIX):]: v for k, v in wire_state.items() if k.startswith(_PREFIX)}
    payload = CompressedPayload(arrays, dict(meta["comp_meta"]), int(meta.get("original_bytes", 0)))
    vec = compressor.decompress(payload)
    spec = StateSpec([(k, tuple(shape), np.dtype(dt)) for k, shape, dt in meta["spec"]])
    if meta.get("delta_coded"):
        if reference is None:
            raise ValueError("delta-coded update needs the reference global state to decode")
        ref_vec, _ = state_dict_to_vector(reference, spec.keys)
        vec = vec + ref_vec
    out = OrderedDict(vector_to_state_dict(vec, spec))
    for k, v in wire_state.items():
        if not k.startswith(_PREFIX):
            out[k] = v
    return out
