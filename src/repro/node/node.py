"""Node implementation: role dispatch for every coordination pattern.

The engine spawns one Node per :class:`~repro.topology.base.NodeSpec` inside
a thread actor and calls ``run_round`` on all of them concurrently; group
communicator operations inside align across nodes by construction (every
role executes matching broadcast/gather/mixing sequences).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.algorithms.base import Algorithm
from repro.comm.base import Communicator
from repro.compression.base import Compressor
from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.models.base import FederatedModel
from repro.node.codec import decode_update, encode_update
from repro.nn import functional as F
from repro.nn.serialization import state_dict_to_vector, vector_to_state_dict
from repro.nn.tensor import Tensor, no_grad
from repro.engine.client_state import ClientSnapshot
from repro.privacy.dp import DifferentialPrivacy
from repro.telemetry.tracer import NOOP_TRACER
from repro.topology.base import NodeRole, NodeSpec
from repro.utils.logging import get_logger
from repro.utils.seeding import DATA_STREAM, FAULT_STREAM, client_rng

__all__ = ["Node"]

_LOG = get_logger("node")


class Node:
    """One federation participant; all round protocols live here."""

    def __init__(
        self,
        spec: NodeSpec,
        model: FederatedModel,
        algorithm: Algorithm,
        train_dataset: Optional[Dataset] = None,
        test_dataset: Optional[Dataset] = None,
        batch_size: int = 32,
        seed: int = 0,
        dp: Optional[DifferentialPrivacy] = None,
        compressor: Optional[Compressor] = None,
        outer_compressor: Optional[Compressor] = None,
        drop_prob: float = 0.0,
        straggler_prob: float = 0.0,
        straggler_delay: float = 0.0,
        attack: Optional[Any] = None,
        attacker_ids: Any = (),
    ) -> None:
        self.spec = spec
        self.model = model
        self.algorithm = algorithm
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.batch_size = batch_size
        self.dp = dp
        self.compressor = compressor
        self.outer_compressor = outer_compressor if outer_compressor is not None else compressor
        self.drop_prob = float(drop_prob)
        self.straggler_prob = float(straggler_prob)
        self.straggler_delay = float(straggler_delay)
        # byzantine roles: the attack applies only on turns where the
        # *logical client id* is in attacker_ids — pool workers and broker
        # workers flip between honest and byzantine per adopted client
        self.attack = attack
        self.attacker_ids = frozenset(int(i) for i in attacker_ids)
        self.comms: Dict[str, Communicator] = {}
        self.seed = int(seed)
        # random streams are keyed by the *logical client id* — the data
        # shard this node trains — never by node index or worker slot, so
        # draws are identical whether the client runs on a dedicated node
        # or a shared pool worker (non-trainers get a collision-free
        # negative id; their streams are never drawn from)
        self.client_id = spec.shard if spec.shard is not None else -(spec.index + 1)
        self._rng = client_rng(seed, self.client_id, FAULT_STREAM)
        self._loader_rng = client_rng(seed, self.client_id, DATA_STREAM)
        self.global_state: Optional[Dict[str, np.ndarray]] = None
        self.last_train_stats: Dict[str, float] = {}
        # swapped for a recording tracer by the Telemetry callback at setup
        self.tracer = NOOP_TRACER
        self._local_setup_done = False
        # pristine plugin state, captured before any use: what a first-turn
        # pool client starts from (reset() is not equivalent — e.g. DGC's
        # sampling stream survives reset, a fresh instance's does not)
        self._comp_pristine = compressor.export_state() if compressor is not None else None
        self._dp_pristine = dp.export_state() if dp is not None else None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def role(self) -> NodeRole:
        return self.spec.role

    @property
    def num_samples(self) -> int:
        return len(self.train_dataset) if self.train_dataset is not None else 0

    @property
    def is_attacker(self) -> bool:
        """Is the *current* logical client byzantine?  Re-evaluated per pool
        turn, since ``begin_client_turn`` re-keys ``client_id``."""
        return self.attack is not None and self.client_id in self.attacker_ids

    def train_loader(self) -> Any:
        if self.train_dataset is None:
            raise RuntimeError(f"node {self.name} has no training data")
        loader = DataLoader(self.train_dataset, self.batch_size, shuffle=True, rng=self._loader_rng)
        if self.is_attacker and self.attack.corrupts_data:
            from repro.robust.attacks import PoisonedLoader

            # wraps after the batch is drawn: honest clients' shuffle
            # streams advance identically whether or not an attack is set
            return PoisonedLoader(loader, self.attack)
        return loader

    def setup(self) -> None:
        for comm in self.comms.values():
            comm.setup()
        self.setup_local()

    def setup_local(self) -> None:
        """Algorithm/state initialization without touching communicators.

        The asynchronous scheduler runtime moves updates through actor
        futures instead of collective operations, so it sets nodes up
        without binding any communicator group.
        """
        if self._local_setup_done:
            return
        if self.role.aggregates():
            self.algorithm.setup_server(self)
            self.global_state = self.model.state_dict()
        if self.role.trains():
            self.algorithm.setup_client(self)
        self._local_setup_done = True

    # ------------------------------------------------------------------
    # client-pool turns: adopt / hand back a logical client's identity
    # ------------------------------------------------------------------
    def pool_baseline(self) -> Dict[str, Any]:
        """Pristine post-setup state a first-turn client starts from.

        Captured once per pool (all workers are constructed identically from
        the same seeded factories, so any worker's baseline serves them all).
        """
        assert self._local_setup_done, "capture the baseline after setup_local"
        return {
            "algo": self.algorithm.export_client_state(),
            "model": self.model.state_dict(),
        }

    def begin_client_turn(
        self,
        client_id: int,
        snapshot: Optional[ClientSnapshot],
        train_dataset: Optional[Dataset],
        baseline: Dict[str, Any],
    ) -> None:
        """Become logical client ``client_id`` for one turn.

        Every piece of per-client state is overwritten — algorithm attrs,
        persistent model entries, plugin state, random streams, the data
        view — so worker reuse can never leak one client into another, even
        after a failed turn.  ``snapshot=None`` is a client's first turn: it
        starts from the pool ``baseline`` with streams derived fresh from
        ``(run_seed, client_id)``.
        """
        import copy as _copy

        self.client_id = int(client_id)
        self.train_dataset = train_dataset
        keys = self.algorithm.persistent_model_keys(self.model)
        if snapshot is None:
            self._rng = client_rng(self.seed, client_id, FAULT_STREAM)
            self._loader_rng = client_rng(self.seed, client_id, DATA_STREAM)
            self.algorithm.import_client_state(_copy.deepcopy(baseline["algo"]))
            model_state = baseline["model"]
            self.last_train_stats = {}
            if self.compressor is not None:
                self.compressor.reset()
                self.compressor.import_state(_copy.deepcopy(self._comp_pristine))
            if self.dp is not None:
                self.dp.import_state(_copy.deepcopy(self._dp_pristine))
        else:
            if snapshot.fault_rng is None:
                # stream never consumed since derivation (e.g. a fused turn):
                # re-deriving is bit-identical to restoring the initial state
                self._rng = client_rng(self.seed, client_id, FAULT_STREAM)
            else:
                self._rng = np.random.default_rng()
                self._rng.bit_generator.state = snapshot.fault_rng
            self._loader_rng = np.random.default_rng()
            self._loader_rng.bit_generator.state = snapshot.loader_rng
            self.algorithm.import_client_state(snapshot.algo)
            model_state = snapshot.model
            self.last_train_stats = dict(snapshot.stats)
            if self.compressor is not None and snapshot.compressor is not None:
                self.compressor.import_state(snapshot.compressor)
            if self.dp is not None and snapshot.dp is not None:
                self.dp.import_state(snapshot.dp)
        if keys is None:
            restore = model_state
        else:
            restore = {k: model_state[k] for k in keys if k in model_state}
        if restore:
            self.model.load_state_dict(restore, strict=False)

    def fusion_context(self) -> Optional[Dict[str, Any]]:
        """What the fused turn runner (``batch_turns``) needs to mirror this
        node's ``local_update`` as batched tensor ops — or ``None`` when the
        configuration rules exact fusion out (codec/DP plugins transform
        per-client updates; algorithms/models vet themselves via
        ``Algorithm.fusion_safe`` / ``FederatedModel.fused_plan``)."""
        if self.attack is not None:
            # byzantine turns diverge per client; the fused fast path
            # cannot reproduce them, so attacked runs stay strictly per-turn
            return None
        if self.compressor is not None or self.dp is not None:
            return None
        if not self.algorithm.fusion_safe():
            return None
        plan = self.model.fused_plan()
        if plan is None:
            return None
        return {
            "plan": plan,
            "state_keys": list(self.model.state_dict().keys()),
            "persistent_keys": self.algorithm.persistent_model_keys(self.model),
            "algorithm": self.algorithm,
            "seed": self.seed,
            "batch_size": self.batch_size,
        }

    def end_client_turn(self, turns: int = 0) -> ClientSnapshot:
        """Hand the current client's identity back as a snapshot."""
        keys = self.algorithm.persistent_model_keys(self.model)
        if keys is None:
            model_state = self.model.state_dict()
        elif keys:
            full = self.model.state_dict()
            model_state = OrderedDict((k, full[k]) for k in keys)
        else:
            model_state = OrderedDict()
        snapshot = ClientSnapshot(
            algo=self.algorithm.export_client_state(),
            model=model_state,
            fault_rng=self._rng.bit_generator.state,
            loader_rng=self._loader_rng.bit_generator.state,
            compressor=self.compressor.export_state() if self.compressor is not None else None,
            dp=self.dp.export_state() if self.dp is not None else None,
            stats=dict(self.last_train_stats),
            turns=int(turns) + 1,
        )
        self.train_dataset = None  # release the data view with the turn
        return snapshot

    def shutdown(self) -> None:
        for gname, comm in self.comms.items():
            try:
                comm.shutdown()
            except Exception as exc:  # noqa: BLE001 - a comm that failed setup
                # must not block the rest of the fleet's teardown
                _LOG.warning("comm %s shutdown failed on %s: %s", gname, self.name, exc)

    def comm_stats(self) -> Dict[str, Dict[str, float]]:
        return {name: c.stats.snapshot() for name, c in self.comms.items()}

    # ------------------------------------------------------------------
    # round dispatch
    # ------------------------------------------------------------------
    def run_round(self, round_idx: int, pattern: str, participate: bool = True) -> Dict[str, Any]:
        start = time.perf_counter()
        if pattern == "server":
            stats = self._round_server(round_idx, participate)
        elif pattern == "gossip":
            stats = self._round_gossip(round_idx, participate)
        elif pattern == "hierarchical":
            stats = self._round_hierarchical(round_idx, participate)
        else:
            raise ValueError(f"unknown coordination pattern {pattern!r}")
        stats["round_seconds"] = time.perf_counter() - start
        return stats

    # -- centralized: broadcast -> train -> gather -> aggregate ------------
    def _round_server(self, round_idx: int, participate: bool) -> Dict[str, Any]:
        comm = self.comms["inner"]
        if self.role.aggregates():
            assert self.global_state is not None
            payload = self.algorithm.server_payload(self.global_state)
            comm.broadcast_state(payload, src=0)
            entries = comm.gather_states(OrderedDict(), meta={"num_samples": 0}, dst=0)
            assert entries is not None
            decoded = self._decode_entries(entries, self.compressor, self.global_state)
            self.global_state = self.algorithm.aggregate(decoded, self.global_state, round_idx)
            return {"aggregated": len(decoded) - 1}
        return self._trainer_turn(comm, round_idx, participate, self.compressor)

    def _trainer_turn(
        self, comm: Communicator, round_idx: int, participate: bool, compressor: Optional[Compressor]
    ) -> Dict[str, Any]:
        payload = comm.broadcast_state(None, src=0)
        dropped = (not participate) or (self.drop_prob > 0 and self._rng.random() < self.drop_prob)
        if dropped:
            # non-participants still join the collective with a zero-weight
            # placeholder so group operations stay aligned
            comm.gather_states(OrderedDict(), meta={"num_samples": 0}, dst=0)
            return {"participated": False}
        if self.straggler_prob > 0 and self._rng.random() < self.straggler_prob:
            time.sleep(self.straggler_delay)
        wire, meta, stats, _ = self._train_and_encode(payload, round_idx, compressor)
        comm.gather_states(wire, meta=meta, dst=0)
        self.algorithm.on_round_end(self, round_idx)
        self.last_train_stats = stats
        return {"participated": True, **stats}

    def _train_and_encode(
        self,
        payload: Dict[str, np.ndarray],
        round_idx: int,
        compressor: Optional[Compressor],
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any], Dict[str, float], Optional[Dict[str, np.ndarray]]]:
        """The one training pipeline both execution modes share:
        ``on_round_start`` → ``local_train`` → ``compute_update`` →
        DP/compression encoding.  Returns (wire_state, meta, stats,
        reference); keeping sync and async on this single path is what makes
        their plugin semantics identical by construction."""
        tracer = self.tracer
        with tracer.span("node.train", cat="node", client=self.client_id, round=round_idx):
            self.algorithm.on_round_start(self, payload, round_idx)
            stats = self.algorithm.local_train(self, round_idx)
            update, meta = self.algorithm.compute_update(self, round_idx)
        reference = (
            self.algorithm._strip_payload(payload)
            if self.algorithm.uploads_full_state
            else None
        )
        if self.is_attacker and self.attack.corrupts_update:
            # after compute_update, before the codec: poisoned uploads ride
            # compression/DP/delta encoding exactly like honest ones
            update = self.attack.corrupt_update(update, reference)
        with tracer.span("codec.encode", cat="codec", client=self.client_id) as span:
            wire, extra = encode_update(update, compressor, self.dp, reference)
            if tracer.enabled:
                span.set(bytes=int(sum(np.asarray(v).nbytes for v in wire.values())))
        meta = dict(meta)
        meta.update(extra)
        return wire, meta, stats, reference

    def _decode_entries(
        self,
        entries: List[Dict[str, Any]],
        compressor: Optional[Compressor],
        reference: Optional[Dict[str, np.ndarray]] = None,
    ) -> List[Dict[str, Any]]:
        out = []
        with self.tracer.span("codec.decode", cat="codec", node=self.name,
                              entries=len(entries)):
            for e in entries:
                state = decode_update(e["state"], e.get("meta", {}), compressor, reference)
                out.append({"rank": e["rank"], "state": state, "meta": e.get("meta", {})})
        return out

    # -- gossip: train -> exchange with neighbors -> mix --------------------
    def _round_gossip(self, round_idx: int, participate: bool) -> Dict[str, Any]:
        comm = self.comms["inner"]
        self.algorithm.on_round_start(self, self.model.state_dict(), round_idx)
        stats = self.algorithm.local_train(self, round_idx) if participate else {}
        state = self.model.state_dict()
        vec, spec = state_dict_to_vector(state)

        mixing = dict(self.spec.mixing)
        my_rank = self.spec.inner.rank if self.spec.inner else 0
        neighbors = sorted(j for j in mixing if j != my_rank)
        # symmetric exchange: send to every neighbor, then receive from each;
        # the receiver applies *its own* mixing weight for the sender
        for j in neighbors:
            comm.send({"vec": vec, "src": my_rank}, dst=j, tag=round_idx)
        mixed = vec * mixing.get(my_rank, 0.0)
        received = 0
        for _ in neighbors:
            msg = comm.recv(src=-1, tag=round_idx)
            sender = int(msg["src"])
            mixed = mixed + np.asarray(msg["vec"]) * float(mixing[sender])
            received += 1
        new_state = vector_to_state_dict(mixed.astype(np.float32), spec)
        for k, v in state.items():  # integer buffers stay local
            if not np.issubdtype(v.dtype, np.floating):
                new_state[k] = v
        self.model.load_state_dict(new_state, strict=False)
        comm.barrier()
        self.last_train_stats = stats
        return {"participated": participate, "neighbors": received, **stats}

    # -- hierarchical: outer root <-> site heads <-> inner trainers ----------
    def _round_hierarchical(self, round_idx: int, participate: bool) -> Dict[str, Any]:
        if self.role is NodeRole.AGGREGATOR:  # global root
            outer = self.comms["outer"]
            assert self.global_state is not None
            payload = self.algorithm.server_payload(self.global_state)
            outer.broadcast_state(payload, src=0)
            entries = outer.gather_states(OrderedDict(), meta={"num_samples": 0}, dst=0)
            assert entries is not None
            decoded = self._decode_entries(entries, self.outer_compressor, self.global_state)
            self.global_state = self.algorithm.aggregate(decoded, self.global_state, round_idx)
            return {"aggregated_sites": len(decoded) - 1}
        if self.role is NodeRole.RELAY:  # site head
            outer = self.comms["outer"]
            inner = self.comms["inner"]
            payload = outer.broadcast_state(None, src=0)
            inner.broadcast_state(payload, src=0)
            entries = inner.gather_states(OrderedDict(), meta={"num_samples": 0}, dst=0)
            assert entries is not None
            reference = self.algorithm._strip_payload(payload)
            decoded = self._decode_entries(entries, self.compressor, reference)
            site_state = self.algorithm.aggregate(decoded, reference, round_idx)
            site_samples = int(sum(e["meta"].get("num_samples", 0) for e in decoded))
            # compression applies only on the slow cross-facility link
            # (paper §3.4.5), delta-coded against the round's global state
            site_ref = reference if self.algorithm.uploads_full_state else None
            wire, extra = encode_update(site_state, self.outer_compressor, None, site_ref)
            meta = {"num_samples": site_samples, **extra}
            outer.gather_states(wire, meta=meta, dst=0)
            return {"site_samples": site_samples, "site_clients": len(decoded) - 1}
        # trainer inside a site
        return self._trainer_turn(self.comms["inner"], round_idx, participate, self.compressor)

    # ------------------------------------------------------------------
    # scheduler-driven (asynchronous) execution
    # ------------------------------------------------------------------
    def local_update(
        self, payload: Dict[str, np.ndarray], version: int, round_idx: int = 0
    ) -> Dict[str, Any]:
        """One standalone local-training pass for the async scheduler runtime.

        Unlike :meth:`run_round` this performs no communicator operations:
        the scheduler hands in the server payload directly and collects the
        update through the actor future.  ``version`` is the global model
        version the payload was taken at; it rides along so the server can
        compute staleness on arrival.  DP and compression plugins still
        apply — the update goes through the same :meth:`_train_and_encode`
        pipeline as the wire protocol (then decodes locally, since there is
        no wire), so plugin semantics are identical in both execution modes.
        """
        wire, meta, stats, reference = self._train_and_encode(payload, round_idx, self.compressor)
        with self.tracer.span("codec.decode", cat="codec", client=self.client_id):
            state = decode_update(wire, meta, self.compressor, reference)
        for key in ("compressed", "comp_meta", "original_bytes", "spec", "delta_coded"):
            meta.pop(key, None)  # wire-format details; the state is decoded
        self.algorithm.on_round_end(self, round_idx)
        self.last_train_stats = stats
        meta.setdefault("num_samples", int(self.num_samples))
        return {"state": state, "meta": meta, "stats": stats, "version": int(version)}

    # ------------------------------------------------------------------
    # decentralized async: gossip train/exchange/mix without collectives
    # ------------------------------------------------------------------
    def gossip_update(self, payload: Mapping[str, np.ndarray], step: int) -> Dict[str, Any]:
        """One local training step from ``payload`` (this peer's mixed state)
        for the decentralized async runtime.

        No codec here: in gossip the compressor/DP plugins apply to the
        *neighbor exchange* (:meth:`gossip_publish`), not to training — a
        peer's own state never crosses a link on this path.
        """
        with self.tracer.span("node.train", cat="node", client=self.client_id, round=step):
            self.algorithm.on_round_start(self, dict(payload), step)
            stats = self.algorithm.local_train(self, step)
            self.algorithm.on_round_end(self, step)
        self.last_train_stats = stats
        if self.is_attacker and self.attack.corrupts_update:
            # a byzantine peer *becomes* its poisoned state: subsequent
            # publishes and mixes all start from the corrupted model
            corrupted = self.attack.corrupt_update(
                self.model.state_dict(), self.algorithm._strip_payload(dict(payload))
            )
            self.model.load_state_dict(corrupted, strict=False)
        return {
            "state": self.model.state_dict(),
            "stats": stats,
            "num_samples": int(self.num_samples),
        }

    def gossip_publish(self, reference: Optional[Dict[str, np.ndarray]]) -> Dict[str, Any]:
        """Encode this peer's current model state for a neighbor push.

        Delta-coded against ``reference`` — the replica of what this peer
        last published, which every receiver tracks (the CHOCO-SGD scheme)
        — through the peer's compressor and, if configured, DP plugin;
        decoded right back (there is no real wire) so the caller gets
        exactly what receivers would reconstruct, plus the byte count the
        wire form would have cost.
        """
        state = self.model.state_dict()
        with self.tracer.span("codec.encode", cat="codec", client=self.client_id) as span:
            wire, meta = encode_update(state, self.compressor, self.dp, reference)
            nbytes = int(sum(np.asarray(v).nbytes for v in wire.values()))
            span.set(bytes=nbytes)
        with self.tracer.span("codec.decode", cat="codec", client=self.client_id):
            decoded = decode_update(wire, meta, self.compressor, reference)
        return {"state": decoded, "bytes": nbytes, "num_samples": int(self.num_samples)}

    def gossip_adopt(self, state: Mapping[str, np.ndarray]) -> None:
        """Install a mixed state as this peer's model (the async counterpart
        of the synchronous gossip round's post-mix ``load_state_dict``)."""
        self.model.load_state_dict(dict(state), strict=False)

    # ------------------------------------------------------------------
    # hierarchical async: site-head <-> root exchange without collectives
    # ------------------------------------------------------------------
    def adopt_global(self, payload: Mapping[str, np.ndarray]) -> None:
        """Install a freshly dispatched global payload as this head's site
        model (the async counterpart of the head's inner broadcast)."""
        assert self.role.aggregates(), f"node {self.name} does not aggregate"
        self.global_state = self.algorithm._strip_payload(dict(payload))

    def site_upload(
        self, reference: Optional[Dict[str, np.ndarray]], num_samples: int
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Encode this site head's aggregated site model for the slow outer
        link: delta-coded against ``reference`` (the global state the site
        was dispatched from), through the head's ``outer_compressor`` and —
        if one is configured on the head — its DP plugin, exactly like the
        synchronous hierarchical round (paper §3.4.5)."""
        assert self.role.aggregates() and self.global_state is not None
        tracer = self.tracer
        with tracer.span("codec.encode", cat="codec", site_head=self.name) as span:
            wire, extra = encode_update(self.global_state, self.outer_compressor, self.dp, reference)
            if tracer.enabled:
                span.set(bytes=int(sum(np.asarray(v).nbytes for v in wire.values())))
        meta = {"num_samples": int(num_samples), **extra}
        return wire, meta

    def decode_site_upload(
        self,
        wire_state: Dict[str, np.ndarray],
        meta: Dict[str, Any],
        reference: Optional[Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Root-side inverse of :meth:`site_upload` (same outer compressor)."""
        with self.tracer.span("codec.decode", cat="codec", node=self.name):
            return decode_update(wire_state, meta, self.outer_compressor, reference)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, state: Optional[Mapping[str, np.ndarray]] = None, max_batches: Optional[int] = None) -> Tuple[float, float]:
        """(loss, accuracy) of ``state`` (default: the node's current model)
        on the node's test dataset."""
        if self.test_dataset is None:
            raise RuntimeError(f"node {self.name} has no test data")
        restore: Optional[Dict[str, np.ndarray]] = None
        if state is not None:
            restore = self.model.state_dict()
            self.model.load_state_dict(self.algorithm._strip_payload(dict(state)), strict=False)
        was_training = self.model.training
        self.model.eval()
        loader = DataLoader(self.test_dataset, self.batch_size)
        total_loss, total, correct = 0.0, 0, 0
        with no_grad():
            for b, (x, y) in enumerate(loader):
                if max_batches is not None and b >= max_batches:
                    break
                logits = self.model(Tensor(x))
                loss = F.cross_entropy(logits, y)
                total_loss += float(loss.item()) * len(y)
                correct += int((logits.data.argmax(axis=1) == y).sum())
                total += len(y)
        self.model.train(was_training)
        if restore is not None:
            self.model.load_state_dict(restore, strict=False)
        return total_loss / max(total, 1), correct / max(total, 1)
