"""Node: a federation participant (paper §3.3).

A Node owns local model state, data, and communicators; it executes the
Algorithm's lifecycle hooks and the per-round coordination protocol for its
role (trainer / aggregator / relay) under the topology's pattern.
"""

from repro.node.codec import decode_update, encode_update
from repro.node.node import Node

__all__ = ["Node", "encode_update", "decode_update"]
