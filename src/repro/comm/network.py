"""Simulated network model: latency + bandwidth per link class.

The reproduction runs on one machine, so *wall* time cannot show the gap
between an HPC interconnect and a cross-facility WAN.  Communicators instead
charge each transfer ``latency + nbytes / bandwidth`` seconds of *simulated*
time into a :class:`~repro.utils.timer.SimClock` (no sleeping).  Presets
bracket the deployments the paper targets (DGX NVLink-class inner fabric,
datacenter Ethernet, WAN, edge wireless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["NetworkModel", "LINK_PRESETS"]


@dataclass(frozen=True)
class NetworkModel:
    """Transfer-time model for one link class.

    Attributes:
        latency_s: one-way message latency in seconds.
        bandwidth_bps: usable bandwidth in *bytes* per second.
        jitter: fractional stddev applied multiplicatively when an RNG is
            given (0 disables).
    """

    latency_s: float = 1e-4
    bandwidth_bps: float = 1e9
    jitter: float = 0.0
    name: str = "custom"

    def transfer_time(self, nbytes: int, rng: Optional[np.random.Generator] = None) -> float:
        """Seconds to move ``nbytes`` over this link once."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        base = self.latency_s + nbytes / self.bandwidth_bps
        if self.jitter > 0.0 and rng is not None:
            base *= float(max(0.1, 1.0 + self.jitter * rng.standard_normal()))
        return base

    @staticmethod
    def from_preset(name: str) -> "NetworkModel":
        try:
            return LINK_PRESETS[name]
        except KeyError:
            raise KeyError(f"unknown link preset {name!r}; have {sorted(LINK_PRESETS)}") from None


LINK_PRESETS: Dict[str, NetworkModel] = {
    # DGX-class intra-node fabric (NVLink/NVSwitch): ~2us, ~200 GB/s usable
    "hpc_interconnect": NetworkModel(2e-6, 200e9, 0.0, "hpc_interconnect"),
    # datacenter 10GbE: ~50us, ~1.1 GB/s usable
    "datacenter": NetworkModel(5e-5, 1.1e9, 0.0, "datacenter"),
    # cross-facility WAN: ~30ms, ~12 MB/s usable
    "wan": NetworkModel(3e-2, 12e6, 0.0, "wan"),
    # edge wireless: ~20ms, ~3 MB/s usable
    "edge_wireless": NetworkModel(2e-2, 3e6, 0.0, "edge_wireless"),
    # ideal link for unit tests (zero cost)
    "ideal": NetworkModel(0.0, float("inf"), 0.0, "ideal"),
}
