"""Request/response transports under the RPC communicator.

Two interchangeable implementations:

* **inproc** — a process-global address registry; a client's ``call``
  invokes the server handler synchronously.  Zero setup, used in unit tests
  and single-process simulations.
* **tcp** — real localhost sockets with uint32 length-prefixed frames and a
  per-connection server thread; exercises genuine serialization and kernel
  round-trips for deployment-shaped runs.

Both move *frames* (bytes); the message semantics live in
:mod:`repro.comm.wire` and :mod:`repro.comm.rpc`.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "ServerTransport",
    "ClientChannel",
    "InProcServerTransport",
    "InProcChannel",
    "TcpServerTransport",
    "TcpChannel",
    "make_server_transport",
    "make_channel",
    "reset_inproc_registry",
]

Handler = Callable[[bytes], bytes]

_INPROC: Dict[str, "InProcServerTransport"] = {}
_INPROC_LOCK = threading.Lock()


def reset_inproc_registry() -> None:
    """Unbind every in-proc server address (between tests)."""
    with _INPROC_LOCK:
        _INPROC.clear()


class ServerTransport:
    """Accepts frames, returns response frames via a user handler."""

    def start(self, handler: Handler) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    @property
    def address(self) -> str:
        raise NotImplementedError


class ClientChannel:
    """Synchronous request/response channel to one server."""

    def call(self, frame: bytes) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class InProcServerTransport(ServerTransport):
    def __init__(self, address: str) -> None:
        self._address = address
        self._handler: Optional[Handler] = None

    def start(self, handler: Handler) -> None:
        self._handler = handler
        with _INPROC_LOCK:
            if self._address in _INPROC:
                raise OSError(f"in-proc address already bound: {self._address}")
            _INPROC[self._address] = self

    def stop(self) -> None:
        with _INPROC_LOCK:
            if _INPROC.get(self._address) is self:
                del _INPROC[self._address]
        self._handler = None

    def _dispatch(self, frame: bytes) -> bytes:
        handler = self._handler
        if handler is None:
            raise ConnectionError(f"server at {self._address} is not running")
        return handler(frame)

    @property
    def address(self) -> str:
        return self._address


class InProcChannel(ClientChannel):
    def __init__(self, address: str) -> None:
        self._address = address

    def call(self, frame: bytes) -> bytes:
        with _INPROC_LOCK:
            server = _INPROC.get(self._address)
        if server is None:
            raise ConnectionError(f"no in-proc server at {self._address}")
        return server._dispatch(frame)


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(struct.pack("<I", len(frame)) + frame)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = struct.unpack("<I", _read_exact(sock, 4))
    return _read_exact(sock, length)


class TcpServerTransport(ServerTransport):
    """Localhost TCP server; one thread per connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._handler: Optional[Handler] = None

    def start(self, handler: Handler) -> None:
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self.port))
        self.port = self._sock.getsockname()[1]
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True, name="rpc-accept")
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while self._running:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._serve_conn, args=(conn,), daemon=True, name="rpc-conn").start()

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while self._running:
                try:
                    frame = _recv_frame(conn)
                except (ConnectionError, OSError):
                    return
                handler = self._handler
                if handler is None:
                    return
                try:
                    response = handler(frame)
                except Exception:  # handler errors must not kill the server
                    from repro.comm.wire import encode_message

                    response = encode_message("error", {"error": "handler exception"}, {})
                try:
                    _send_frame(conn, response)
                except (ConnectionError, OSError):
                    return

    def stop(self) -> None:
        self._running = False
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        self._handler = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class TcpChannel(ClientChannel):
    """Persistent client connection with one in-flight request at a time."""

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(120.0)

    def call(self, frame: bytes) -> bytes:
        with self._lock:
            _send_frame(self._sock, frame)
            return _recv_frame(self._sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def make_server_transport(kind: str, address: str) -> ServerTransport:
    """Create a server transport: ``kind`` is ``"inproc"`` or ``"tcp"``."""
    if kind == "inproc":
        return InProcServerTransport(address)
    if kind == "tcp":
        host, port = _split_hostport(address)
        return TcpServerTransport(host, port)
    raise ValueError(f"unknown transport kind {kind!r}")


def make_channel(kind: str, address: str) -> ClientChannel:
    if kind == "inproc":
        return InProcChannel(address)
    if kind == "tcp":
        host, port = _split_hostport(address)
        return TcpChannel(host, port)
    raise ValueError(f"unknown transport kind {kind!r}")


def _split_hostport(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host:
        raise ValueError(f"tcp address must be host:port, got {address!r}")
    return host, int(port)
