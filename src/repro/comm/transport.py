"""Request/response transports under the RPC communicator.

Two interchangeable implementations:

* **inproc** — a process-global address registry; a client's ``call``
  invokes the server handler synchronously.  Zero setup, used in unit tests
  and single-process simulations.
* **tcp** — real localhost sockets with uint32 length-prefixed frames and a
  per-connection server thread; exercises genuine serialization and kernel
  round-trips for deployment-shaped runs.

Both move *frames* (bytes); the message semantics live in
:mod:`repro.comm.wire` and :mod:`repro.comm.rpc`.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "TransportError",
    "ServerTransport",
    "ClientChannel",
    "InProcServerTransport",
    "InProcChannel",
    "TcpServerTransport",
    "TcpChannel",
    "make_server_transport",
    "make_channel",
    "reset_inproc_registry",
    "MAX_FRAME_BYTES",
]

Handler = Callable[[bytes], bytes]

#: refuse frames larger than this (a corrupt or hostile length prefix would
#: otherwise make ``_read_exact`` try to buffer gigabytes before failing)
MAX_FRAME_BYTES = 1 << 30


class TransportError(ConnectionError):
    """A typed transport failure: connect retries exhausted, an oversized
    frame, or a peer that vanished mid-call.  Subclasses ``ConnectionError``
    so existing ``except (ConnectionError, OSError)`` sites keep working."""

_INPROC: Dict[str, "InProcServerTransport"] = {}
_INPROC_LOCK = threading.Lock()


def reset_inproc_registry() -> None:
    """Unbind every in-proc server address (between tests)."""
    with _INPROC_LOCK:
        _INPROC.clear()


class ServerTransport:
    """Accepts frames, returns response frames via a user handler."""

    def start(self, handler: Handler) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    @property
    def address(self) -> str:
        raise NotImplementedError


class ClientChannel:
    """Synchronous request/response channel to one server."""

    def call(self, frame: bytes) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class InProcServerTransport(ServerTransport):
    def __init__(self, address: str) -> None:
        self._address = address
        self._handler: Optional[Handler] = None

    def start(self, handler: Handler) -> None:
        self._handler = handler
        with _INPROC_LOCK:
            if self._address in _INPROC:
                raise OSError(f"in-proc address already bound: {self._address}")
            _INPROC[self._address] = self

    def stop(self) -> None:
        with _INPROC_LOCK:
            if _INPROC.get(self._address) is self:
                del _INPROC[self._address]
        self._handler = None

    def _dispatch(self, frame: bytes) -> bytes:
        handler = self._handler
        if handler is None:
            raise ConnectionError(f"server at {self._address} is not running")
        return handler(frame)

    @property
    def address(self) -> str:
        return self._address


class InProcChannel(ClientChannel):
    def __init__(self, address: str) -> None:
        self._address = address

    def call(self, frame: bytes) -> bytes:
        with _INPROC_LOCK:
            server = _INPROC.get(self._address)
        if server is None:
            raise ConnectionError(f"no in-proc server at {self._address}")
        return server._dispatch(frame)


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(struct.pack("<I", len(frame)) + frame)


def _recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    (length,) = struct.unpack("<I", _read_exact(sock, 4))
    if length > max_frame:
        raise TransportError(
            f"incoming frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return _read_exact(sock, length)


class TcpServerTransport(ServerTransport):
    """Localhost TCP server; one thread per connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.max_frame = int(max_frame)
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._handler: Optional[Handler] = None

    def start(self, handler: Handler) -> None:
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((self.host, self.port))
        self.port = self._sock.getsockname()[1]
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True, name="rpc-accept")
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while self._running:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._serve_conn, args=(conn,), daemon=True, name="rpc-conn").start()

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while self._running:
                try:
                    # an oversized frame raises TransportError (a
                    # ConnectionError), dropping just this connection — the
                    # stream offset is unrecoverable past a bad length prefix
                    frame = _recv_frame(conn, self.max_frame)
                except (ConnectionError, OSError):
                    return
                handler = self._handler
                if handler is None:
                    return
                try:
                    response = handler(frame)
                except Exception:  # handler errors must not kill the server
                    from repro.comm.wire import encode_message

                    response = encode_message("error", {"error": "handler exception"}, {})
                try:
                    _send_frame(conn, response)
                except (ConnectionError, OSError):
                    return

    def stop(self) -> None:
        self._running = False
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        self._handler = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class TcpChannel(ClientChannel):
    """Persistent client connection with one in-flight request at a time.

    ``connect_retries`` bounds how many *additional* connection attempts are
    made after the first refusal/timeout, with exponential backoff starting
    at ``connect_backoff`` seconds (capped at 2s per wait); exhaustion
    raises :class:`TransportError` naming the endpoint.  The default of 0
    retries preserves the historical fail-fast behavior; cluster nodes dial
    with a generous budget so they can start before their coordinator.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0,
                 connect_retries: int = 0, connect_backoff: float = 0.1,
                 call_timeout: float = 120.0,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.max_frame = int(max_frame)
        self._lock = threading.Lock()
        self._sock = self._connect(
            connect_timeout, int(connect_retries), float(connect_backoff)
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(call_timeout)

    def _connect(self, timeout: float, retries: int, backoff: float) -> socket.socket:
        attempts = max(1, retries + 1)
        last: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                return socket.create_connection((self.host, self.port), timeout=timeout)
            except OSError as exc:
                last = exc
                if attempt + 1 < attempts:
                    time.sleep(min(backoff * (2 ** attempt), 2.0))
        raise TransportError(
            f"could not connect to {self.host}:{self.port} after "
            f"{attempts} attempt(s): {last}"
        ) from last

    def call(self, frame: bytes) -> bytes:
        with self._lock:
            _send_frame(self._sock, frame)
            return _recv_frame(self._sock, self.max_frame)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def make_server_transport(kind: str, address: str) -> ServerTransport:
    """Create a server transport: ``kind`` is ``"inproc"`` or ``"tcp"``."""
    if kind == "inproc":
        return InProcServerTransport(address)
    if kind == "tcp":
        host, port = _split_hostport(address)
        return TcpServerTransport(host, port)
    raise ValueError(f"unknown transport kind {kind!r}")


def make_channel(kind: str, address: str, **options) -> ClientChannel:
    """Create a client channel; ``options`` reach the TCP constructor
    (``connect_timeout``, ``connect_retries``, ``connect_backoff``, ...)."""
    if kind == "inproc":
        return InProcChannel(address)
    if kind == "tcp":
        host, port = _split_hostport(address)
        return TcpChannel(host, port, **options)
    raise ValueError(f"unknown transport kind {kind!r}")


def _split_hostport(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host:
        raise ValueError(f"tcp address must be host:port, got {address!r}")
    return host, int(port)
