"""Publish/subscribe middleware backends (MQTT and AMQP substitutes).

An in-memory :class:`Broker` (one per broker URL, process-global registry)
provides both messaging models the paper targets for middleware deployments:

* **topics** with fan-out to live subscribers and QoS-0 semantics (late
  subscribers miss messages, full subscriber buffers drop) —
  :class:`MqttCommunicator`;
* **named queues** with acknowledgement and redelivery of un-acked messages —
  :class:`AmqpCommunicator` ("clients push updates to a queue, which is
  subsequently pulled by the aggregator Node").

All payloads travel as wire-format frames so byte accounting matches the RPC
backend's.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.comm.base import Communicator
from repro.comm.network import NetworkModel
from repro.comm.wire import decode_message, encode_message
from repro.utils.timer import SimClock

__all__ = ["Broker", "MqttCommunicator", "AmqpCommunicator", "reset_brokers"]

_BROKERS: Dict[str, "Broker"] = {}
_BROKERS_LOCK = threading.Lock()


def get_broker(url: str) -> "Broker":
    """Return (creating if needed) the broker registered at ``url``."""
    with _BROKERS_LOCK:
        broker = _BROKERS.get(url)
        if broker is None:
            broker = Broker(url)
            _BROKERS[url] = broker
        return broker


def reset_brokers() -> None:
    with _BROKERS_LOCK:
        _BROKERS.clear()


class _Subscription:
    """A subscriber's buffered view of one topic."""

    def __init__(self, topic: str, maxlen: int) -> None:
        self.topic = topic
        self.buffer: Deque[bytes] = deque(maxlen=maxlen)
        self.dropped = 0

    def push(self, frame: bytes) -> None:
        if self.buffer.maxlen is not None and len(self.buffer) == self.buffer.maxlen:
            self.dropped += 1  # QoS 0: overflow drops oldest
        self.buffer.append(frame)


class Broker:
    """In-memory message broker with topics (pub/sub) and queues (ack)."""

    def __init__(self, url: str = "inproc://broker") -> None:
        self.url = url
        self._cond = threading.Condition()
        self._topics: Dict[str, List[_Subscription]] = {}
        self._queues: Dict[str, Deque[Tuple[int, bytes]]] = {}
        self._unacked: Dict[str, Dict[int, bytes]] = {}
        self._delivery_ids = itertools.count(1)
        self.messages_published = 0

    # -- topics (MQTT-style) -------------------------------------------------
    def subscribe(self, topic: str, maxlen: int = 1024) -> _Subscription:
        sub = _Subscription(topic, maxlen)
        with self._cond:
            self._topics.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, sub: _Subscription) -> None:
        with self._cond:
            subs = self._topics.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)

    @staticmethod
    def _matches(pattern: str, topic: str) -> bool:
        """MQTT-style matching: exact, or trailing ``/#`` multi-level wildcard."""
        if pattern == topic:
            return True
        if pattern.endswith("/#"):
            return topic.startswith(pattern[:-1]) or topic == pattern[:-2]
        return False

    def publish(self, topic: str, frame: bytes) -> int:
        """Fan out to current (incl. wildcard) subscribers; returns count reached."""
        with self._cond:
            reached = 0
            for pattern, subs in self._topics.items():
                if self._matches(pattern, topic):
                    for sub in subs:
                        sub.push(frame)
                        reached += 1
            self.messages_published += 1
            self._cond.notify_all()
            return reached

    def poll(self, sub: _Subscription, timeout: float = 30.0) -> bytes:
        """Blocking read of the next buffered frame for ``sub``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not sub.buffer:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"no message on topic {sub.topic!r} within {timeout}s")
                self._cond.wait(timeout=min(remaining, 0.5))
            return sub.buffer.popleft()

    # -- queues (AMQP-style) ----------------------------------------------------
    def declare_queue(self, name: str) -> None:
        with self._cond:
            self._queues.setdefault(name, deque())
            self._unacked.setdefault(name, {})

    def enqueue(self, name: str, frame: bytes) -> None:
        with self._cond:
            self._queues.setdefault(name, deque()).append((next(self._delivery_ids), frame))
            self._unacked.setdefault(name, {})
            self.messages_published += 1
            self._cond.notify_all()

    def consume(self, name: str, timeout: float = 30.0) -> Tuple[int, bytes]:
        """Pop the next message; it stays un-acked until :meth:`ack`."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self._queues.get(name):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(f"queue {name!r} empty after {timeout}s")
                self._cond.wait(timeout=min(remaining, 0.5))
            delivery_id, frame = self._queues[name].popleft()
            self._unacked[name][delivery_id] = frame
            return delivery_id, frame

    def ack(self, name: str, delivery_id: int) -> None:
        with self._cond:
            self._unacked.get(name, {}).pop(delivery_id, None)

    def nack(self, name: str, delivery_id: int) -> None:
        """Redeliver an un-acked message to the front of the queue."""
        with self._cond:
            frame = self._unacked.get(name, {}).pop(delivery_id, None)
            if frame is not None:
                self._queues[name].appendleft((delivery_id, frame))
                self._cond.notify_all()

    def queue_depth(self, name: str) -> int:
        with self._cond:
            return len(self._queues.get(name, ()))


class _PubSubBase(Communicator):
    """Shared group-op plumbing for broker-backed communicators."""

    def __init__(
        self,
        rank: int,
        world_size: int,
        broker_url: str,
        group: str = "fl",
        network: Optional[NetworkModel] = None,
        network_preset: Optional[str] = None,
        sim_clock: Optional[SimClock] = None,
        timeout: float = 120.0,
    ) -> None:
        if network is None and network_preset is not None:
            network = NetworkModel.from_preset(network_preset)
        super().__init__(rank, world_size, network, sim_clock)
        self.broker = get_broker(broker_url)
        self.group = group
        self.timeout = timeout
        # group ops are generation-tagged: a fast client may publish round
        # k+1's update before the aggregator drained round k's, so collection
        # filters by generation and stashes early arrivals.
        self._gather_gen = 0
        self._pending_gathers: Dict[int, List[Dict[str, Any]]] = {}

    def _frame(self, meta: Dict[str, Any], arrays: Mapping[str, np.ndarray], kind: str = "data") -> bytes:
        frame = encode_message(kind, meta, dict(arrays))
        self._account(len(frame), "send", "pubsub")
        return frame

    def _open(self, frame: bytes) -> Tuple[str, Dict[str, Any], Dict[str, np.ndarray]]:
        self.stats.record(received=len(frame))
        return decode_message(frame)

    def allreduce(self, vector: np.ndarray, op: str = "mean") -> np.ndarray:
        """Aggregator-mediated reduction (gather to rank 0, broadcast back)."""
        shape = np.shape(vector)
        flat = np.asarray(vector, dtype=np.float32).ravel()
        entries = self.gather_states({"v": flat}, meta={"op": op}, dst=0)
        if self.rank == 0:
            total = np.sum([e["state"]["v"].astype(np.float64) for e in entries], axis=0)
            if op == "mean":
                total = total / self.world_size
            result = self.broadcast_state({"v": total.astype(np.float32)}, src=0)
        else:
            result = self.broadcast_state(None, src=0)
        return result["v"].reshape(shape)


class MqttCommunicator(_PubSubBase):
    """QoS-0 topic pub/sub communicator.

    Topic layout: ``{group}/bcast`` (model distribution), ``{group}/agg``
    (update collection at the aggregator), ``{group}/barrier``,
    ``{group}/p2p/{dst}/{tag}``.
    """

    def setup(self) -> None:
        # subscriptions must exist before any publish (QoS 0 has no replay),
        # so point-to-point uses a wildcard subscription per rank
        if self.rank != 0:
            self._bcast_sub = self.broker.subscribe(f"{self.group}/bcast")
            self._release_sub = self.broker.subscribe(f"{self.group}/barrier/release")
        else:
            self._agg_sub = self.broker.subscribe(f"{self.group}/agg", maxlen=4096)
            self._barrier_sub = self.broker.subscribe(f"{self.group}/barrier", maxlen=4096)
        self._p2p_sub = self.broker.subscribe(f"{self.group}/p2p/{self.rank}/#", maxlen=4096)
        self._p2p_pending: Dict[int, List[Dict[str, Any]]] = {}

    def broadcast_state(self, state: Optional[Mapping[str, np.ndarray]], src: int = 0) -> Dict[str, np.ndarray]:
        if self.rank == src:
            assert state is not None, "broadcast source must provide a state"
            payload = OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())
            frame = self._frame({"src": src}, payload)
            self.broker.publish(f"{self.group}/bcast", frame)
            return payload
        _, _, arrays = self._open(self.broker.poll(self._bcast_sub, self.timeout))
        return OrderedDict(arrays)

    def gather_states(
        self, state: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None, dst: int = 0
    ) -> Optional[List[Dict[str, Any]]]:
        gen = self._gather_gen
        self._gather_gen += 1
        if self.rank != dst:
            frame = self._frame({"rank": self.rank, "gen": gen, "client_meta": _safe(meta)}, dict(state))
            self.broker.publish(f"{self.group}/agg", frame)
            return None
        entries = [{"rank": self.rank, "state": OrderedDict((k, np.array(v, copy=True)) for k, v in state.items()), "meta": dict(meta or {})}]
        entries.extend(self._pending_gathers.pop(gen, []))
        while len(entries) < self.world_size:
            _, rmeta, arrays = self._open(self.broker.poll(self._agg_sub, self.timeout))
            entry = {"rank": int(rmeta["rank"]), "state": OrderedDict(arrays), "meta": rmeta.get("client_meta", {})}
            msg_gen = int(rmeta.get("gen", gen))
            if msg_gen == gen:
                entries.append(entry)
            else:  # early arrival from a future generation
                self._pending_gathers.setdefault(msg_gen, []).append(entry)
        return sorted(entries, key=lambda e: e["rank"])

    def barrier(self) -> None:
        if self.rank == 0:
            for _ in range(self.world_size - 1):
                self._open(self.broker.poll(self._barrier_sub, self.timeout))
            self.broker.publish(f"{self.group}/barrier/release", self._frame({}, {}, kind="control"))
        else:
            self.broker.publish(f"{self.group}/barrier", self._frame({"rank": self.rank}, {}, kind="control"))
            self._open(self.broker.poll(self._release_sub, self.timeout))

    def send(self, payload: Dict[str, Any], dst: int, tag: int = 0) -> None:
        meta, arrays = _split(payload)
        self.broker.publish(
            f"{self.group}/p2p/{dst}/{tag}",
            self._frame({"payload_meta": _safe(meta), "tag": tag}, arrays),
        )

    def recv(self, src: int, tag: int = 0, timeout: Optional[float] = None) -> Dict[str, Any]:
        pending = self._p2p_pending.get(tag)
        if pending:
            return pending.pop(0)
        while True:
            _, meta, arrays = self._open(self.broker.poll(self._p2p_sub, timeout or self.timeout))
            out: Dict[str, Any] = dict(meta.get("payload_meta", {}))
            out.update(arrays)
            msg_tag = int(meta.get("tag", 0))
            if msg_tag == tag:
                return out
            self._p2p_pending.setdefault(msg_tag, []).append(out)


class AmqpCommunicator(_PubSubBase):
    """Queue-with-ack communicator.

    Queue layout: ``{group}.updates`` (clients -> aggregator),
    ``{group}.model.{rank}`` (aggregator -> each client),
    ``{group}.p2p.{dst}.{tag}``.
    """

    def setup(self) -> None:
        self.broker.declare_queue(f"{self.group}.updates")
        for r in range(self.world_size):
            self.broker.declare_queue(f"{self.group}.model.{r}")
            self.broker.declare_queue(f"{self.group}.barrier.{r}")

    def broadcast_state(self, state: Optional[Mapping[str, np.ndarray]], src: int = 0) -> Dict[str, np.ndarray]:
        if self.rank == src:
            assert state is not None, "broadcast source must provide a state"
            payload = OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())
            for r in range(self.world_size):
                if r == src:
                    continue
                self.broker.enqueue(f"{self.group}.model.{r}", self._frame({"src": src}, payload))
            return payload
        delivery, frame = self.broker.consume(f"{self.group}.model.{self.rank}", self.timeout)
        _, _, arrays = self._open(frame)
        self.broker.ack(f"{self.group}.model.{self.rank}", delivery)
        return OrderedDict(arrays)

    def gather_states(
        self, state: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None, dst: int = 0
    ) -> Optional[List[Dict[str, Any]]]:
        gen = self._gather_gen
        self._gather_gen += 1
        if self.rank != dst:
            self.broker.enqueue(
                f"{self.group}.updates",
                self._frame({"rank": self.rank, "gen": gen, "client_meta": _safe(meta)}, dict(state)),
            )
            return None
        entries = [{"rank": self.rank, "state": OrderedDict((k, np.array(v, copy=True)) for k, v in state.items()), "meta": dict(meta or {})}]
        entries.extend(self._pending_gathers.pop(gen, []))
        while len(entries) < self.world_size:
            delivery, frame = self.broker.consume(f"{self.group}.updates", self.timeout)
            _, rmeta, arrays = self._open(frame)
            self.broker.ack(f"{self.group}.updates", delivery)
            entry = {"rank": int(rmeta["rank"]), "state": OrderedDict(arrays), "meta": rmeta.get("client_meta", {})}
            msg_gen = int(rmeta.get("gen", gen))
            if msg_gen == gen:
                entries.append(entry)
            else:
                self._pending_gathers.setdefault(msg_gen, []).append(entry)
        return sorted(entries, key=lambda e: e["rank"])

    def barrier(self) -> None:
        if self.rank == 0:
            for _ in range(self.world_size - 1):
                delivery, _frame = self.broker.consume(f"{self.group}.barrier.0", self.timeout)
                self.broker.ack(f"{self.group}.barrier.0", delivery)
            for r in range(1, self.world_size):
                self.broker.enqueue(f"{self.group}.barrier.{r}", self._frame({}, {}, kind="control"))
        else:
            self.broker.enqueue(f"{self.group}.barrier.0", self._frame({"rank": self.rank}, {}, kind="control"))
            delivery, _frame = self.broker.consume(f"{self.group}.barrier.{self.rank}", self.timeout)
            self.broker.ack(f"{self.group}.barrier.{self.rank}", delivery)

    def send(self, payload: Dict[str, Any], dst: int, tag: int = 0) -> None:
        meta, arrays = _split(payload)
        name = f"{self.group}.p2p.{dst}.{tag}"
        self.broker.declare_queue(name)
        self.broker.enqueue(name, self._frame({"payload_meta": _safe(meta)}, arrays))

    def recv(self, src: int, tag: int = 0, timeout: Optional[float] = None) -> Dict[str, Any]:
        name = f"{self.group}.p2p.{self.rank}.{tag}"
        self.broker.declare_queue(name)
        delivery, frame = self.broker.consume(name, timeout or self.timeout)
        _, meta, arrays = self._open(frame)
        self.broker.ack(name, delivery)
        out: Dict[str, Any] = dict(meta.get("payload_meta", {}))
        out.update(arrays)
        return out


def _split(payload: Mapping[str, Any]) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    meta: Dict[str, Any] = {}
    arrays: Dict[str, np.ndarray] = {}
    for k, v in payload.items():
        if isinstance(v, np.ndarray):
            arrays[k] = v
        else:
            meta[k] = v
    return meta, arrays


def _safe(meta: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for k, v in (meta or {}).items():
        if isinstance(v, (np.integer,)):
            out[k] = int(v)
        elif isinstance(v, (np.floating,)):
            out[k] = float(v)
        else:
            out[k] = v
    return out
