"""Binary wire format: the protobuf substitute.

Frame layout (little-endian)::

    MAGIC  b"OFD1"                      4 bytes
    kind   uint8                        message kind code
    mlen   uint32                       metadata length
    nar    uint16                       number of array payloads
    meta   mlen bytes                   JSON-encoded metadata (no arrays)
    per array:
        klen  uint16  key bytes length
        key   klen bytes (utf8)
        dt    uint8   dtype code
        nd    uint8   ndim
        shape nd * uint32
        blen  uint64  raw buffer length
        buf   blen bytes (C-contiguous array data)

Arrays travel as raw buffers (no pickling) so serialization cost scales with
payload size the way a real protobuf/gRPC deployment's does, and the decoder
never executes arbitrary code.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Mapping, Tuple

import numpy as np

__all__ = ["encode_message", "decode_message", "WireError", "MESSAGE_KINDS"]

MAGIC = b"OFD1"

MESSAGE_KINDS = {
    "data": 0,
    "control": 1,
    "request": 2,
    "response": 3,
    "ack": 4,
    "error": 5,
}
_KIND_NAMES = {v: k for k, v in MESSAGE_KINDS.items()}

_DTYPES = [
    np.dtype("float32"),
    np.dtype("float64"),
    np.dtype("int8"),
    np.dtype("int16"),
    np.dtype("int32"),
    np.dtype("int64"),
    np.dtype("uint8"),
    np.dtype("uint16"),
    np.dtype("uint32"),
    np.dtype("uint64"),
    np.dtype("bool"),
    np.dtype("complex64"),
    # appended (never reordered — codes are wire format): half precision is
    # the natural pairing with the compression codecs, complex128 completes
    # the complex family
    np.dtype("float16"),
    np.dtype("complex128"),
]
_DTYPE_CODE = {dt: i for i, dt in enumerate(_DTYPES)}


class WireError(ValueError):
    """Raised on malformed frames."""


def encode_message(kind: str, meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize one message to a byte frame."""
    if kind not in MESSAGE_KINDS:
        raise WireError(f"unknown message kind {kind!r}")
    meta_bytes = json.dumps(dict(meta), separators=(",", ":")).encode("utf8")
    parts = [MAGIC, struct.pack("<BIH", MESSAGE_KINDS[kind], len(meta_bytes), len(arrays)), meta_bytes]
    for key, arr in arrays.items():
        arr = np.asarray(arr)
        if arr.ndim > 0:  # ascontiguousarray silently promotes 0-d to 1-d
            arr = np.ascontiguousarray(arr)
        if arr.dtype not in _DTYPE_CODE:
            raise WireError(f"unsupported array dtype {arr.dtype} for key {key!r}")
        kb = key.encode("utf8")
        buf = arr.tobytes()
        parts.append(struct.pack("<H", len(kb)))
        parts.append(kb)
        parts.append(struct.pack("<BB", _DTYPE_CODE[arr.dtype], arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        parts.append(struct.pack("<Q", len(buf)))
        parts.append(buf)
    return b"".join(parts)


def decode_message(frame: bytes) -> Tuple[str, Dict[str, Any], Dict[str, np.ndarray]]:
    """Inverse of :func:`encode_message` -> (kind, meta, arrays)."""
    if frame[:4] != MAGIC:
        raise WireError("bad magic")
    kind_code, mlen, nar = struct.unpack_from("<BIH", frame, 4)
    if kind_code not in _KIND_NAMES:
        raise WireError(f"unknown kind code {kind_code}")
    offset = 4 + struct.calcsize("<BIH")
    meta = json.loads(frame[offset : offset + mlen].decode("utf8"))
    offset += mlen
    arrays: Dict[str, np.ndarray] = {}
    for _ in range(nar):
        (klen,) = struct.unpack_from("<H", frame, offset)
        offset += 2
        key = frame[offset : offset + klen].decode("utf8")
        offset += klen
        dt_code, nd = struct.unpack_from("<BB", frame, offset)
        offset += 2
        shape = struct.unpack_from(f"<{nd}I", frame, offset)
        offset += 4 * nd
        (blen,) = struct.unpack_from("<Q", frame, offset)
        offset += 8
        if dt_code >= len(_DTYPES):
            raise WireError(f"array {key!r}: unknown dtype code {dt_code}")
        dtype = _DTYPES[dt_code]
        expected = int(np.prod(shape)) * dtype.itemsize  # np.prod(()) == 1 covers 0-d
        if blen != expected:
            raise WireError(f"array {key!r}: buffer {blen}B but shape {shape} implies {expected}B")
        arrays[key] = np.frombuffer(frame[offset : offset + blen], dtype=dtype).reshape(shape).copy()
        offset += blen
    if offset != len(frame):
        raise WireError(f"{len(frame) - offset} trailing bytes")
    return _KIND_NAMES[kind_code], meta, arrays
