"""Build communicators from config dicts (the YAML-facing factory).

A comm config selects a backend and its parameters::

    {"backend": "torchdist", "master_port": 29500, "network_preset": "hpc_interconnect"}
    {"backend": "grpc", "master_port": 50051, "transport": "inproc", "network_preset": "wan"}
    {"backend": "mqtt", "broker_url": "mqtt://broker", "group": "fl"}
    {"backend": "amqp", "broker_url": "amqp://broker", "group": "fl"}

``_target_``-style configs (as in the paper's Fig. 2) are also accepted and
routed through :func:`repro.config.instantiate`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.comm.base import Communicator
from repro.comm.pubsub import AmqpCommunicator, MqttCommunicator
from repro.comm.rpc import GrpcCommunicator
from repro.comm.torchdist import TorchDistCommunicator
from repro.utils.timer import SimClock

__all__ = ["build_communicator", "BACKENDS"]

BACKENDS = {
    "torchdist": TorchDistCommunicator,
    "mpi": TorchDistCommunicator,  # the paper's MPI path maps to collectives
    "nccl": TorchDistCommunicator,
    "gloo": TorchDistCommunicator,
    "grpc": GrpcCommunicator,
    "mqtt": MqttCommunicator,
    "amqp": AmqpCommunicator,
}


def build_communicator(
    config: Dict[str, Any],
    rank: int,
    world_size: int,
    sim_clock: Optional[SimClock] = None,
) -> Communicator:
    """Instantiate the communicator described by ``config`` for one node."""
    cfg = dict(config or {})
    if "_target_" in cfg:
        from repro.config.instantiate import instantiate

        return instantiate(cfg, rank=rank, world_size=world_size, sim_clock=sim_clock)
    backend = str(cfg.pop("backend", "torchdist")).lower()
    if backend not in BACKENDS:
        raise ValueError(f"unknown communicator backend {backend!r}; have {sorted(BACKENDS)}")
    cls = BACKENDS[backend]
    cfg.pop("name", None)
    # torchdist uses group_name; pub/sub uses group — drop the one that
    # doesn't apply so topology-level group tagging works for any backend
    if cls is TorchDistCommunicator:
        cfg.pop("group", None)
        cfg.pop("transport", None)
        cfg.pop("broker_url", None)
    elif cls is GrpcCommunicator:
        cfg.pop("group", None)
        cfg.pop("group_name", None)
        cfg.pop("broker_url", None)
        cfg.pop("backend_name", None)
    else:
        cfg.pop("group_name", None)
        cfg.pop("master_port", None)
        cfg.pop("master_addr", None)
        cfg.pop("transport", None)
        cfg.setdefault("broker_url", "inproc://broker")
    return cls(rank=rank, world_size=world_size, sim_clock=sim_clock, **cfg)
