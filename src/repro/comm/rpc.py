"""``GrpcCommunicator`` — client/server RPC backend (the gRPC substitute).

Rank 0 hosts an :class:`RpcServer`; other ranks connect with channels and
drive everything through typed request/response messages on the binary wire
format (:mod:`repro.comm.wire`).  Exactly the paper's description: "a server
that receives, aggregates, and broadcasts updates sent by clients over
heterogeneous networks".

Group-primitive mapping:

* ``broadcast_state``  — server bumps a model version; clients long-poll
  ``pull_state`` until the version appears;
* ``gather_states``    — clients ``push_state``; the server collects
  ``world_size`` entries per generation;
* ``allreduce``        — clients post vectors; the server reduces and every
  caller's request returns the result (server-mediated reduction);
* ``barrier``/``send``/``recv`` — generation counters and mailboxes.

Transport is pluggable (``inproc`` queues or real ``tcp`` sockets).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.comm.base import Communicator
from repro.comm.network import NetworkModel
from repro.comm.transport import ClientChannel, make_channel, make_server_transport
from repro.comm.wire import decode_message, encode_message
from repro.utils.timer import SimClock

__all__ = ["GrpcCommunicator", "RpcServer", "RpcError"]

_DEFAULT_TIMEOUT = 120.0


class RpcError(RuntimeError):
    """Raised when the server reports an error response."""


def _json_safe(meta: Mapping[str, Any]) -> Dict[str, Any]:
    """Coerce numpy scalars so metadata survives JSON encoding."""
    out: Dict[str, Any] = {}
    for k, v in meta.items():
        if isinstance(v, (np.integer,)):
            out[k] = int(v)
        elif isinstance(v, (np.floating,)):
            out[k] = float(v)
        elif isinstance(v, np.ndarray):
            raise TypeError(f"meta entry {k!r} is an array; put arrays in the payload instead")
        elif isinstance(v, dict):
            out[k] = _json_safe(v)
        else:
            out[k] = v
    return out


class _ServerState:
    """All coordination state behind the RPC server (condition-guarded)."""

    def __init__(self, world_size: int) -> None:
        self.world_size = world_size
        self.cond = threading.Condition()
        self.model_version = 0
        # keep a short version history so a slow client asking for version N
        # still gets N even if the server has already published N+1
        self.model_states: Dict[int, Dict[str, np.ndarray]] = {}
        self.history = 8
        self.pushes: Dict[int, List[Dict[str, Any]]] = {}
        self.reduce_in: Dict[Tuple[int, str], List[np.ndarray]] = {}
        self.reduce_out: Dict[Tuple[int, str], np.ndarray] = {}
        self.barrier_in: Dict[int, int] = {}
        self.mailboxes: Dict[Tuple[int, int], List[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]] = {}
        self.stopped = False

    # each method below is invoked either from an RPC handler thread (remote
    # client) or directly by rank 0's communicator (the server-local node).

    def set_state(self, state: Dict[str, np.ndarray]) -> int:
        with self.cond:
            self.model_version += 1
            self.model_states[self.model_version] = state
            stale = self.model_version - self.history
            if stale in self.model_states:
                del self.model_states[stale]
            self.cond.notify_all()
            return self.model_version

    def wait_state(self, want_version: int, timeout: float) -> Tuple[int, Dict[str, np.ndarray]]:
        deadline = time.monotonic() + timeout
        with self.cond:
            while self.model_version < want_version:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.stopped:
                    raise TimeoutError(f"pull_state: version {want_version} never published")
                self.cond.wait(timeout=min(remaining, 1.0))
            if want_version in self.model_states:
                return want_version, self.model_states[want_version]
            # requested version aged out of history; hand back the newest
            return self.model_version, self.model_states[self.model_version]

    def push(self, gen: int, entry: Dict[str, Any]) -> None:
        with self.cond:
            self.pushes.setdefault(gen, []).append(entry)
            self.cond.notify_all()

    def wait_pushes(self, gen: int, count: int, timeout: float) -> List[Dict[str, Any]]:
        deadline = time.monotonic() + timeout
        with self.cond:
            while len(self.pushes.get(gen, [])) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.stopped:
                    have = len(self.pushes.get(gen, []))
                    raise TimeoutError(f"gather: only {have}/{count} pushes for gen {gen}")
                self.cond.wait(timeout=min(remaining, 1.0))
            return self.pushes.pop(gen)

    def reduce(self, gen: int, op: str, vector: np.ndarray, timeout: float) -> np.ndarray:
        key = (gen, op)
        deadline = time.monotonic() + timeout
        with self.cond:
            bucket = self.reduce_in.setdefault(key, [])
            bucket.append(np.asarray(vector, dtype=np.float64))
            if len(bucket) == self.world_size:
                total = np.sum(bucket, axis=0)
                if op == "mean":
                    total = total / self.world_size
                self.reduce_out[key] = total.astype(np.float32)
                del self.reduce_in[key]
                self.cond.notify_all()
            while key not in self.reduce_out:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.stopped:
                    raise TimeoutError(f"allreduce gen {gen}: incomplete")
                self.cond.wait(timeout=min(remaining, 1.0))
            return self.reduce_out[key]

    def barrier(self, gen: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self.cond:
            self.barrier_in[gen] = self.barrier_in.get(gen, 0) + 1
            self.cond.notify_all()
            while self.barrier_in.get(gen, 0) < self.world_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.stopped:
                    raise TimeoutError(f"barrier gen {gen}: incomplete")
                self.cond.wait(timeout=min(remaining, 1.0))

    def mailbox_put(self, dst: int, tag: int, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
        with self.cond:
            self.mailboxes.setdefault((dst, tag), []).append((meta, arrays))
            self.cond.notify_all()

    def mailbox_get(self, rank: int, tag: int, timeout: float) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        deadline = time.monotonic() + timeout
        with self.cond:
            while not self.mailboxes.get((rank, tag)):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.stopped:
                    raise TimeoutError(f"recv: nothing for rank {rank} tag {tag}")
                self.cond.wait(timeout=min(remaining, 1.0))
            return self.mailboxes[(rank, tag)].pop(0)

    def stop(self) -> None:
        with self.cond:
            self.stopped = True
            self.cond.notify_all()


class RpcServer:
    """Wire-format RPC endpoint dispatching to a :class:`_ServerState`."""

    def __init__(self, state: _ServerState, transport_kind: str, address: str) -> None:
        self.state = state
        self.transport = make_server_transport(transport_kind, address)
        self.bytes_received = 0

    def start(self) -> None:
        self.transport.start(self._handle)

    def stop(self) -> None:
        self.state.stop()
        self.transport.stop()

    @property
    def address(self) -> str:
        return self.transport.address

    def _handle(self, frame: bytes) -> bytes:
        self.bytes_received += len(frame)
        kind, meta, arrays = decode_message(frame)
        method = meta.get("method", "")
        try:
            if method == "pull_state":
                version, state = self.state.wait_state(int(meta["want_version"]), float(meta.get("timeout", _DEFAULT_TIMEOUT)))
                return encode_message("response", {"version": version}, state)
            if method == "push_state":
                entry = {"rank": int(meta["rank"]), "state": arrays, "meta": meta.get("client_meta", {})}
                self.state.push(int(meta["gen"]), entry)
                return encode_message("ack", {}, {})
            if method == "reduce":
                result = self.state.reduce(int(meta["gen"]), str(meta["op"]), arrays["v"], float(meta.get("timeout", _DEFAULT_TIMEOUT)))
                return encode_message("response", {}, {"v": result})
            if method == "barrier":
                self.state.barrier(int(meta["gen"]), float(meta.get("timeout", _DEFAULT_TIMEOUT)))
                return encode_message("ack", {}, {})
            if method == "p2p_put":
                self.state.mailbox_put(int(meta["dst"]), int(meta["tag"]), meta.get("payload_meta", {}), arrays)
                return encode_message("ack", {}, {})
            if method == "p2p_get":
                payload_meta, payload_arrays = self.state.mailbox_get(
                    int(meta["rank"]), int(meta["tag"]), float(meta.get("timeout", _DEFAULT_TIMEOUT))
                )
                return encode_message("response", {"payload_meta": payload_meta}, payload_arrays)
            return encode_message("error", {"error": f"unknown method {method!r}"}, {})
        except TimeoutError as exc:
            return encode_message("error", {"error": str(exc)}, {})


class GrpcCommunicator(Communicator):
    """Client/server communicator; rank 0 hosts the server."""

    def __init__(
        self,
        rank: int,
        world_size: int,
        master_addr: str = "127.0.0.1",
        master_port: int = 50051,
        transport: str = "inproc",
        network: Optional[NetworkModel] = None,
        network_preset: Optional[str] = None,
        sim_clock: Optional[SimClock] = None,
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> None:
        if network is None and network_preset is not None:
            network = NetworkModel.from_preset(network_preset)
        super().__init__(rank, world_size, network, sim_clock)
        self.transport_kind = transport
        self.timeout = timeout
        self._address = f"{master_addr}:{master_port}"
        if transport == "inproc":
            self._address = f"grpc-inproc://{master_addr}:{master_port}"
        self._server: Optional[RpcServer] = None
        self._channel: Optional[ClientChannel] = None
        self._seen_version = 0
        self._gather_gen = 0
        self._reduce_gen = 0
        self._barrier_gen = 0
        if rank == 0:
            self._state = _ServerState(world_size)
            self._server = RpcServer(self._state, transport, self._address)

    # -- lifecycle ---------------------------------------------------------
    def setup(self) -> None:
        if self._server is not None:
            self._server.start()
            if self.transport_kind == "tcp":
                # rebind address with the OS-assigned port for clients to learn
                self._address = self._server.address

    def shutdown(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        if self._server is not None:
            self._server.stop()

    @property
    def server_address(self) -> str:
        return self._address

    def _get_channel(self) -> ClientChannel:
        if self._channel is None:
            deadline = time.monotonic() + 10.0
            last_exc: Optional[Exception] = None
            while time.monotonic() < deadline:
                try:
                    self._channel = make_channel(self.transport_kind, self._address.replace("grpc-inproc://", "grpc-inproc://") if self.transport_kind == "inproc" else self._address)
                    return self._channel
                except (ConnectionError, OSError) as exc:
                    last_exc = exc
                    time.sleep(0.05)
            raise ConnectionError(f"cannot reach RPC server at {self._address}: {last_exc}")
        return self._channel

    def _call(self, method: str, meta: Dict[str, Any], arrays: Mapping[str, np.ndarray]) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta = dict(meta)
        meta["method"] = method
        meta.setdefault("timeout", self.timeout)
        frame = encode_message("request", _json_safe(meta), dict(arrays))
        start = time.perf_counter()
        response = self._get_channel().call(frame)
        wall = time.perf_counter() - start
        sim = self.network.transfer_time(len(frame)) + self.network.transfer_time(len(response))
        self.sim_clock.advance(sim, "rpc")
        self.stats.record(sent=len(frame), received=len(response), wall=wall, sim=sim)
        kind, rmeta, rarrays = decode_message(response)
        if kind == "error":
            raise RpcError(rmeta.get("error", "unknown RPC error"))
        return rmeta, rarrays

    # -- group primitives -----------------------------------------------------
    def broadcast_state(self, state: Optional[Mapping[str, np.ndarray]], src: int = 0) -> Dict[str, np.ndarray]:
        if src != 0:
            raise ValueError("GrpcCommunicator broadcasts originate at the server (rank 0)")
        if self.rank == 0:
            if state is None:
                raise ValueError("server must provide the state to broadcast")
            payload = OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())
            self._seen_version = self._state.set_state(payload)
            # server "sends" the state world_size - 1 times
            nbytes = self._state_nbytes(payload)
            for _ in range(self.world_size - 1):
                self._account(nbytes, "send", "rpc")
            return payload
        rmeta, arrays = self._call("pull_state", {"want_version": self._seen_version + 1}, {})
        self._seen_version = int(rmeta["version"])
        return OrderedDict(arrays)

    def gather_states(
        self, state: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None, dst: int = 0
    ) -> Optional[List[Dict[str, Any]]]:
        if dst != 0:
            raise ValueError("GrpcCommunicator gathers at the server (rank 0)")
        gen = self._gather_gen
        self._gather_gen += 1
        if self.rank == 0:
            own = {
                "rank": 0,
                "state": OrderedDict((k, np.array(v, copy=True)) for k, v in state.items()),
                "meta": dict(meta or {}),
            }
            self._state.push(gen, own)
            entries = self._state.wait_pushes(gen, self.world_size, self.timeout)
            received = sum(self._state_nbytes(e["state"]) for e in entries if e["rank"] != 0)
            self.stats.record(received=received)
            return sorted(entries, key=lambda e: e["rank"])
        self._call(
            "push_state",
            {"rank": self.rank, "gen": gen, "client_meta": _json_safe(meta or {})},
            dict(state),
        )
        return None

    def allreduce(self, vector: np.ndarray, op: str = "mean") -> np.ndarray:
        gen = self._reduce_gen
        self._reduce_gen += 1
        shape = np.shape(vector)
        flat = np.asarray(vector, dtype=np.float32).ravel()
        if self.rank == 0:
            result = self._state.reduce(gen, op, flat, self.timeout)
            return np.asarray(result, dtype=np.float32).reshape(shape)
        _, arrays = self._call("reduce", {"gen": gen, "op": op}, {"v": flat})
        return arrays["v"].reshape(shape)

    def barrier(self) -> None:
        gen = self._barrier_gen
        self._barrier_gen += 1
        if self.rank == 0:
            self._state.barrier(gen, self.timeout)
        else:
            self._call("barrier", {"gen": gen}, {})

    # -- point-to-point (relayed through the server) ------------------------------
    def send(self, payload: Dict[str, Any], dst: int, tag: int = 0) -> None:
        meta, arrays = _split_payload(payload)
        if self.rank == 0:
            self._state.mailbox_put(dst, tag, meta, arrays)
            self._account(self._state_nbytes(arrays), "send", "rpc")
        else:
            self._call("p2p_put", {"dst": dst, "tag": tag, "payload_meta": _json_safe(meta)}, arrays)

    def recv(self, src: int, tag: int = 0, timeout: Optional[float] = None) -> Dict[str, Any]:
        wait = timeout if timeout is not None else self.timeout
        if self.rank == 0:
            meta, arrays = self._state.mailbox_get(0, tag, wait)
        else:
            rmeta, arrays = self._call("p2p_get", {"rank": self.rank, "tag": tag, "timeout": wait}, {})
            meta = rmeta.get("payload_meta", {})
        merged: Dict[str, Any] = dict(meta)
        merged.update(arrays)
        return merged


def _split_payload(payload: Mapping[str, Any]) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Separate a mixed payload into JSON-safe metadata and array parts."""
    meta: Dict[str, Any] = {}
    arrays: Dict[str, np.ndarray] = {}
    for k, v in payload.items():
        if isinstance(v, np.ndarray):
            arrays[k] = v
        else:
            meta[k] = v
    return meta, arrays
