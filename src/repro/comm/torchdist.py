"""``TorchDistCommunicator`` — the paper's MPI-collectives backend.

Mirrors ``torch.distributed`` usage: every participant constructs a
communicator with the same ``master_addr:master_port`` (the rendezvous key)
and the same ``world_size``; the first arrival creates the shared
:class:`CollectiveGroup` and the rest join it.  All group primitives map to
genuine collective algorithms (ring all-reduce etc.), making this the fast
"inner" protocol of hierarchical deployments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.comm.base import Communicator
from repro.comm.collectives import CollectiveGroup, _sizeof
from repro.comm.network import NetworkModel
from repro.nn.serialization import state_dict_to_vector, vector_to_state_dict
from repro.utils.timer import SimClock

__all__ = ["TorchDistCommunicator", "reset_rendezvous"]

_RENDEZVOUS: Dict[Tuple[str, int, str], CollectiveGroup] = {}
_RENDEZVOUS_LOCK = threading.Lock()


def reset_rendezvous() -> None:
    """Drop all rendezvous groups (between tests/experiments)."""
    with _RENDEZVOUS_LOCK:
        _RENDEZVOUS.clear()


class TorchDistCommunicator(Communicator):
    """Collective communicator over an in-process rendezvous group."""

    def __init__(
        self,
        rank: int,
        world_size: int,
        master_addr: str = "127.0.0.1",
        master_port: int = 29500,
        group_name: str = "default",
        backend: str = "gloo",
        network: Optional[NetworkModel] = None,
        network_preset: Optional[str] = None,
        sim_clock: Optional[SimClock] = None,
    ) -> None:
        if network is None and network_preset is not None:
            network = NetworkModel.from_preset(network_preset)
        super().__init__(rank, world_size, network, sim_clock)
        self.backend = backend
        key = (master_addr, int(master_port), group_name)
        with _RENDEZVOUS_LOCK:
            group = _RENDEZVOUS.get(key)
            if group is None:
                group = CollectiveGroup(world_size, self.network, self.sim_clock)
                _RENDEZVOUS[key] = group
            elif group.world_size != world_size:
                raise ValueError(
                    f"rendezvous {key} already exists with world_size={group.world_size}, "
                    f"got {world_size}"
                )
        self.group = group
        self._rendezvous_key = key
        # point-to-point mailboxes shared through the group object
        if not hasattr(group, "_p2p"):
            with _RENDEZVOUS_LOCK:
                if not hasattr(group, "_p2p"):
                    group._p2p = _P2PMailboxes(world_size)  # type: ignore[attr-defined]

    # -- group primitives ------------------------------------------------------
    def _sim_cost(self, kind: str, nbytes: int) -> float:
        """This communicator's share of an op's simulated critical path.

        The group charges the global clock once per op; per-communicator
        stats mirror the same formulas so `comm_summary` can attribute
        simulated seconds to link classes.
        """
        import math

        n = self.world_size
        if n <= 1 or nbytes <= 0:
            return 0.0
        if kind == "allreduce":
            chunk = int(math.ceil(nbytes / n))
            return 2 * (n - 1) * self.network.transfer_time(chunk)
        if kind == "broadcast":
            return math.ceil(math.log2(n)) * self.network.transfer_time(nbytes)
        if kind in ("gather", "allgather"):
            return (n - 1) * self.network.transfer_time(nbytes)
        return self.network.transfer_time(nbytes)

    def broadcast_state(self, state: Optional[Mapping[str, np.ndarray]], src: int = 0) -> Dict[str, np.ndarray]:
        if self.rank == src and state is None:
            raise ValueError("broadcast source must provide a state")
        payload = None
        if self.rank == src:
            payload = OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())  # type: ignore[union-attr]
        before = self.group.bytes_sent_by(self.rank)
        result = self.group.broadcast(self.rank, payload, src)
        nbytes = self._state_nbytes(result)
        self.stats.record(
            sent=self.group.bytes_sent_by(self.rank) - before,
            sim=self._sim_cost("broadcast", nbytes) if self.rank == src else 0.0,
        )
        return OrderedDict((k, np.array(v, copy=True)) for k, v in result.items())

    def gather_states(
        self, state: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None, dst: int = 0
    ) -> Optional[List[Dict[str, Any]]]:
        entry = {
            "rank": self.rank,
            "state": OrderedDict((k, np.array(v, copy=True)) for k, v in state.items()),
            "meta": dict(meta or {}),
        }
        before = self.group.bytes_sent_by(self.rank)
        gathered = self.group.gather(self.rank, entry, dst)
        self.stats.record(
            sent=self.group.bytes_sent_by(self.rank) - before,
            sim=self._sim_cost("gather", self._state_nbytes(state)) if self.rank != dst else 0.0,
        )
        if gathered is None:
            return None
        return sorted(gathered, key=lambda e: e["rank"])

    def allreduce(self, vector: np.ndarray, op: str = "mean") -> np.ndarray:
        before = self.group.bytes_sent_by(self.rank)
        out = self.group.allreduce(self.rank, vector, op)
        self.stats.record(
            sent=self.group.bytes_sent_by(self.rank) - before,
            sim=self._sim_cost("allreduce", int(np.asarray(vector).nbytes)) if self.rank == 0 else 0.0,
        )
        return out

    def allreduce_state(self, state: Mapping[str, np.ndarray], op: str = "mean") -> Dict[str, np.ndarray]:
        """Flatten -> ring all-reduce -> unflatten (whole-model aggregation)."""
        vec, spec = state_dict_to_vector(state)
        reduced = self.allreduce(vec, op)
        out = vector_to_state_dict(reduced, spec)
        for k, v in state.items():  # carry integer buffers through untouched
            if not np.issubdtype(np.asarray(v).dtype, np.floating):
                out[k] = np.array(v, copy=True)
        return out

    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        before = self.group.bytes_sent_by(self.rank)
        out = self.group.allgather(self.rank, array)
        self.stats.record(sent=self.group.bytes_sent_by(self.rank) - before)
        return out

    def scatter(self, objs: Optional[List[Any]], src: int = 0) -> Any:
        return self.group.scatter(self.rank, objs, src)

    def barrier(self) -> None:
        self.group.barrier()

    # -- point-to-point -----------------------------------------------------------
    def send(self, payload: Dict[str, Any], dst: int, tag: int = 0) -> None:
        mailboxes: _P2PMailboxes = self.group._p2p  # type: ignore[attr-defined]
        nbytes = _sizeof(payload)
        self._account(nbytes, "send", "p2p")
        mailboxes.put(dst, tag, payload)

    def recv(self, src: int, tag: int = 0, timeout: Optional[float] = None) -> Dict[str, Any]:
        mailboxes: _P2PMailboxes = self.group._p2p  # type: ignore[attr-defined]
        payload = mailboxes.get(self.rank, tag, timeout if timeout is not None else 60.0)
        self.stats.record(received=_sizeof(payload))
        return payload


class _P2PMailboxes:
    """Tagged blocking mailboxes for point-to-point sends within a group."""

    def __init__(self, world_size: int) -> None:
        self._boxes: Dict[Tuple[int, int], List[Any]] = {}
        self._cond = threading.Condition()
        self.world_size = world_size

    def put(self, dst: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._boxes.setdefault((dst, tag), []).append(payload)
            self._cond.notify_all()

    def get(self, rank: int, tag: int, timeout: float) -> Any:
        deadline = timeout
        with self._cond:
            while not self._boxes.get((rank, tag)):
                if not self._cond.wait(timeout=deadline):
                    raise TimeoutError(f"recv timeout on rank {rank} tag {tag}")
            return self._boxes[(rank, tag)].pop(0)
