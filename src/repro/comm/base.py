"""The unified Communicator API (the paper's central abstraction).

Every protocol backend exposes the same primitives, so algorithms and
topologies never see which transport moves their bytes:

* ``broadcast_state`` / ``gather_states`` — model-state movement between an
  aggregator (rank 0 by convention) and workers;
* ``allreduce`` — in-place mean/sum of a flat vector across the group;
* ``send`` / ``recv`` — tagged point-to-point payloads;
* ``barrier`` — group synchronization.

Backends account every transfer into :class:`CommStats` (bytes, wall
seconds, simulated seconds under their :class:`NetworkModel`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.comm.network import NetworkModel
from repro.utils.timer import SimClock

__all__ = ["Communicator", "CommStats"]


@dataclass
class CommStats:
    """Per-communicator transfer accounting (thread-safe)."""

    bytes_sent: int = 0
    bytes_received: int = 0
    ops: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, sent: int = 0, received: int = 0, wall: float = 0.0, sim: float = 0.0) -> None:
        with self._lock:
            self.bytes_sent += int(sent)
            self.bytes_received += int(received)
            self.ops += 1
            self.wall_seconds += wall
            self.sim_seconds += sim

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "ops": self.ops,
                "wall_seconds": self.wall_seconds,
                "sim_seconds": self.sim_seconds,
            }

    def reset(self) -> None:
        with self._lock:
            self.bytes_sent = 0
            self.bytes_received = 0
            self.ops = 0
            self.wall_seconds = 0.0
            self.sim_seconds = 0.0


class Communicator:
    """Abstract protocol backend.

    Subclasses are constructed once per participating node with that node's
    ``rank`` and the group's ``world_size``; rank 0 plays the
    server/aggregator role for client-server protocols.
    """

    def __init__(
        self,
        rank: int,
        world_size: int,
        network: Optional[NetworkModel] = None,
        sim_clock: Optional[SimClock] = None,
    ) -> None:
        if not (0 <= rank < world_size):
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.rank = rank
        self.world_size = world_size
        self.network = network if network is not None else NetworkModel.from_preset("ideal")
        self.sim_clock = sim_clock if sim_clock is not None else SimClock()
        self.stats = CommStats()

    # -- lifecycle ---------------------------------------------------------
    def setup(self) -> None:
        """Connect/bind; called by the engine before round 0."""

    def shutdown(self) -> None:
        """Release transport resources."""

    # -- accounting helper ---------------------------------------------------
    def _account(self, nbytes: int, direction: str = "send", label: str = "comm") -> None:
        sim = self.network.transfer_time(nbytes)
        self.sim_clock.advance(sim, label)
        if direction == "send":
            self.stats.record(sent=nbytes, sim=sim)
        else:
            self.stats.record(received=nbytes, sim=sim)

    # -- primitives (must be implemented) -------------------------------------
    def broadcast_state(self, state: Optional[Mapping[str, np.ndarray]], src: int = 0) -> Dict[str, np.ndarray]:
        """Distribute a state dict from ``src`` to all ranks; returns it everywhere."""
        raise NotImplementedError

    def gather_states(
        self, state: Mapping[str, np.ndarray], meta: Optional[Dict[str, Any]] = None, dst: int = 0
    ) -> Optional[List[Dict[str, Any]]]:
        """Collect every rank's (state, meta) at ``dst``; None elsewhere.

        Returns a list of dicts ``{"rank", "state", "meta"}`` ordered by rank.
        """
        raise NotImplementedError

    def allreduce(self, vector: np.ndarray, op: str = "mean") -> np.ndarray:
        """Elementwise sum/mean of ``vector`` across all ranks."""
        raise NotImplementedError

    def send(self, payload: Dict[str, Any], dst: int, tag: int = 0) -> None:
        raise NotImplementedError

    def recv(self, src: int, tag: int = 0, timeout: Optional[float] = None) -> Dict[str, Any]:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    # -- conveniences shared by backends -----------------------------------------
    @staticmethod
    def _state_nbytes(state: Mapping[str, np.ndarray]) -> int:
        return int(sum(np.asarray(v).nbytes for v in state.values()))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(rank={self.rank}/{self.world_size}, "
            f"network={self.network.name})"
        )
