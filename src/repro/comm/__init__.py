"""Communication substrate: the paper's ``Communicator`` module.

One abstract API (:class:`~repro.comm.base.Communicator`) over several
protocols, selected purely by configuration — the paper's core claim:

* :class:`~repro.comm.torchdist.TorchDistCommunicator` — MPI-style
  collectives (ring all-reduce, all-gather, tree broadcast) over an
  in-process rendezvous group; the "fast inner" protocol.
* :class:`~repro.comm.rpc.GrpcCommunicator` — client/server RPC with a real
  length-prefixed wire format over in-proc queues or TCP sockets; the
  "slow outer" protocol.
* :class:`~repro.comm.pubsub.MqttCommunicator` /
  :class:`~repro.comm.pubsub.AmqpCommunicator` — publish/subscribe and
  queue-with-ack middleware semantics over an in-memory broker.

Every communicator accounts bytes moved and *simulated* seconds (latency +
size/bandwidth per its :class:`~repro.comm.network.NetworkModel`) so
laptop-scale runs still expose the paper's inner-vs-outer cost gap (Fig. 7).
"""

from repro.comm.base import CommStats, Communicator
from repro.comm.collectives import CollectiveGroup
from repro.comm.network import LINK_PRESETS, NetworkModel
from repro.comm.pubsub import AmqpCommunicator, Broker, MqttCommunicator
from repro.comm.rpc import GrpcCommunicator, RpcServer
from repro.comm.torchdist import TorchDistCommunicator
from repro.comm.wire import decode_message, encode_message

__all__ = [
    "Communicator",
    "CommStats",
    "CollectiveGroup",
    "NetworkModel",
    "LINK_PRESETS",
    "TorchDistCommunicator",
    "GrpcCommunicator",
    "RpcServer",
    "MqttCommunicator",
    "AmqpCommunicator",
    "Broker",
    "encode_message",
    "decode_message",
]
