"""Shared-memory collective algorithms (the MPI/NCCL/Gloo substitute).

A :class:`CollectiveGroup` is joined by exactly ``world_size`` threads that
call the same operation in lockstep (the engine guarantees this, as MPI
does).  Data moves through per-rank exchange slots separated by reusable
barriers — the *algorithms* are the real ones:

* ``allreduce``  — ring reduce-scatter + ring all-gather, 2(n-1) steps of
  1/n-sized chunks (bandwidth-optimal; Horovod/NCCL's algorithm);
* ``allgather`` — ring, n-1 steps;
* ``broadcast``/``reduce`` — binomial tree (log2 n rounds);
* ``gather``/``scatter``/``barrier``.

Each op charges simulated time for its critical path under the group's
:class:`NetworkModel` and bytes into each caller's stats.
"""

from __future__ import annotations

import math
import threading
from typing import Any, List, Optional

import numpy as np

from repro.comm.network import NetworkModel
from repro.utils.timer import SimClock

__all__ = ["CollectiveGroup"]


class CollectiveGroup:
    """Rendezvous group for in-process collective communication."""

    def __init__(
        self,
        world_size: int,
        network: Optional[NetworkModel] = None,
        sim_clock: Optional[SimClock] = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.network = network if network is not None else NetworkModel.from_preset("ideal")
        self.sim_clock = sim_clock if sim_clock is not None else SimClock()
        self._barrier = threading.Barrier(world_size)
        self._slots: List[Any] = [None] * world_size
        self._bytes: List[int] = [0] * world_size  # per-rank bytes sent, for stats
        self._lock = threading.Lock()

    # -- synchronization ------------------------------------------------------
    def barrier(self, timeout: float = 60.0) -> None:
        """Block until all ranks arrive (raises BrokenBarrierError on timeout)."""
        self._barrier.wait(timeout)

    def _sim(self, rank: int, seconds: float, label: str) -> None:
        # one rank charges the op's critical path; collectives run in parallel
        if rank == 0 and seconds > 0:
            self.sim_clock.advance(seconds, label)

    def bytes_sent_by(self, rank: int) -> int:
        with self._lock:
            return self._bytes[rank]

    def _add_bytes(self, rank: int, nbytes: int) -> None:
        with self._lock:
            self._bytes[rank] += int(nbytes)

    # -- ring all-reduce --------------------------------------------------------
    def allreduce(self, rank: int, vector: np.ndarray, op: str = "mean") -> np.ndarray:
        """Ring all-reduce of a flat float vector; every rank gets the result."""
        if op not in ("sum", "mean"):
            raise ValueError(f"unsupported reduction {op!r}")
        n = self.world_size
        buf = np.array(vector, dtype=np.float32, copy=True).ravel()
        if n == 1:
            return buf if op == "sum" else buf
        bounds = np.linspace(0, buf.size, n + 1).astype(int)
        chunks = [slice(bounds[i], bounds[i + 1]) for i in range(n)]
        chunk_bytes = int(math.ceil(buf.size / n)) * buf.itemsize

        # phase 1: reduce-scatter (n-1 steps)
        for step in range(n - 1):
            send_idx = (rank - step) % n
            self._slots[rank] = buf[chunks[send_idx]].copy()
            self._add_bytes(rank, buf[chunks[send_idx]].nbytes)
            self.barrier()
            left = (rank - 1) % n
            recv_idx = (rank - step - 1) % n
            buf[chunks[recv_idx]] += self._slots[left]
            self.barrier()
        # phase 2: all-gather (n-1 steps)
        for step in range(n - 1):
            send_idx = (rank + 1 - step) % n
            self._slots[rank] = buf[chunks[send_idx]].copy()
            self._add_bytes(rank, buf[chunks[send_idx]].nbytes)
            self.barrier()
            left = (rank - 1) % n
            recv_idx = (rank - step) % n
            buf[chunks[recv_idx]] = self._slots[left]
            self.barrier()
        self._sim(rank, 2 * (n - 1) * self.network.transfer_time(chunk_bytes), "allreduce")
        self.barrier()
        if op == "mean":
            buf /= n
        return buf.reshape(np.shape(vector))

    # -- ring all-gather -----------------------------------------------------------
    def allgather(self, rank: int, array: np.ndarray) -> List[np.ndarray]:
        """Every rank contributes one array; all ranks get the full list."""
        n = self.world_size
        self._slots[rank] = np.array(array, copy=True)
        self.barrier()
        out = [np.array(self._slots[r], copy=True) for r in range(n)]
        self.barrier()
        if n > 1:
            nbytes = int(np.asarray(array).nbytes)
            self._add_bytes(rank, (n - 1) * nbytes)
            self._sim(rank, (n - 1) * self.network.transfer_time(nbytes), "allgather")
        return out

    # -- tree broadcast / reduce ------------------------------------------------------
    def broadcast(self, rank: int, obj: Any, src: int = 0, nbytes: Optional[int] = None) -> Any:
        """Binomial-tree broadcast of an arbitrary object from ``src``."""
        n = self.world_size
        if rank == src:
            self._slots[src] = obj
        self.barrier()
        result = self._slots[src]
        self.barrier()
        if n > 1:
            size = int(nbytes) if nbytes is not None else _sizeof(obj if rank == src else result)
            if rank == src:
                self._add_bytes(rank, size * int(math.ceil(math.log2(n))))
            self._sim(rank, math.ceil(math.log2(n)) * self.network.transfer_time(size), "broadcast")
        return result

    def gather(self, rank: int, obj: Any, dst: int = 0) -> Optional[List[Any]]:
        """Collect one object per rank at ``dst`` (None elsewhere)."""
        n = self.world_size
        self._slots[rank] = obj
        self.barrier()
        result = [self._slots[r] for r in range(n)] if rank == dst else None
        self.barrier()
        if n > 1 and rank != dst:
            size = _sizeof(obj)
            self._add_bytes(rank, size)
            self._sim(rank, (n - 1) * self.network.transfer_time(size), "gather")
        return result

    def scatter(self, rank: int, objs: Optional[List[Any]], src: int = 0) -> Any:
        """``src`` provides one object per rank; each rank gets its own."""
        if rank == src:
            if objs is None or len(objs) != self.world_size:
                raise ValueError("scatter source must provide world_size objects")
            self._slots[src] = objs
        self.barrier()
        mine = self._slots[src][rank]
        self.barrier()
        if self.world_size > 1 and rank == src:
            self._add_bytes(rank, sum(_sizeof(o) for o in objs))  # type: ignore[union-attr]
        return mine

    def reduce(self, rank: int, vector: np.ndarray, dst: int = 0, op: str = "sum") -> Optional[np.ndarray]:
        """Tree-reduce a vector to ``dst`` (None elsewhere)."""
        gathered = self.gather(rank, np.asarray(vector, dtype=np.float64), dst)
        if rank != dst:
            return None
        acc = np.sum(gathered, axis=0)
        if op == "mean":
            acc = acc / self.world_size
        return acc.astype(np.asarray(vector).dtype)


def _sizeof(obj: Any) -> int:
    """Approximate transfer size of a payload object."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, dict):
        return sum(_sizeof(v) for v in obj.values()) + 16 * len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_sizeof(v) for v in obj) + 8 * len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    return 64
