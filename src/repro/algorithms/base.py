"""Algorithm base class: the lifecycle hooks every FL method plugs into.

One instance exists **per node** (clients keep per-round state like control
variates; the aggregator instance keeps server state like momentum buffers).
The default implementations realize plain FedAvg; subclasses override only
what they need:

Client-side hooks, in per-round call order:
  ``on_round_start`` (receive global state) → ``local_train`` (which calls
  ``local_step`` per batch, itself calling ``loss_fn`` and
  ``grad_postprocess``) → ``compute_update`` (what to upload).

Server-side hooks:
  ``server_payload`` (what to broadcast) → ``aggregate`` (merge updates).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import SGD, Optimizer
from repro.nn.serialization import clone_state, state_average
from repro.nn.tensor import Tensor
from repro.utils.registry import Registry

__all__ = ["Algorithm", "ALGORITHMS", "build_algorithm"]

ALGORITHMS: Registry["Algorithm"] = Registry("algorithm")


class Algorithm:
    """Base FL algorithm = FedAvg; every hook is override-what-you-need."""

    name = "base"
    #: evaluate the mean of per-client model accuracies instead of the global
    #: model (set by methods whose client models are intentionally personal)
    personalized_eval = False
    #: True when ``compute_update`` uploads full model states (FedAvg family).
    #: The codec then delta-codes against the round-start global state before
    #: lossy compression — compressing raw weights would destroy the model,
    #: whereas deltas are small and sparse-friendly.  Algorithms that already
    #: upload deltas/control variates set this False.
    uploads_full_state = True
    #: names of instance attributes holding *persistent per-client* algorithm
    #: state (control variates, personal models, momentum) — exactly what the
    #: client-pool runtime must swap between turns.  Attributes set fresh at
    #: every ``on_round_start`` (round anchors, payload caches) are transient
    #: and do not belong here.  Contract: listed attributes are *replaced*,
    #: never mutated in place, so snapshots can hold references.
    client_state_attrs: Sequence[str] = ()

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        local_epochs: int = 1,
        max_batches_per_epoch: Optional[int] = None,
        lr_milestones: Sequence[int] = (),
        lr_gamma: float = 0.1,
        **extra: Any,
    ) -> None:
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.local_epochs = int(local_epochs)
        self.max_batches_per_epoch = max_batches_per_epoch
        self.lr_milestones = sorted(int(m) for m in lr_milestones)
        self.lr_gamma = float(lr_gamma)
        self.extra = extra
        self.optimizer: Optional[Optimizer] = None
        self._steps_this_round = 0

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def lr_for_round(self, round_idx: int) -> float:
        """Round-indexed LR decay (paper's per-epoch milestones, mapped to
        rounds: one round = ``local_epochs`` epochs)."""
        effective_epoch = round_idx * max(1, self.local_epochs)
        passed = sum(1 for m in self.lr_milestones if effective_epoch >= m)
        return self.lr * self.lr_gamma**passed

    def configure_optimizer(self, model: Module, round_idx: int = 0) -> Optimizer:
        return SGD(
            model.parameters(),
            lr=self.lr_for_round(round_idx),
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )

    @staticmethod
    def _weights_of(entries: Sequence[Dict[str, Any]]) -> List[float]:
        return [float(e["meta"].get("num_samples", 1)) for e in entries]

    @staticmethod
    def _client_entries(entries: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Drop zero-weight entries (the aggregator's own placeholder)."""
        return [e for e in entries if float(e["meta"].get("num_samples", 1)) > 0]

    # ------------------------------------------------------------------
    # client-side lifecycle
    # ------------------------------------------------------------------
    def setup_client(self, node: "Node") -> None:  # noqa: F821 (documented protocol)
        """One-time client initialization (allocate per-client state here)."""

    def on_round_start(self, node: "Node", global_state: Dict[str, np.ndarray], round_idx: int) -> None:
        """Receive the broadcast payload; default loads it as model weights."""
        node.model.load_state_dict(self._strip_payload(global_state), strict=False)

    def local_train(self, node: "Node", round_idx: int) -> Dict[str, float]:
        """Default local loop: ``local_epochs`` passes of minibatch SGD."""
        self.optimizer = self.configure_optimizer(node.model, round_idx)
        node.model.train()
        total_loss, total_batches, total_samples, correct = 0.0, 0, 0, 0
        self._steps_this_round = 0
        for _ in range(self.local_epochs):
            for b, (x, y) in enumerate(node.train_loader()):
                if self.max_batches_per_epoch is not None and b >= self.max_batches_per_epoch:
                    break
                loss, batch_correct = self.local_step(node, x, y)
                total_loss += loss * len(y)
                total_samples += len(y)
                correct += batch_correct
                total_batches += 1
                self._steps_this_round += 1
        return {
            "loss": total_loss / max(total_samples, 1),
            "accuracy": correct / max(total_samples, 1),
            "batches": float(total_batches),
            "samples": float(total_samples),
        }

    def local_step(self, node: "Node", x: np.ndarray, y: np.ndarray) -> Tuple[float, int]:
        """One optimizer step; returns (loss value, #correct)."""
        logits = node.model(Tensor(x))
        loss = self.loss_fn(node, logits, y, x)
        assert self.optimizer is not None
        self.optimizer.zero_grad()
        loss.backward()
        self.grad_postprocess(node)
        self.optimizer.step()
        correct = int((logits.data.argmax(axis=1) == y).sum())
        return float(loss.item()), correct

    def loss_fn(self, node: "Node", logits: Tensor, y: np.ndarray, x: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, y)

    def grad_postprocess(self, node: "Node") -> None:
        """Modify parameter gradients before the optimizer step (prox terms,
        control variates, ...)."""

    def compute_update(self, node: "Node", round_idx: int) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """What the client uploads: default = full local state + sample count."""
        return node.model.state_dict(), {"num_samples": int(node.num_samples)}

    def on_round_end(self, node: "Node", round_idx: int) -> None:
        """Post-aggregation client hook."""

    # ------------------------------------------------------------------
    # client-pool state swap (pooled execution)
    # ------------------------------------------------------------------
    def export_client_state(self) -> Dict[str, Any]:
        """Snapshot the persistent per-client algorithm state (see
        :attr:`client_state_attrs`); the pool stores it between turns."""
        return {k: getattr(self, k) for k in self.client_state_attrs}

    def import_client_state(self, state: Dict[str, Any]) -> None:
        """Adopt a client's snapshot before its pool turn."""
        for k in self.client_state_attrs:
            setattr(self, k, state[k])

    def persistent_model_keys(self, model: Module) -> Optional[List[str]]:
        """Model entries that persist on the *client* across rounds.

        The default FedAvg family is fully re-materialized from the server
        payload at every ``on_round_start``, so nothing persists (``[]``) —
        unless the algorithm evaluates personal client models, in which case
        the whole model is the client's (``None`` = all keys).  Methods with
        a partial split (FedPer heads, FedBN statistics) override this.
        """
        return None if self.personalized_eval else []

    # ------------------------------------------------------------------
    # turn fusion (opt-in ``batch_turns`` hot path)
    # ------------------------------------------------------------------
    #: hooks the fused runner reimplements as batched tensor ops; an
    #: algorithm that overrides ANY of them has custom per-turn math the
    #: runner does not mirror, so fusion is ruled out for it
    _FUSED_EXACT_HOOKS = (
        "local_train",
        "local_step",
        "loss_fn",
        "grad_postprocess",
        "compute_update",
        "configure_optimizer",
        "on_round_end",
        "export_client_state",
        "import_client_state",
    )

    def fusion_safe(self) -> bool:
        """True when the fused runner provably reproduces this algorithm's
        per-turn results: no persistent algo state, none of the exactly-
        mirrored hooks overridden, and any ``on_round_start`` override
        ships a matching :meth:`fused_round_start_keys` describing its
        payload-loading behavior declaratively."""
        if self.client_state_attrs:
            return False
        cls = type(self)
        for hook in self._FUSED_EXACT_HOOKS:
            if getattr(cls, hook) is not getattr(Algorithm, hook):
                return False
        if cls.on_round_start is not Algorithm.on_round_start:
            # a custom round-start is fusable only if the class defining it
            # also declares which payload keys it loads (fedper does)
            for definer in cls.__mro__:
                if "on_round_start" in vars(definer):
                    return "fused_round_start_keys" in vars(definer)
        return True

    def fused_round_start_keys(self, payload_keys: Sequence[str]) -> List[str]:
        """Payload keys :meth:`on_round_start` loads into the model — the
        declarative mirror the fused runner initializes batched state from.
        The default matches the base hook: every non-side-channel key."""
        return [k for k in payload_keys if not k.startswith("__")]

    # ------------------------------------------------------------------
    # server-side lifecycle
    # ------------------------------------------------------------------
    def setup_server(self, node: "Node") -> None:
        """One-time server initialization (momentum buffers, variates, ...)."""

    def server_payload(self, global_state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """What gets broadcast each round; default is the global model state.

        Algorithms may append extra entries under a ``__<name>__.`` prefix
        (e.g. Scaffold's server control variate); clients strip them in
        :meth:`on_round_start` via :meth:`_strip_payload`.
        """
        return global_state

    @staticmethod
    def _strip_payload(payload: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Remove dunder-prefixed side-channel entries, keep model weights."""
        return OrderedDict((k, v) for k, v in payload.items() if not k.startswith("__"))

    @staticmethod
    def _extract_channel(payload: Dict[str, np.ndarray], channel: str) -> Dict[str, np.ndarray]:
        prefix = f"__{channel}__."
        return OrderedDict((k[len(prefix):], v) for k, v in payload.items() if k.startswith(prefix))

    @staticmethod
    def _pack_channel(state: Dict[str, np.ndarray], channel: str) -> Dict[str, np.ndarray]:
        prefix = f"__{channel}__."
        return OrderedDict((prefix + k, v) for k, v in state.items())

    def aggregate(
        self,
        entries: List[Dict[str, Any]],
        global_state: Dict[str, np.ndarray],
        round_idx: int,
    ) -> Dict[str, np.ndarray]:
        """Merge client uploads into the next global state (default FedAvg)."""
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        return state_average([e["state"] for e in clients], self._weights_of(clients))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.lr}, local_epochs={self.local_epochs})"


def build_algorithm(name: str, /, **kwargs) -> Algorithm:
    """Build a registered algorithm by name (``fedavg``, ``scaffold``, ...)."""
    return ALGORITHMS.build(name, **kwargs)
