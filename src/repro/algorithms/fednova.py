"""FedNova (Wang et al. 2020): normalized averaging.

Heterogeneous clients take different numbers of local steps τ_i; naive
FedAvg then optimizes an inconsistent objective.  FedNova uploads the
*step-normalized* update d_i = (w_global − w_i)/τ_i and applies

    w_global ← w_global − τ_eff · Σ_i p_i d_i,     τ_eff = Σ_i p_i τ_i

(the momentum-free form; p_i are data fractions).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_scale, state_sub

__all__ = ["FedNova"]


@ALGORITHMS.register("fednova")
class FedNova(Algorithm):
    name = "fednova"
    uploads_full_state = False  # uploads step-normalized directions

    def __init__(self, **kw) -> None:
        super().__init__(**kw)
        self._round_start_state: Dict[str, np.ndarray] = {}

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        super().on_round_start(node, global_state, round_idx)
        self._round_start_state = self._strip_payload(global_state)

    def compute_update(self, node, round_idx: int):
        tau = max(1, self._steps_this_round)
        local = node.model.state_dict()
        normalized = state_scale(state_sub(self._round_start_state, local), 1.0 / tau)
        return normalized, {"num_samples": int(node.num_samples), "tau": int(tau)}

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        weights = np.asarray(self._weights_of(clients), dtype=np.float64)
        p = weights / weights.sum()
        taus = np.asarray([float(e["meta"].get("tau", 1)) for e in clients])
        tau_eff = float(np.sum(p * taus))
        new_state = clone_state(global_state)
        for k, v in new_state.items():
            if not np.issubdtype(v.dtype, np.floating):
                continue
            combined = np.zeros_like(v, dtype=np.float64)
            for e, pi in zip(clients, p):
                combined += pi * np.asarray(e["state"][k], dtype=np.float64)
            new_state[k] = (v - tau_eff * combined).astype(v.dtype)
        return new_state
