"""Federated Averaging (McMahan et al. 2017) — the base class's behaviour,
registered under its own name."""

from __future__ import annotations

from repro.algorithms.base import ALGORITHMS, Algorithm

__all__ = ["FedAvg"]


@ALGORITHMS.register("fedavg")
class FedAvg(Algorithm):
    """Weighted averaging of full client states by sample count."""

    name = "fedavg"
