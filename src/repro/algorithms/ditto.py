"""Ditto (Li et al. 2020): fairness/robustness through personalization.

Two coupled optimizations per client and round:

1. the *global* branch — plain FedAvg local training on w, uploaded and
   aggregated as usual;
2. the *personal* branch — a private model v_i trained on the same data with
   a proximal pull toward the (fresh) global model:
       min_v  f_i(v) + (λ/2)·||v − w_global||²

Table 1 of the paper evaluates the shared global model, where Ditto's
personal benefit is invisible (and the global branch gets only part of the
local compute budget) — hence its low reported accuracy; this implementation
reproduces that configuration with ``personal_epochs`` stealing from the
round's budget.  Per-client (personalized) evaluation is available via
``evaluate_personal=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn import functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor

__all__ = ["Ditto"]


@ALGORITHMS.register("ditto")
class Ditto(Algorithm):
    name = "ditto"
    client_state_attrs = ("_personal_state",)  # the private model v_i

    def __init__(
        self,
        lam: float = 1.0,
        personal_lr: Optional[float] = None,
        personal_epochs: int = 1,
        evaluate_personal: bool = False,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.lam = float(lam)
        self.personal_lr = float(personal_lr) if personal_lr is not None else None
        self.personal_epochs = int(personal_epochs)
        self.personalized_eval = bool(evaluate_personal)
        self._personal_state: Optional[Dict[str, np.ndarray]] = None
        self._global_anchor: List[np.ndarray] = []

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        super().on_round_start(node, global_state, round_idx)
        model_state = self._strip_payload(global_state)
        self._global_anchor = [
            model_state[k].copy() for k, _ in node.model.named_parameters()
        ]
        if self._personal_state is None:
            self._personal_state = node.model.state_dict()

    def local_train(self, node, round_idx: int) -> Dict[str, float]:
        # global branch: standard local SGD (the part that is aggregated)
        stats = super().local_train(node, round_idx)

        # personal branch: train v_i with prox to w_global
        assert self._personal_state is not None
        global_branch = node.model.state_dict()
        node.model.load_state_dict(self._personal_state, strict=False)
        lr = self.personal_lr if self.personal_lr is not None else self.lr_for_round(round_idx)
        personal_opt = SGD(node.model.parameters(), lr=lr, momentum=self.momentum)
        for _ in range(self.personal_epochs):
            for b, (x, y) in enumerate(node.train_loader()):
                if self.max_batches_per_epoch is not None and b >= self.max_batches_per_epoch:
                    break
                logits = node.model(Tensor(x))
                loss = F.cross_entropy(logits, y)
                personal_opt.zero_grad()
                loss.backward()
                for p, anchor in zip(node.model.parameters(), self._global_anchor):
                    if p.grad is not None:
                        p.grad += self.lam * (p.data - anchor)
                personal_opt.step()
        self._personal_state = node.model.state_dict()
        node.model.load_state_dict(global_branch, strict=False)
        return stats

    def personal_model_state(self) -> Optional[Dict[str, np.ndarray]]:
        """The client's private model (for personalized evaluation)."""
        return self._personal_state
