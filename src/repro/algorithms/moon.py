"""MOON: model-contrastive federated learning (Li et al. 2021).

Adds a contrastive term in feature space pulling the local representation z
toward the global model's z_glob and away from the previous local model's
z_prev:

    ℓ_con = −log  exp(sim(z, z_glob)/τ) /
                  (exp(sim(z, z_glob)/τ) + exp(sim(z, z_prev)/τ))
    loss  = CE + µ·ℓ_con

z_glob/z_prev are computed with frozen copies (no gradients); only z's path
is differentiated, matching the reference implementation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad

__all__ = ["Moon"]


@ALGORITHMS.register("moon")
class Moon(Algorithm):
    name = "moon"

    def __init__(self, mu: float = 1.0, temperature: float = 0.5, **kw) -> None:
        super().__init__(**kw)
        self.mu = float(mu)
        self.temperature = float(temperature)
        self._global_snapshot: Optional[Dict[str, np.ndarray]] = None
        self._prev_snapshot: Optional[Dict[str, np.ndarray]] = None

    def persistent_model_keys(self, model):
        # the contrastive anchor is the model this client ended last round
        # with, read off node.model at round start — so in pooled execution
        # the whole local model must follow the client between turns
        return None

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        # previous local model = the state we ended last round with
        self._prev_snapshot = node.model.state_dict()
        super().on_round_start(node, global_state, round_idx)
        self._global_snapshot = self._strip_payload(global_state)

    def _frozen_features(self, node, x: np.ndarray, snapshot: Dict[str, np.ndarray]) -> np.ndarray:
        """Features under ``snapshot`` weights, restoring the live weights after."""
        live = node.model.state_dict()
        node.model.load_state_dict(snapshot, strict=False)
        was_training = node.model.training
        node.model.eval()
        with no_grad():
            feats = node.model.features(Tensor(x)).data.copy()
        node.model.load_state_dict(live, strict=False)
        node.model.train(was_training)
        return feats

    @staticmethod
    def _cosine(z: Tensor, other: np.ndarray) -> Tensor:
        """Row-wise cosine similarity, differentiable in ``z`` only."""
        other_unit = other / np.maximum(np.linalg.norm(other, axis=1, keepdims=True), 1e-8)
        z_norm = ((z * z).sum(axis=1, keepdims=True) + 1e-8).sqrt()
        return (z * other_unit).sum(axis=1, keepdims=True) / z_norm

    def loss_fn(self, node, logits: Tensor, y: np.ndarray, x: np.ndarray) -> Tensor:
        ce = F.cross_entropy(logits, y)
        if self.mu == 0.0 or self._global_snapshot is None or self._prev_snapshot is None:
            return ce
        z = node.model.features(Tensor(x))
        z_glob = self._frozen_features(node, x, self._global_snapshot)
        z_prev = self._frozen_features(node, x, self._prev_snapshot)
        sim_glob = self._cosine(z, z_glob) * (1.0 / self.temperature)
        sim_prev = self._cosine(z, z_prev) * (1.0 / self.temperature)
        # -log softmax over {glob, prev} picking glob, done stably:
        # ℓ = log(1 + exp(sim_prev - sim_glob))
        diff = sim_prev - sim_glob
        contrastive = ((diff.exp() + 1.0).log()).mean()
        return ce + self.mu * contrastive
