"""FL algorithms behind one lifecycle-hook interface (paper §3.4.1).

Swapping algorithms is a one-line config change; each implementation
overrides only the hooks it needs (``override-what-you-need``):

=============  ==========================================================
FedAvg         weighted parameter averaging (McMahan et al.)
FedProx        + proximal term µ/2·||w−w_g||² in the local objective
FedMom         + server-side momentum on the aggregated pseudo-gradient
FedNova        normalized averaging of per-client step-normalized updates
Scaffold       client/server control variates correcting client drift
Moon           model-contrastive auxiliary loss in feature space
FedPer         personalization layers: classifier head stays local
FedDyn         dynamic regularization with per-client linear correction
FedBN          BatchNorm parameters/statistics stay local
Ditto          global FedAvg branch + personal prox-regularized models
DiLoCo         AdamW inner optimization, Nesterov-momentum outer updates
=============  ==========================================================
"""

from repro.algorithms.base import ALGORITHMS, Algorithm, build_algorithm
from repro.algorithms.diloco import DiLoCo
from repro.algorithms.ditto import Ditto
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedbn import FedBN
from repro.algorithms.feddyn import FedDyn
from repro.algorithms.fedmom import FedMom
from repro.algorithms.fednova import FedNova
from repro.algorithms.fedper import FedPer
from repro.algorithms.fedprox import FedProx
from repro.algorithms.moon import Moon
from repro.algorithms.scaffold import Scaffold

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "build_algorithm",
    "FedAvg",
    "FedProx",
    "FedMom",
    "FedNova",
    "Scaffold",
    "Moon",
    "FedPer",
    "FedDyn",
    "FedBN",
    "Ditto",
    "DiLoCo",
]
