"""FedPer (Arivazhagan et al. 2019): personalization layers.

The feature extractor ("base layers") is shared and aggregated; the
classifier head ("personalization layers") never leaves the client.  The
global model's head therefore stays at its initialization — evaluating the
global model (as the paper's Table 1 does) shows exactly the degradation
they report, while per-client evaluation shows the personalized benefit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Set


from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_average

__all__ = ["FedPer"]


@ALGORITHMS.register("fedper")
class FedPer(Algorithm):
    name = "fedper"

    def __init__(self, **kw) -> None:
        super().__init__(**kw)
        self._head_keys: Set[str] = set()

    def setup_client(self, node) -> None:
        self._head_keys = set(node.model.head_parameter_names())

    def setup_server(self, node) -> None:
        self._head_keys = set(node.model.head_parameter_names())

    def persistent_model_keys(self, model):
        # the personalization layers never leave the client; everything else
        # is re-materialized from the server payload each round
        return [k for k in model.state_dict() if k in self._head_keys]

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        shared = OrderedDict(
            (k, v)
            for k, v in self._strip_payload(global_state).items()
            if k not in self._head_keys
        )
        node.model.load_state_dict(shared, strict=False)

    def fused_round_start_keys(self, payload_keys):
        # declarative mirror of on_round_start: the shared trunk loads from
        # the payload, the personalization head stays the client's own
        return [
            k for k in super().fused_round_start_keys(payload_keys)
            if k not in self._head_keys
        ]

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        avg = state_average([e["state"] for e in clients], self._weights_of(clients))
        new_state = clone_state(global_state)
        for k, v in avg.items():
            if k not in self._head_keys:
                new_state[k] = v
        return new_state
