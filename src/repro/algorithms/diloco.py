"""DiLoCo (Douillard et al. 2023): distributed low-communication training.

Designed for LLM pre-training: each worker runs H inner steps of **AdamW**;
the server treats the averaged parameter delta as an *outer gradient* and
applies **Nesterov momentum SGD** (outer lr ~0.7, momentum 0.9 in the
paper).  On small-vision tasks with these defaults the outer step is
aggressive — the sub-optimal out-of-the-box behaviour the paper's Table 1
shows and explicitly attributes to DiLoCo being "configured for specific
settings (e.g. large language models with AdamW ...)".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.module import Module
from repro.nn.optim import AdamW, Optimizer
from repro.nn.serialization import clone_state, state_average, state_sub

__all__ = ["DiLoCo"]


@ALGORITHMS.register("diloco")
class DiLoCo(Algorithm):
    name = "diloco"
    uploads_full_state = False  # uploads outer-gradient deltas

    def __init__(
        self,
        inner_lr: float = 1e-3,
        inner_weight_decay: float = 0.01,
        outer_lr: float = 0.7,
        outer_momentum: float = 0.9,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.inner_lr = float(inner_lr)
        self.inner_weight_decay = float(inner_weight_decay)
        self.outer_lr = float(outer_lr)
        self.outer_momentum = float(outer_momentum)
        self._outer_buf: Optional[Dict[str, np.ndarray]] = None
        self._round_start: Dict[str, np.ndarray] = {}

    # inner optimization uses AdamW, not SGD
    def configure_optimizer(self, model: Module, round_idx: int = 0) -> Optimizer:
        return AdamW(model.parameters(), lr=self.inner_lr, weight_decay=self.inner_weight_decay)

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        super().on_round_start(node, global_state, round_idx)
        self._round_start = self._strip_payload(global_state)

    def compute_update(self, node, round_idx: int):
        # upload the parameter delta (the "outer gradient" contribution)
        delta = state_sub(self._round_start, node.model.state_dict())
        return delta, {"num_samples": int(node.num_samples)}

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        outer_grad = state_average([e["state"] for e in clients], self._weights_of(clients))
        if self._outer_buf is None:
            self._outer_buf = {k: np.zeros_like(v) for k, v in outer_grad.items()}
        new_state = clone_state(global_state)
        for k, g in outer_grad.items():
            if not np.issubdtype(g.dtype, np.floating):
                continue
            buf = self._outer_buf[k]
            buf *= self.outer_momentum
            buf += g
            # Nesterov outer step
            step = g + self.outer_momentum * buf
            new_state[k] = (global_state[k] - self.outer_lr * step).astype(g.dtype)
        return new_state
