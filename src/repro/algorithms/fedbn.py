"""FedBN (Li et al. 2021): local batch normalization for non-IID features.

All parameters are aggregated *except* BatchNorm weights, biases and running
statistics, which stay client-local to absorb per-site feature shift.
Because each client's BN state is intentionally personal, evaluation is
per-client (``personalized_eval``) — the global model's BN statistics would
be meaningless.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Set


from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_average

__all__ = ["FedBN"]


@ALGORITHMS.register("fedbn")
class FedBN(Algorithm):
    name = "fedbn"
    personalized_eval = True

    def __init__(self, **kw) -> None:
        super().__init__(**kw)
        self._bn_keys: Set[str] = set()

    def setup_client(self, node) -> None:
        self._bn_keys = set(node.model.bn_parameter_names())

    def setup_server(self, node) -> None:
        self._bn_keys = set(node.model.bn_parameter_names())

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        shared = OrderedDict(
            (k, v)
            for k, v in self._strip_payload(global_state).items()
            if k not in self._bn_keys
        )
        node.model.load_state_dict(shared, strict=False)

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        avg = state_average([e["state"] for e in clients], self._weights_of(clients))
        new_state = clone_state(global_state)
        for k, v in avg.items():
            if k not in self._bn_keys:
                new_state[k] = v
        return new_state
