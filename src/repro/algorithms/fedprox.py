"""FedProx (Li et al. 2018): proximal term against the round-start global model.

Local objective: f_i(w) + (µ/2)·||w − w_global||², realized as a gradient
addition µ·(w − w_global) before each optimizer step.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm

__all__ = ["FedProx"]


@ALGORITHMS.register("fedprox")
class FedProx(Algorithm):
    name = "fedprox"

    def __init__(self, mu: float = 0.01, **kw) -> None:
        super().__init__(**kw)
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = float(mu)
        self._anchor: Optional[List[np.ndarray]] = None

    def on_round_start(self, node, global_state: Dict[str, np.ndarray], round_idx: int) -> None:
        super().on_round_start(node, global_state, round_idx)
        # snapshot w_global in parameter order for the proximal gradient
        self._anchor = [p.data.copy() for p in node.model.parameters()]

    def grad_postprocess(self, node) -> None:
        if self._anchor is None or self.mu == 0.0:
            return
        for p, anchor in zip(node.model.parameters(), self._anchor):
            if p.grad is not None:
                p.grad += self.mu * (p.data - anchor)
