"""FedMom / server momentum (Huo et al. 2020; FedAvgM of Hsu et al.).

The server treats (w_global − w_avg) as a pseudo-gradient and applies
momentum SGD to the global model:

    d_t = w_global − avg_i(w_i)
    m_t = β·m_{t−1} + d_t
    w_global ← w_global − η_server·m_t
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_average, state_scale, state_sub

__all__ = ["FedMom"]


@ALGORITHMS.register("fedmom", "fedavgm")
class FedMom(Algorithm):
    name = "fedmom"

    def __init__(self, server_momentum: float = 0.9, server_lr: float = 1.0, **kw) -> None:
        super().__init__(**kw)
        if not (0.0 <= server_momentum < 1.0):
            raise ValueError("server_momentum must be in [0, 1)")
        self.server_momentum = float(server_momentum)
        self.server_lr = float(server_lr)
        self._momentum_buf: Optional[Dict[str, np.ndarray]] = None

    @staticmethod
    def _is_statistic(key: str) -> bool:
        """BatchNorm running statistics must not receive momentum steps —
        an overshoot can make running_var negative (NaN in the next
        forward's sqrt); they take the plain client average instead."""
        return key.endswith(("running_mean", "running_var", "num_batches_tracked"))

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        avg = state_average([e["state"] for e in clients], self._weights_of(clients))
        pseudo_grad = state_sub(global_state, avg)
        if self._momentum_buf is None:
            self._momentum_buf = pseudo_grad
        else:
            self._momentum_buf = {
                k: (self.server_momentum * self._momentum_buf[k] + v if np.issubdtype(v.dtype, np.floating) else v)
                for k, v in pseudo_grad.items()
            }
        step = state_scale(self._momentum_buf, self.server_lr)
        new_state = state_sub(global_state, step)
        # buffers (BN statistics, step counters) track the client average
        for k, v in avg.items():
            if self._is_statistic(k) or not np.issubdtype(v.dtype, np.floating):
                new_state[k] = v.copy()
        return new_state
