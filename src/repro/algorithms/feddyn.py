"""FedDyn (Acar et al. 2021): dynamic regularization.

Each client keeps a linear-correction state h_i (initialized to 0) and
minimizes

    f_i(w) − ⟨h_i, w⟩ + (α/2)·||w − w_global||²

After local training:  h_i ← h_i − α·(w_i − w_global).
The server tracks h = mean_i h_i over *all* clients and sets

    w_global ← mean_{i∈S}(w_i) − (1/α)·h̄          (full participation form)

realized here incrementally:  h̄ ← h̄ − α·mean_i(w_i − w_global).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_average, state_zeros_like

__all__ = ["FedDyn"]


@ALGORITHMS.register("feddyn")
class FedDyn(Algorithm):
    name = "feddyn"
    client_state_attrs = ("_h_local",)  # per-client dual variable

    def __init__(self, alpha: float = 0.1, **kw) -> None:
        super().__init__(**kw)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)
        self._h_local: Optional[Dict[str, np.ndarray]] = None
        self._h_server: Optional[Dict[str, np.ndarray]] = None
        self._anchor: Dict[str, np.ndarray] = {}

    # -- client ------------------------------------------------------------
    def setup_client(self, node) -> None:
        params = OrderedDict((k, p.data) for k, p in node.model.named_parameters())
        self._h_local = state_zeros_like(params)

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        super().on_round_start(node, global_state, round_idx)
        self._anchor = OrderedDict(
            (k, v.copy())
            for k, v in self._strip_payload(global_state).items()
        )

    def grad_postprocess(self, node) -> None:
        if self._h_local is None:
            return
        for k, p in node.model.named_parameters():
            if p.grad is not None:
                p.grad += -self._h_local[k] + self.alpha * (p.data - self._anchor[k])

    def compute_update(self, node, round_idx: int):
        assert self._h_local is not None
        local = node.model.state_dict()
        # replace (never mutate) the dual: client_state_attrs snapshots hold
        # references to the old dict
        self._h_local = OrderedDict(
            (k, h - self.alpha * (local[k] - self._anchor[k]))
            for k, h in self._h_local.items()
        )
        return local, {"num_samples": int(node.num_samples)}

    # -- server -------------------------------------------------------------
    def setup_server(self, node) -> None:
        params = OrderedDict((k, p.data) for k, p in node.model.named_parameters())
        self._h_server = state_zeros_like(params)

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        avg = state_average([e["state"] for e in clients])  # unweighted, as in the paper
        assert self._h_server is not None
        new_state = clone_state(global_state)
        for k, v in avg.items():
            if not np.issubdtype(v.dtype, np.floating):
                new_state[k] = v.copy()
                continue
            if k in self._h_server:
                self._h_server[k] = self._h_server[k] - self.alpha * (v - global_state[k])
                new_state[k] = (v - self._h_server[k] / self.alpha).astype(v.dtype)
            else:  # buffers (BN stats) are plainly averaged
                new_state[k] = v
        return new_state
