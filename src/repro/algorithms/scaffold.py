"""SCAFFOLD (Karimireddy et al. 2020): stochastic controlled averaging.

Control variates correct client drift: the server keeps c, each client keeps
c_i; local gradients become g + c − c_i.  After K local steps with lr η
(option II of the paper):

    c_i⁺ = c_i − c + (w_global − w_i) / (K·η)
    Δy_i = w_i − w_global,      Δc_i = c_i⁺ − c_i
    w_global ← w_global + mean_i Δy_i
    c        ← c + mean_i Δc_i            (full participation)

The server's c travels to clients inside the broadcast payload under the
``__scaffold_c__.`` channel prefix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.algorithms.base import ALGORITHMS, Algorithm
from repro.nn.serialization import clone_state, state_add, state_average, state_sub, state_zeros_like

__all__ = ["Scaffold"]

_CHANNEL = "scaffold_c"


@ALGORITHMS.register("scaffold")
class Scaffold(Algorithm):
    name = "scaffold"
    uploads_full_state = False  # uploads (Δy, Δc) deltas
    client_state_attrs = ("_c_local",)  # the control variate is the client

    def __init__(self, **kw) -> None:
        super().__init__(**kw)
        self._c_local: Optional[Dict[str, np.ndarray]] = None  # client variate
        self._c_server: Optional[Dict[str, np.ndarray]] = None  # per-round copy
        self._c_global_srv: Optional[Dict[str, np.ndarray]] = None  # server's own
        self._round_start: Dict[str, np.ndarray] = {}
        self._param_keys: List[str] = []

    # -- client ------------------------------------------------------------
    def setup_client(self, node) -> None:
        params = OrderedDict((k, p.data) for k, p in node.model.named_parameters())
        self._param_keys = list(params.keys())
        self._c_local = state_zeros_like(params)

    def on_round_start(self, node, global_state, round_idx: int) -> None:
        model_state = self._strip_payload(global_state)
        node.model.load_state_dict(model_state, strict=False)
        self._round_start = model_state
        server_c = self._extract_channel(global_state, _CHANNEL)
        self._c_server = server_c if server_c else None

    def grad_postprocess(self, node) -> None:
        if self._c_server is None or self._c_local is None:
            return
        for k, p in node.model.named_parameters():
            if p.grad is not None:
                p.grad += self._c_server[k] - self._c_local[k]

    def compute_update(self, node, round_idx: int):
        assert self._c_local is not None
        local = node.model.state_dict()
        k_steps = max(1, self._steps_this_round)
        eta = self.lr_for_round(round_idx)
        delta_y = state_sub(local, self._round_start)
        params = OrderedDict((k, local[k]) for k in self._param_keys)
        start_params = OrderedDict((k, self._round_start[k]) for k in self._param_keys)
        c_server = self._c_server or state_zeros_like(params)
        c_plus = OrderedDict(
            (
                k,
                self._c_local[k] - c_server[k] + (start_params[k] - params[k]) / (k_steps * eta),
            )
            for k in self._param_keys
        )
        delta_c = OrderedDict((k, c_plus[k] - self._c_local[k]) for k in self._param_keys)
        self._c_local = c_plus
        payload = OrderedDict(delta_y)
        payload.update(self._pack_channel(delta_c, "scaffold_dc"))
        return payload, {"num_samples": int(node.num_samples)}

    # -- server -------------------------------------------------------------
    def setup_server(self, node) -> None:
        params = OrderedDict((k, p.data) for k, p in node.model.named_parameters())
        self._c_global_srv = state_zeros_like(params)

    def server_payload(self, global_state):
        payload = OrderedDict(global_state)
        if self._c_global_srv is not None:
            payload.update(self._pack_channel(self._c_global_srv, _CHANNEL))
        return payload

    def aggregate(self, entries: List[Dict[str, Any]], global_state, round_idx: int):
        clients = self._client_entries(entries)
        if not clients:
            return clone_state(global_state)
        delta_ys = []
        delta_cs = []
        for e in clients:
            delta_ys.append(self._strip_payload(e["state"]))
            delta_cs.append(self._extract_channel(e["state"], "scaffold_dc"))
        mean_dy = state_average(delta_ys)  # unweighted mean, as in the paper
        new_state = state_add(global_state, mean_dy)
        if self._c_global_srv is not None and delta_cs[0]:
            mean_dc = state_average(delta_cs)
            self._c_global_srv = state_add(self._c_global_srv, mean_dc)
        return new_state
