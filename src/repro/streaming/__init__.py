"""Streaming simulation for real-time learning (paper §3.4.3).

An in-memory :class:`~repro.streaming.broker.KafkaBroker` provides
partitioned, offset-addressed topic logs (the Apache Kafka substitute);
rate-limited :class:`~repro.streaming.producer.Producer` threads publish
dataset samples to per-client topics; clients run a
:class:`~repro.streaming.dataloader.StreamingDataLoader` whose consumer
subscribes to its topic — the paper's "custom PyTorch dataloader that
subscribes to a topic".  Observed stream-rates are measured exactly as in
Fig. 6.
"""

from repro.streaming.broker import KafkaBroker, Record
from repro.streaming.consumer import Consumer
from repro.streaming.dataloader import StreamingDataLoader
from repro.streaming.producer import Producer, RateLimiter
from repro.streaming.rate import measure_stream_rates, stream_dataset

__all__ = [
    "KafkaBroker",
    "Record",
    "Producer",
    "RateLimiter",
    "Consumer",
    "StreamingDataLoader",
    "measure_stream_rates",
    "stream_dataset",
]
