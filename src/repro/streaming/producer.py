"""Rate-limited producer: publishes samples at a user-set stream-rate."""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Optional, Sequence, Tuple


from repro.streaming.broker import KafkaBroker

__all__ = ["RateLimiter", "Producer"]


class RateLimiter:
    """Token bucket: ``acquire()`` blocks so sustained throughput ≈ ``rate``.

    ``burst`` tokens accumulate while idle, so short catch-up bursts are
    allowed (Kafka producers batch the same way).
    """

    def __init__(self, rate: float, burst: int = 8) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.capacity = float(max(1, burst))
        self._tokens = 1.0  # start nearly empty so short windows hit the target
        self._last = time.monotonic()
        self._lock = threading.Lock()

    def acquire(self, n: int = 1) -> float:
        """Block until ``n`` tokens are available; returns seconds slept."""
        slept = 0.0
        while True:
            with self._lock:
                now = time.monotonic()
                self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
                self._last = now
                if self._tokens >= n:
                    self._tokens -= n
                    return slept
                needed = (n - self._tokens) / self.rate
            wait = min(needed, 0.05)
            time.sleep(wait)
            slept += wait


class Producer:
    """Publishes values to broker topics, optionally rate-limited.

    One producer can serve many topics (the paper's single-publisher,
    16-concurrent-clients experiment): shared tokens mean the *aggregate*
    output saturates at ``rate * len(topics)`` per-topic fairness permitting.
    """

    def __init__(
        self,
        broker: KafkaBroker,
        rate: Optional[float] = None,
        per_topic_rate: bool = True,
    ) -> None:
        self.broker = broker
        self.rate = rate
        self.per_topic_rate = per_topic_rate
        self._limiters: dict = {}
        self._shared_limiter = RateLimiter(rate) if (rate and not per_topic_rate) else None
        self.sent = 0

    def _limiter_for(self, topic: str) -> Optional[RateLimiter]:
        if self.rate is None:
            return None
        if not self.per_topic_rate:
            return self._shared_limiter
        limiter = self._limiters.get(topic)
        if limiter is None:
            limiter = RateLimiter(self.rate)
            self._limiters[topic] = limiter
        return limiter

    def send(self, topic: str, value: Any, key: Optional[bytes] = None) -> None:
        limiter = self._limiter_for(topic)
        if limiter is not None:
            limiter.acquire()
        self.broker.append(topic, value, key)
        self.sent += 1

    def stream(
        self,
        topics: Sequence[str],
        samples: Iterable[Any],
        duration: Optional[float] = None,
        stop_event: Optional[threading.Event] = None,
    ) -> int:
        """Round-robin ``samples`` across ``topics`` until exhausted/expired.

        Returns the number of samples published.
        """
        start = time.monotonic()
        count = 0
        for i, sample in enumerate(samples):
            if duration is not None and time.monotonic() - start >= duration:
                break
            if stop_event is not None and stop_event.is_set():
                break
            self.send(topics[i % len(topics)], sample)
            count += 1
        return count

    def stream_in_background(
        self,
        topics: Sequence[str],
        samples: Iterable[Any],
        duration: Optional[float] = None,
    ) -> Tuple[threading.Thread, threading.Event]:
        """Run :meth:`stream` on a daemon thread; returns (thread, stop_event)."""
        stop = threading.Event()
        thread = threading.Thread(
            target=self.stream, args=(topics, samples, duration, stop), daemon=True, name="producer"
        )
        thread.start()
        return thread, stop
