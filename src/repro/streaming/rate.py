"""Stream-rate measurement harness (regenerates the paper's Fig. 6).

``measure_stream_rates`` starts one producer process (thread) publishing a
dataset's samples to per-client topics at a target per-client rate, attaches
one consumer per client, and reports each client's observed samples/second
over a measurement window — Fig. 6a sweeps the target rate with one client;
Fig. 6b fixes target 32 and sweeps client count.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.streaming.broker import KafkaBroker
from repro.streaming.consumer import Consumer
from repro.streaming.producer import Producer

__all__ = ["stream_dataset", "measure_stream_rates"]


def stream_dataset(dataset: Dataset, repeat: bool = True) -> Iterable[Tuple[np.ndarray, int]]:
    """Iterate dataset samples, cycling forever when ``repeat``."""
    indices: Iterable[int] = range(len(dataset))
    if repeat:
        indices = itertools.cycle(range(len(dataset)))
    for i in indices:
        yield dataset[i]


def measure_stream_rates(
    dataset: Dataset,
    target_rate: float,
    n_clients: int = 1,
    duration: float = 1.0,
    broker: Optional[KafkaBroker] = None,
    producer_capacity: Optional[float] = None,
) -> Dict[str, object]:
    """Run one streaming experiment; returns observed per-client rates.

    ``producer_capacity`` caps the single publisher's aggregate throughput
    (samples/s); ``None`` means unbounded tokens per topic (the target rate
    itself is the only limit).  The paper's single-producer saturation shows
    up when target_rate * n_clients exceeds capacity.
    """
    broker = broker if broker is not None else KafkaBroker()
    topics = [f"stream/client{i}" for i in range(n_clients)]
    for t in topics:
        broker.create_topic(t)

    consumers = [Consumer(broker, group_id=f"client{i}") for i in range(n_clients)]
    for c, t in zip(consumers, topics):
        c.subscribe([t])

    if producer_capacity is not None:
        producer = Producer(broker, rate=producer_capacity, per_topic_rate=False)
    else:
        producer = Producer(broker, rate=target_rate, per_topic_rate=True)
    thread, stop = producer.stream_in_background(topics, stream_dataset(dataset), duration)

    counts = [0] * n_clients
    start = time.monotonic()
    while time.monotonic() - start < duration:
        for i, c in enumerate(consumers):
            counts[i] += len(c.poll(timeout=0.02, max_records=4096))
    stop.set()
    thread.join(timeout=2.0)
    elapsed = time.monotonic() - start
    # drain anything that landed before the window closed
    for i, c in enumerate(consumers):
        counts[i] += len(c.poll(timeout=0.02, max_records=4096))

    rates = [count / elapsed for count in counts]
    return {
        "target_rate": target_rate,
        "n_clients": n_clients,
        "duration": elapsed,
        "rates": rates,
        "median_rate": float(np.median(rates)),
        "total_published": producer.sent,
    }
