"""Streaming dataloader: minibatches from a live topic subscription.

The paper's clients "run a custom PyTorch dataloader that subscribes to a
topic to collect the corresponding data"; this is that loader over the NumPy
substrate.  Samples are ``(x, y)`` pairs; the iterator yields stacked
batches as soon as ``batch_size`` samples have arrived, and tracks the
observed stream-rate.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.streaming.broker import KafkaBroker
from repro.streaming.consumer import Consumer

__all__ = ["StreamingDataLoader"]


class StreamingDataLoader:
    def __init__(
        self,
        broker: KafkaBroker,
        topic: str,
        batch_size: int = 32,
        poll_timeout: float = 0.5,
        max_wait: float = 10.0,
        group_id: str = "stream-loader",
    ) -> None:
        self.topic = topic
        self.batch_size = batch_size
        self.poll_timeout = poll_timeout
        self.max_wait = max_wait
        self.consumer = Consumer(broker, group_id)
        self.consumer.subscribe([topic])
        self.samples_seen = 0
        self._start: Optional[float] = None
        self._buffer: List[Tuple[np.ndarray, int]] = []

    # -- rate measurement -----------------------------------------------------
    @property
    def observed_rate(self) -> float:
        """Samples per second since the first poll."""
        if self._start is None or self.samples_seen == 0:
            return 0.0
        elapsed = time.monotonic() - self._start
        return self.samples_seen / max(elapsed, 1e-9)

    # -- consumption -------------------------------------------------------------
    def take(self, n_samples: int, timeout: Optional[float] = None) -> List[Tuple[np.ndarray, int]]:
        """Block until ``n_samples`` arrive (or timeout); returns raw samples."""
        deadline = time.monotonic() + (timeout if timeout is not None else self.max_wait)
        if self._start is None:
            self._start = time.monotonic()
        while len(self._buffer) < n_samples and time.monotonic() < deadline:
            records = self.consumer.poll(timeout=self.poll_timeout, max_records=n_samples)
            for rec in records:
                self._buffer.append(rec.value)
                self.samples_seen += 1
        taken, self._buffer = self._buffer[:n_samples], self._buffer[n_samples:]
        return taken

    def batches(self, n_batches: int, timeout: Optional[float] = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield up to ``n_batches`` stacked (x, y) minibatches."""
        for _ in range(n_batches):
            samples = self.take(self.batch_size, timeout)
            if not samples:
                return
            x = np.stack([s[0] for s in samples]).astype(np.float32, copy=False)
            y = np.asarray([s[1] for s in samples], dtype=np.int64)
            yield x, y

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            samples = self.take(self.batch_size)
            if not samples:
                return
            x = np.stack([s[0] for s in samples]).astype(np.float32, copy=False)
            y = np.asarray([s[1] for s in samples], dtype=np.int64)
            yield x, y
