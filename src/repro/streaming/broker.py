"""Partitioned log broker with Kafka semantics.

Topics hold ordered, immutable partitions; records get monotonically
increasing offsets per partition; consumers fetch by (partition, offset) and
manage their own positions.  Ordering is guaranteed *within* a partition
only — exactly the contract the paper leans on ("Kafka handles ordering
issues within a partition").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Record", "KafkaBroker"]


@dataclass(frozen=True)
class Record:
    topic: str
    partition: int
    offset: int
    timestamp: float
    key: Optional[bytes]
    value: Any


class KafkaBroker:
    """Thread-safe in-memory log broker."""

    def __init__(self) -> None:
        self._logs: Dict[Tuple[str, int], List[Record]] = {}
        self._partitions: Dict[str, int] = {}
        self._cond = threading.Condition()
        self._rr: Dict[str, int] = {}  # round-robin cursor per topic

    # -- admin ---------------------------------------------------------------
    def create_topic(self, topic: str, partitions: int = 1) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        with self._cond:
            if topic in self._partitions:
                if self._partitions[topic] != partitions:
                    raise ValueError(f"topic {topic!r} exists with {self._partitions[topic]} partitions")
                return
            self._partitions[topic] = partitions
            for p in range(partitions):
                self._logs[(topic, p)] = []

    def topics(self) -> List[str]:
        with self._cond:
            return sorted(self._partitions)

    def partitions_for(self, topic: str) -> int:
        with self._cond:
            if topic not in self._partitions:
                raise KeyError(f"unknown topic {topic!r}")
            return self._partitions[topic]

    # -- produce ----------------------------------------------------------------
    def append(self, topic: str, value: Any, key: Optional[bytes] = None,
               partition: Optional[int] = None) -> Record:
        with self._cond:
            if topic not in self._partitions:
                # auto-create single-partition topics, as Kafka commonly does
                self._partitions[topic] = 1
                self._logs[(topic, 0)] = []
            n_parts = self._partitions[topic]
            if partition is None:
                if key is not None:
                    partition = hash(key) % n_parts
                else:
                    partition = self._rr.get(topic, 0)
                    self._rr[topic] = (partition + 1) % n_parts
            if not (0 <= partition < n_parts):
                raise ValueError(f"partition {partition} out of range for {topic!r}")
            log = self._logs[(topic, partition)]
            record = Record(topic, partition, len(log), time.monotonic(), key, value)
            log.append(record)
            self._cond.notify_all()
            return record

    # -- consume -----------------------------------------------------------------
    def fetch(self, topic: str, partition: int, offset: int, max_records: int = 512) -> List[Record]:
        """Records from ``offset`` onward (possibly empty, never blocking)."""
        with self._cond:
            log = self._logs.get((topic, partition))
            if log is None:
                raise KeyError(f"unknown topic-partition {topic!r}/{partition}")
            return log[offset : offset + max_records]

    def wait_fetch(self, topic: str, partition: int, offset: int,
                   max_records: int = 512, timeout: float = 1.0) -> List[Record]:
        """Like :meth:`fetch` but blocks up to ``timeout`` for new records."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                log = self._logs.get((topic, partition))
                if log is None:
                    raise KeyError(f"unknown topic-partition {topic!r}/{partition}")
                if len(log) > offset:
                    return log[offset : offset + max_records]
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(timeout=min(remaining, 0.2))

    def end_offset(self, topic: str, partition: int = 0) -> int:
        with self._cond:
            log = self._logs.get((topic, partition))
            return len(log) if log is not None else 0
