"""Consumer: offset-tracking subscription over broker topics."""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro.streaming.broker import KafkaBroker, Record

__all__ = ["Consumer"]


class Consumer:
    """Polls subscribed topic-partitions from committed offsets."""

    def __init__(self, broker: KafkaBroker, group_id: str = "default") -> None:
        self.broker = broker
        self.group_id = group_id
        self._positions: Dict[Tuple[str, int], int] = {}

    def subscribe(self, topics: Sequence[str], from_beginning: bool = True) -> None:
        for topic in topics:
            try:
                n = self.broker.partitions_for(topic)
            except KeyError:
                self.broker.create_topic(topic)
                n = 1
            for p in range(n):
                start = 0 if from_beginning else self.broker.end_offset(topic, p)
                self._positions.setdefault((topic, p), start)

    def poll(self, timeout: float = 0.5, max_records: int = 512) -> List[Record]:
        """Next batch of records across all assignments (blocks up to timeout)."""
        if not self._positions:
            raise RuntimeError("poll() before subscribe()")
        deadline = time.monotonic() + timeout
        out: List[Record] = []
        while True:
            for (topic, partition), offset in list(self._positions.items()):
                records = self.broker.fetch(topic, partition, offset, max_records - len(out))
                if records:
                    out.extend(records)
                    self._positions[(topic, partition)] = records[-1].offset + 1
                if len(out) >= max_records:
                    return out
            if out or time.monotonic() >= deadline:
                return out
            # brief blocking wait on the first assignment
            (topic, partition), offset = next(iter(self._positions.items()))
            self.broker.wait_fetch(topic, partition, offset, 1, timeout=min(0.1, max(deadline - time.monotonic(), 0.01)))

    def position(self, topic: str, partition: int = 0) -> int:
        return self._positions.get((topic, partition), 0)

    def seek(self, topic: str, partition: int, offset: int) -> None:
        self._positions[(topic, partition)] = max(0, int(offset))

    def lag(self) -> int:
        """Total records available but not yet consumed."""
        return sum(
            max(0, self.broker.end_offset(t, p) - off)
            for (t, p), off in self._positions.items()
        )
