"""Wire serialization for broker transport: snapshots, turns, results.

Distributed brokers move three payload families between processes — a
logical client's :class:`~repro.engine.client_state.ClientSnapshot`, a turn
request (method + args), and a turn result — all of which are trees of
plain containers, numpy arrays, and rng bit-generator states.  This module
maps such trees onto the framework's existing binary wire format
(:mod:`repro.comm.wire`): arrays travel as raw typed buffers in the frame's
array section (bit-exact, no pickling), everything else as JSON metadata
with tagged markers for the Python types JSON cannot express (tuples,
bytes, numpy scalars).  ``decode(encode(x))`` reproduces ``x`` exactly —
including dtypes, float bits, and arbitrarily large rng-state integers —
which is what lets a redis worker process replay a client's turn
bit-identically to the in-process pool (pinned by the hypothesis suite in
``tests/runtime/test_snapshot_wire.py``).
"""

from __future__ import annotations

import base64
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.comm.wire import WireError, decode_message, encode_message
from repro.engine.client_state import ClientSnapshot

__all__ = [
    "GSTATE_KEY",
    "pack_tree",
    "unpack_tree",
    "encode_snapshot",
    "decode_snapshot",
    "encode_payload",
    "decode_payload",
    "encode_turn",
    "decode_turn",
    "encode_result",
    "encode_error",
    "decode_result",
]

#: sentinel key for an interned global-state payload: a ``local_update``
#: turn whose first argument is ``{GSTATE_KEY: <int>}`` tells the worker to
#: fetch the payload once from the broker's ``gstate`` hash instead of
#: carrying a full model copy in every turn frame (the redis round-decode
#: cache).  ``pack_tree`` passes the dict through untouched — the key is
#: not one of its markers — so the sentinel survives the turn codec.
GSTATE_KEY = "__gstate__"

#: marker keys for JSON-hostile types; a real mapping whose key set collides
#: is escaped under _MAP so user data can never be mistaken for a marker
_ARRAY = "__nd__"
_SCALAR = "__np__"
_TUPLE = "__tuple__"
_BYTES = "__bytes__"
_MAP = "__map__"
_MARKERS = frozenset((_ARRAY, _SCALAR, _TUPLE, _BYTES, _MAP))


def pack_tree(obj: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Split ``obj`` into (json-safe tree, array payloads).

    Arrays and numpy scalars are replaced by markers pointing into the
    returned array dict; tuples and bytes get tagged so :func:`unpack_tree`
    restores the exact Python types.
    """
    arrays: Dict[str, np.ndarray] = {}

    def walk(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            slot = f"a{len(arrays)}"
            arrays[slot] = value
            return {_ARRAY: slot}
        if isinstance(value, np.generic):
            # 0-d array round-trips the scalar's exact dtype and bits
            slot = f"a{len(arrays)}"
            arrays[slot] = np.asarray(value)
            return {_SCALAR: slot}
        if isinstance(value, (bytes, bytearray)):
            return {_BYTES: base64.b64encode(bytes(value)).decode("ascii")}
        if isinstance(value, tuple):
            return {_TUPLE: [walk(v) for v in value]}
        if isinstance(value, list):
            return [walk(v) for v in value]
        if isinstance(value, Mapping):
            out = {}
            for k, v in value.items():
                if not isinstance(k, str):
                    raise WireError(
                        f"cannot serialize mapping key {k!r} ({type(k).__name__}): "
                        "broker payload keys must be strings"
                    )
                out[k] = walk(v)
            if _MARKERS & out.keys():
                return {_MAP: out}
            return out
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise WireError(
            f"cannot serialize {type(value).__name__} for broker transport"
        )

    return walk(obj), arrays


def unpack_tree(tree: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`pack_tree`."""

    def walk(value: Any) -> Any:
        if isinstance(value, Mapping):
            if _ARRAY in value:
                return arrays[value[_ARRAY]]
            if _SCALAR in value:
                return arrays[value[_SCALAR]][()]
            if _BYTES in value:
                return base64.b64decode(value[_BYTES])
            if _TUPLE in value:
                return tuple(walk(v) for v in value[_TUPLE])
            if _MAP in value:
                return {k: walk(v) for k, v in value[_MAP].items()}
            return {k: walk(v) for k, v in value.items()}
        if isinstance(value, list):
            return [walk(v) for v in value]
        return value

    return walk(tree)


# --------------------------------------------------------------------------
# snapshots: what the ClientStateStore shards behind the broker
# --------------------------------------------------------------------------

def encode_snapshot(snapshot: ClientSnapshot) -> bytes:
    """One :class:`ClientSnapshot` as a wire frame."""
    tree, arrays = pack_tree({
        "algo": snapshot.algo,
        "model": dict(snapshot.model),
        "fault_rng": snapshot.fault_rng,
        "loader_rng": snapshot.loader_rng,
        "compressor": snapshot.compressor,
        "dp": snapshot.dp,
        "stats": snapshot.stats,
        "turns": snapshot.turns,
    })
    return encode_message("data", {"snapshot": tree}, arrays)


def decode_snapshot(frame: bytes) -> ClientSnapshot:
    kind, meta, arrays = decode_message(frame)
    if kind != "data" or "snapshot" not in meta:
        raise WireError(f"frame is not a snapshot (kind={kind!r})")
    return ClientSnapshot(**unpack_tree(meta["snapshot"], arrays))


# --------------------------------------------------------------------------
# interned payloads: the per-round global state, shipped once per version
# --------------------------------------------------------------------------

def encode_payload(payload: Any) -> bytes:
    """One broadcast payload (the server's per-round model) as a frame."""
    tree, arrays = pack_tree(payload)
    return encode_message("data", {"payload": tree}, arrays)


def decode_payload(frame: bytes) -> Any:
    kind, meta, arrays = decode_message(frame)
    if kind != "data" or "payload" not in meta:
        raise WireError(f"frame is not an interned payload (kind={kind!r})")
    return unpack_tree(meta["payload"], arrays)


# --------------------------------------------------------------------------
# turns and results: the broker queue's message bodies
# --------------------------------------------------------------------------

def encode_turn(
    turn_id: int, client: int, method: str, args: tuple, kwargs: dict
) -> bytes:
    tree, arrays = pack_tree({"args": tuple(args), "kwargs": dict(kwargs)})
    meta = {"turn": int(turn_id), "client": int(client), "method": str(method),
            "payload": tree}
    return encode_message("request", meta, arrays)


def decode_turn(frame: bytes) -> Tuple[int, int, str, tuple, dict]:
    kind, meta, arrays = decode_message(frame)
    if kind != "request":
        raise WireError(f"frame is not a turn request (kind={kind!r})")
    payload = unpack_tree(meta["payload"], arrays)
    return (int(meta["turn"]), int(meta["client"]), str(meta["method"]),
            tuple(payload["args"]), dict(payload["kwargs"]))


def encode_result(
    turn_id: int, client: int, value: Any, *, snap_bytes: int = 0, worker: str = ""
) -> bytes:
    tree, arrays = pack_tree(value)
    meta = {"turn": int(turn_id), "client": int(client), "ok": True,
            "payload": tree, "snap_bytes": int(snap_bytes), "worker": worker}
    return encode_message("response", meta, arrays)


def encode_error(
    turn_id: int, client: int, exc: BaseException, *,
    traceback_text: str = "", snap_bytes: int = 0, worker: str = ""
) -> bytes:
    meta = {
        "turn": int(turn_id), "client": int(client), "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc),
                  "traceback": traceback_text},
        "snap_bytes": int(snap_bytes), "worker": worker,
    }
    return encode_message("error", meta, {})


def decode_result(frame: bytes) -> Dict[str, Any]:
    """-> {turn, client, ok, value?/error?, snap_bytes, worker}."""
    kind, meta, arrays = decode_message(frame)
    if kind not in ("response", "error"):
        raise WireError(f"frame is not a turn result (kind={kind!r})")
    out: Dict[str, Any] = {
        "turn": int(meta["turn"]), "client": int(meta["client"]),
        "ok": bool(meta["ok"]), "snap_bytes": int(meta.get("snap_bytes", 0)),
        "worker": str(meta.get("worker", "")),
    }
    if out["ok"]:
        out["value"] = unpack_tree(meta["payload"], arrays)
    else:
        out["error"] = dict(meta["error"])
    return out
