"""Fused client turns: several pooled ``local_update`` calls as one batched
tensor pass (the opt-in ``batch_turns`` hot path).

At bench scale the per-turn cost is dominated by fixed overheads — tape
construction, per-layer dispatch, state-dict plumbing — on tiny matmuls.
Stacking K clients' parameters into ``(K, ...)`` arrays and training them
with one set of 3D ``np.matmul`` calls amortizes all of it, and because
every op here is slice-independent (batched matmul, broadcast bias,
elementwise relu, last-axis softmax/argmax/mean), slice ``k`` of the fused
pass is **bitwise identical** to running client ``k`` through the regular
autograd path.  That identity is the contract: the runner exists only for
configurations where it can be proven —

* the algorithm vets itself via :meth:`Algorithm.fusion_safe` (no persistent
  per-client algo state, none of the exactly-mirrored hooks overridden);
* the model describes its forward as a linear/relu plan via
  :meth:`FederatedModel.fused_plan` (anything else — BatchNorm, convs —
  returns None and disables fusion);
* the node rules out codec/DP plugins in :meth:`Node.fusion_context`;
* per ticket, :meth:`turn_eligible` checks the payload covers every model
  key not persisted per-client (so batched init needs no worker model).

Anything failing a check falls back to the exact sequential path in
:class:`~repro.runtime.broker.MemoryBroker`, so ``batch_turns`` can never
change results — only how fast they arrive.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import materialize_batches
from repro.engine.client_state import ClientSnapshot
from repro.utils.seeding import DATA_STREAM, client_rng

__all__ = ["FusedTurnRunner", "ScratchPool"]


class ScratchPool:
    """Recycled large numpy temporaries, shareable across worker threads.

    Fused groups burn through mmap-sized gradient/optimizer scratch; fresh
    allocations of that size pay kernel page-zeroing on every group.  A
    broker shares ONE pool across all its runners so idle buffers are
    bounded globally rather than per worker.  Arrays are handed out
    exclusively (a taken array is owned until given back), so the lock only
    guards the free lists.
    """

    def __init__(self, cap_bytes: int = 16 << 20) -> None:
        self.cap_bytes = int(cap_bytes)
        self._free: Dict[Tuple[tuple, Any], List[np.ndarray]] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def take(self, shape: tuple, dtype) -> np.ndarray:
        """A writable scratch array (contents undefined — callers must
        fully overwrite it)."""
        key = (shape, np.dtype(dtype))
        with self._lock:
            free = self._free.get(key)
            if free:
                arr = free.pop()
                self._bytes -= arr.nbytes
                return arr
        return np.empty(shape, dtype)

    def give(self, arr: np.ndarray) -> None:
        if arr.base is not None:
            return  # views don't own their memory; never recycle them
        with self._lock:
            if self._bytes + arr.nbytes > self.cap_bytes:
                return
            self._free.setdefault((arr.shape, arr.dtype), []).append(arr)
            self._bytes += arr.nbytes


class _ClientTurn:
    """One job's per-client bookkeeping across the fused pass."""

    __slots__ = ("ticket", "snapshot", "view", "rng", "batches",
                 "payload", "version", "lr", "load_keys",
                 "total_loss", "samples", "correct", "batches_run")

    def __init__(self, ticket, snapshot, view, rng, batches) -> None:
        self.ticket = ticket
        self.snapshot = snapshot
        self.view = view
        self.rng = rng
        self.batches = batches
        self.payload = ticket.args[0]
        self.version = int(ticket.args[1])
        self.lr = 0.0
        self.load_keys: Any = None
        self.total_loss = 0.0
        self.samples = 0
        self.correct = 0
        self.batches_run = 0


class FusedTurnRunner:
    """Runs batches of compatible ``local_update`` turns as stacked math.

    Built from :meth:`Node.fusion_context`; one instance per worker node
    (the broker caches it).  ``run_batch`` never mutates the snapshots or
    the payload it is given — a failure at any point leaves the sequential
    fallback an untouched starting state.
    """

    def __init__(
        self, context: Dict[str, Any], scratch: Optional[ScratchPool] = None
    ) -> None:
        self.plan: List[Tuple[str, ...]] = list(context["plan"])
        self.state_keys: List[str] = list(context["state_keys"])
        self.persistent: Optional[List[str]] = (
            None if context["persistent_keys"] is None
            else list(context["persistent_keys"])
        )
        self.algo = context["algorithm"]
        self.seed = int(context["seed"])
        self.batch_size = int(context["batch_size"])
        plan_params = {k for op in self.plan if op[0] == "linear" for k in op[1:]}
        # every model entry must be a planned parameter: an unplanned entry
        # (a buffer) would train differently than the autograd path
        self._static_ok = plan_params == set(self.state_keys)
        # payload-coverage verdict, cached per payload object (payload
        # identity is stable per dispatch version via the scheduler cache;
        # the strong reference also keeps id() from being recycled)
        self._coverage: Optional[Tuple[Any, bool]] = None
        # recycled gradient/optimizer scratch — brokers pass one shared
        # pool so idle buffers are bounded globally, not per worker
        self._scratch = scratch if scratch is not None else ScratchPool()

    def _take(self, shape: tuple, dtype) -> np.ndarray:
        return self._scratch.take(shape, dtype)

    def _give(self, arr: np.ndarray) -> None:
        self._scratch.give(arr)

    # ------------------------------------------------------------------
    def turn_eligible(self, ticket) -> bool:
        """Cheap per-ticket gate (called on the dispatch path)."""
        if not self._static_ok:
            return False
        if ticket.method != "local_update" or ticket.kwargs or len(ticket.args) != 3:
            return False
        payload = ticket.args[0]
        if not isinstance(payload, Mapping) or not payload:
            return False
        cached = self._coverage
        if cached is not None and cached[0] is payload:
            return cached[1]
        load = self._load_keys(payload)
        persisted = (
            set(self.state_keys) if self.persistent is None else set(self.persistent)
        )
        ok = all(k in load or k in persisted for k in self.state_keys)
        self._coverage = (payload, ok)
        return ok

    def _load_keys(self, payload: Mapping[str, Any]) -> set:
        """Model keys ``on_round_start`` would load from this payload."""
        return set(self.algo.fused_round_start_keys(list(payload.keys()))) & set(payload)

    # ------------------------------------------------------------------
    def run_batch(
        self,
        jobs: Sequence[Tuple[Any, Optional[ClientSnapshot], Any]],
        baseline: Dict[str, Any],
    ) -> List[Tuple[Dict[str, Any], ClientSnapshot]]:
        """``jobs`` is ``[(ticket, snapshot_or_None, data_view), ...]`` of
        eligible ``local_update`` turns (payloads/versions may differ —
        turns from several dispatch epochs fuse together); returns the
        job-aligned ``[(local_update result, new snapshot), ...]``."""
        algo = self.algo
        cap = algo.max_batches_per_epoch

        # materialize every client's batch sequence exactly as the per-turn
        # DataLoader would (same rng stream, same per-epoch shuffles)
        clients: List[_ClientTurn] = []
        for ticket, snapshot, view in jobs:
            if snapshot is None:
                rng = client_rng(self.seed, ticket.client, DATA_STREAM)
            else:
                rng = np.random.default_rng()
                rng.bit_generator.state = snapshot.loader_rng
            batches = materialize_batches(
                view, self.batch_size, rng, algo.local_epochs, cap
            )
            clients.append(_ClientTurn(ticket, snapshot, view, rng, batches))

        # stacking needs rectangular slices: group clients that agree on
        # per-step batch shapes, learning rate, and payload schema (uneven
        # shards or mixed dispatch epochs split into a few groups; a
        # singleton group runs the same fused code at K=1)
        load_cache: Dict[tuple, frozenset] = {}
        groups: Dict[tuple, List[_ClientTurn]] = {}
        for ct in clients:
            ct.lr = algo.lr_for_round(int(ct.ticket.args[2]))
            schema = tuple(ct.payload)
            load = load_cache.get(schema)
            if load is None:
                load = load_cache[schema] = frozenset(self._load_keys(ct.payload))
            ct.load_keys = load
            sig = (
                ct.lr,
                schema,
                tuple((x.shape, x.dtype.str, y.shape, y.dtype.str)
                      for x, y in ct.batches),
            )
            groups.setdefault(sig, []).append(ct)

        outcomes: Dict[int, Tuple[Dict[str, Any], ClientSnapshot]] = {}
        for group in groups.values():
            self._run_group(group, baseline, outcomes)
        return [outcomes[id(ct)] for ct in clients]

    # ------------------------------------------------------------------
    def _run_group(
        self,
        group: List[_ClientTurn],
        baseline: Dict[str, Any],
        outcomes: Dict[int, Tuple[Dict[str, Any], ClientSnapshot]],
    ) -> None:
        algo = self.algo
        K = len(group)
        load_keys = group[0].load_keys
        first_payload = group[0].payload
        shared_payload = all(ct.payload is first_payload for ct in group)
        # stacked round-start state: payload keys broadcast (on_round_start
        # overwrites the restore, so load wins) — one broadcast copy when
        # the whole group shares a dispatch epoch, else per-client rows —
        # the rest from each client's persisted snapshot (baseline on a
        # first turn)
        W: Dict[str, np.ndarray] = {}
        for key in self.state_keys:
            if key in load_keys:
                if shared_payload:
                    src = np.asarray(first_payload[key])
                    slab = np.empty((K,) + src.shape, src.dtype)
                    slab[:] = src
                    W[key] = slab
                else:
                    W[key] = np.stack(
                        [np.asarray(ct.payload[key]) for ct in group]
                    )
            else:
                rows = []
                for ct in group:
                    snap = ct.snapshot
                    if snap is not None and key in snap.model:
                        rows.append(snap.model[key])
                    else:
                        rows.append(baseline["model"][key])
                W[key] = np.stack(rows)

        lr = group[0].lr
        momentum = algo.momentum
        wd = algo.weight_decay
        bufs: Dict[str, np.ndarray] = {}  # fresh optimizer per turn
        borrowed: List[np.ndarray] = []  # scratch to recycle at group end
        arange_k = np.arange(K)[:, None]
        n_steps = len(group[0].batches)
        for t in range(n_steps):
            x3 = np.stack([ct.batches[t][0] for ct in group])
            y3 = np.stack([ct.batches[t][1] for ct in group])
            if x3.ndim > 3:  # mirrors FederatedModel.features' flatten
                x3 = x3.reshape(K, x3.shape[1], -1)

            # forward, recording what backward needs (linear inputs, masks)
            h = x3
            acts: List[np.ndarray] = []
            for op in self.plan:
                if op[0] == "linear":
                    acts.append(h)
                    h = np.matmul(h, W[op[1]].transpose(0, 2, 1))
                    h += W[op[2]][:, None, :]
                else:  # relu
                    mask = h > 0
                    acts.append(mask)
                    h = np.where(mask, h, 0.0).astype(h.dtype, copy=False)
            logits = h
            n = logits.shape[1]
            idx_n = np.arange(n)[None, :]

            # cross-entropy along the class axis, per slice == F.cross_entropy
            shifted = logits - logits.max(axis=2, keepdims=True)
            logsumexp = np.log(np.exp(shifted).sum(axis=2, keepdims=True))
            shifted -= logsumexp  # shifted is fresh: reuse it as log_probs
            log_probs = shifted
            losses = -log_probs[arange_k, idx_n, y3]
            loss_vals = losses.mean(axis=1).tolist()
            correct = (logits.argmax(axis=2) == y3).sum(axis=1).tolist()
            for k, ct in enumerate(group):
                ct.total_loss += loss_vals[k] * n
                ct.samples += n
                ct.correct += correct[k]
                ct.batches_run += 1

            # backward + SGD, walking the plan top-down; dx through a layer
            # is taken before that layer's weights step (autograd computes
            # every grad before optimizer.step touches anything)
            grad = np.exp(log_probs)
            grad[arange_k, idx_n, y3] -= 1.0
            grad /= n
            for op, act in zip(reversed(self.plan), reversed(acts)):
                if op[0] == "relu":
                    # grad is always fresh here (exp output or matmul
                    # result), so masking in place is bitwise-safe
                    np.multiply(grad, act, out=grad)
                else:
                    wkey, bkey = op[1], op[2]
                    if grad.shape[1] == 1:
                        # single-sample step: the weight grad is a rank-1
                        # outer product — one multiply per element, bitwise
                        # equal to the dgemm result, without the per-slice
                        # batched-matmul dispatch overhead
                        g_w = self._take(
                            W[wkey].shape, np.result_type(grad, act)
                        )
                        borrowed.append(g_w)
                        np.multiply(
                            grad[:, 0, :, None], act[:, 0, None, :], out=g_w
                        )
                    else:
                        g_w = np.matmul(
                            act.transpose(0, 2, 1), grad
                        ).transpose(0, 2, 1)
                    g_b = grad.sum(axis=1)
                    grad = np.matmul(grad, W[wkey])
                    self._sgd(W, bufs, wkey, g_w, lr, momentum, wd)
                    self._sgd(W, bufs, bkey, g_b, lr, momentum, wd)

        for arr in borrowed:
            self._give(arr)
        algo_state = algo.export_client_state()
        for k, ct in enumerate(group):
            stats = {
                "loss": ct.total_loss / max(ct.samples, 1),
                "accuracy": ct.correct / max(ct.samples, 1),
                "batches": float(ct.batches_run),
                "samples": float(ct.samples),
            }
            # rows are handed out as views: the stacked slabs are exactly the
            # K per-client states laid out contiguously, so slicing costs no
            # copy and pins no extra bytes; nothing downstream mutates result
            # states (replace-not-mutate contract), and snapshot rows are
            # copied into stable storage by the arena on store.put
            state = {key: W[key][k] for key in self.state_keys}
            result = {
                "state": state,
                "meta": {"num_samples": int(len(ct.view))},
                "stats": stats,
                "version": ct.version,
            }
            if self.persistent is None:
                model_state = OrderedDict((key, W[key][k]) for key in self.state_keys)
            elif self.persistent:
                model_state = OrderedDict((key, W[key][k]) for key in self.persistent)
            else:
                model_state = OrderedDict()
            if ct.snapshot is not None:
                fault_rng = ct.snapshot.fault_rng
                turns = ct.snapshot.turns
            else:
                # first turn and the fault stream was never consumed: store
                # None — begin_client_turn re-derives the identical stream
                # lazily, saving a SeedSequence spin-up per first turn
                fault_rng = None
                turns = 0
            snapshot = ClientSnapshot(
                algo=algo_state if not algo_state else algo.export_client_state(),
                model=model_state,
                fault_rng=fault_rng,
                loader_rng=ct.rng.bit_generator.state,
                compressor=None,
                dp=None,
                stats=dict(stats),
                turns=turns + 1,
            )
            outcomes[id(ct)] = (result, snapshot)

    def _sgd(
        self,
        W: Dict[str, np.ndarray],
        bufs: Dict[str, np.ndarray],
        key: str,
        g: np.ndarray,
        lr: float,
        momentum: float,
        wd: float,
    ) -> None:
        """One stacked parameter step == :class:`repro.nn.optim.SGD` (the
        base ``configure_optimizer``: dampening 0, nesterov off)."""
        if wd:
            g = g + wd * W[key]
        if momentum:
            buf = bufs.get(key)
            if buf is None:
                # g is always fresh here (grad matmul/outer-product output,
                # or the wd sum above) — adopt it as the buffer instead of
                # cloning; callers never reuse g after this step
                buf = g if g.dtype == W[key].dtype else g.astype(W[key].dtype)
                bufs[key] = buf
            else:
                buf *= momentum
                buf += g
            # W -= lr * buf, with the product staged in recycled scratch
            tmp = self._take(buf.shape, buf.dtype)
            np.multiply(buf, lr, out=tmp)
            W[key] -= tmp
            self._give(tmp)
        else:
            # g is fresh in this path (raw grad or the wd sum above), so
            # scaling it in place is safe; the momentum buffer must never
            # take this shortcut
            g *= lr
            W[key] -= g
