"""MiniRedis: an in-process RESP server for broker tests and benchmarks.

The container that runs this repo's test suite has neither a redis server
nor a redis client library, yet the ``redis://`` broker's whole point is
worker *processes* coordinating through a real network queue.  MiniRedis
closes that gap: a tiny TCP server speaking RESP2 and implementing exactly
the command subset the broker and workers use (strings, hashes, lists with
blocking pops, MULTI/EXEC).  Worker subprocesses connect to it over
loopback exactly as they would to a production redis — same wire protocol,
same client (:mod:`repro.runtime.resp`) — so the multi-process turn loop
is exercised for real, and CI can point the same tests at a genuine redis
service container via ``REDIS_URL``.

Fidelity notes (deliberate simplifications):

* single global lock — commands are atomic, as in redis's event loop;
* ``BLPOP``/``BRPOP`` wait on a condition variable with the redis nil-on-
  timeout contract;
* ``MULTI``/``EXEC`` queue per-connection and execute under the lock
  (no WATCH);
* no persistence, expiry, or pub/sub.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["MiniRedis"]

_NIL = object()  # sentinel distinguishing "no reply value" from None (nil)


class _Simple(bytes):
    """A RESP simple string (``+OK``), as opposed to a bulk string."""


_OK = _Simple(b"OK")
_PONG = _Simple(b"PONG")


class _Error(Exception):
    """Reported to the client as a RESP error, never raised out of the server."""


class _Handler(socketserver.BaseRequestHandler):
    server: "MiniRedisServer"

    def setup(self) -> None:
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buf = b""
        self._multi: Optional[List[List[bytes]]] = None

    # -- RESP framing --------------------------------------------------
    def _read_line(self) -> Optional[bytes]:
        while True:
            idx = self._buf.find(b"\r\n")
            if idx >= 0:
                line, self._buf = self._buf[:idx], self._buf[idx + 2:]
                return line
            try:
                chunk = self.request.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._buf += chunk

    def _read_exact(self, n: int) -> Optional[bytes]:
        while len(self._buf) < n:
            try:
                chunk = self.request.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._buf += chunk
        data, self._buf = self._buf[:n], self._buf[n:]
        return data

    def _read_command(self) -> Optional[List[bytes]]:
        line = self._read_line()
        if line is None:
            return None
        if not line.startswith(b"*"):
            raise _Error(f"ERR protocol: expected array, got {line[:16]!r}")
        args: List[bytes] = []
        for _ in range(int(line[1:])):
            header = self._read_line()
            if header is None or not header.startswith(b"$"):
                return None
            data = self._read_exact(int(header[1:]))
            if data is None or self._read_exact(2) is None:
                return None
            args.append(data)
        return args

    def _send(self, reply: Any) -> None:
        self.request.sendall(_encode_reply(reply))

    # -- main loop -----------------------------------------------------
    def handle(self) -> None:
        while not self.server.mini.closed:
            try:
                args = self._read_command()
            except _Error as exc:
                self._send(exc)
                continue
            except ValueError:
                return
            if args is None:
                return
            if not args:
                continue
            cmd = args[0].upper().decode("ascii", "replace")
            try:
                if cmd == "MULTI":
                    self._multi = []
                    self._send(_OK)
                elif cmd == "DISCARD":
                    self._multi = None
                    self._send(_OK)
                elif cmd == "EXEC":
                    queued, self._multi = self._multi, None
                    if queued is None:
                        raise _Error("ERR EXEC without MULTI")
                    self._send(self.server.mini.exec_multi(queued))
                elif self._multi is not None:
                    self._multi.append(args)
                    self._send(_Simple(b"QUEUED"))
                else:
                    self._send(self.server.mini.dispatch(args))
            except _Error as exc:
                self._send(exc)
            except OSError:
                return


def _encode_reply(reply: Any) -> bytes:
    if isinstance(reply, _Error):
        return b"-%s\r\n" % str(reply).encode("utf8", "replace")
    if isinstance(reply, _Simple):
        return b"+%s\r\n" % bytes(reply)
    if isinstance(reply, bytes):
        return b"$%d\r\n%s\r\n" % (len(reply), reply)
    if isinstance(reply, bool):
        return b":%d\r\n" % int(reply)
    if isinstance(reply, int):
        return b":%d\r\n" % reply
    if reply is None:
        return b"$-1\r\n"
    if reply is _NIL:
        return b"*-1\r\n"
    if isinstance(reply, (list, tuple)):
        return b"*%d\r\n%s" % (len(reply), b"".join(_encode_reply(r) for r in reply))
    raise TypeError(f"cannot encode reply {type(reply).__name__}")


class MiniRedisServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    mini: "MiniRedis"


class MiniRedis:
    """The datastore + server lifecycle.  ``start()`` binds an ephemeral
    loopback port and returns the instance; ``url`` is ready for
    ``Broker(...)`` or a worker subprocess."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = int(port)
        self.data: Dict[bytes, Any] = {}
        self.lock = threading.Lock()
        self.wakeup = threading.Condition(self.lock)
        self.closed = False
        self._server: Optional[MiniRedisServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MiniRedis":
        server = MiniRedisServer((self._host, self._port), _Handler)
        server.mini = self
        self._server = server
        self._port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            name="miniredis", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self.closed = True
        with self.lock:
            self.wakeup.notify_all()
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MiniRedis":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self._port

    @property
    def url(self) -> str:
        return f"redis://{self._host}:{self._port}/0"

    # -- command dispatch (atomic under self.lock) ---------------------
    def dispatch(self, args: List[bytes]) -> Any:
        cmd = args[0].upper().decode("ascii", "replace")
        if cmd in ("BLPOP", "BRPOP"):
            return self._blocking_pop(cmd, args[1:])
        with self.lock:
            return self._apply(cmd, args[1:])

    def exec_multi(self, queued: List[List[bytes]]) -> List[Any]:
        with self.lock:
            replies = []
            for args in queued:
                cmd = args[0].upper().decode("ascii", "replace")
                try:
                    replies.append(self._apply(cmd, args[1:]))
                except _Error as exc:
                    replies.append(exc)
            return replies

    # -- primitives ----------------------------------------------------
    def _list(self, key: bytes) -> List[bytes]:
        value = self.data.get(key)
        if value is None:
            value = self.data[key] = []
        elif not isinstance(value, list):
            raise _Error("WRONGTYPE Operation against a key holding the wrong kind of value")
        return value

    def _hash(self, key: bytes) -> Dict[bytes, bytes]:
        value = self.data.get(key)
        if value is None:
            value = self.data[key] = {}
        elif not isinstance(value, dict):
            raise _Error("WRONGTYPE Operation against a key holding the wrong kind of value")
        return value

    def _blocking_pop(self, cmd: str, args: List[bytes]) -> Any:
        keys, timeout = args[:-1], float(args[-1])
        deadline = None if timeout == 0 else time.monotonic() + timeout
        side = 0 if cmd == "BLPOP" else -1
        with self.lock:
            while not self.closed:
                for key in keys:
                    value = self.data.get(key)
                    if isinstance(value, list) and value:
                        item = value.pop(side)
                        if not value:
                            del self.data[key]
                        return [key, item]
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return _NIL
                self.wakeup.wait(timeout=remaining if remaining is not None else 0.25)
            return _NIL

    def _apply(self, cmd: str, args: List[bytes]) -> Any:  # noqa: PLR0911,PLR0912
        data = self.data
        if cmd == "PING":
            return _PONG
        if cmd == "ECHO":
            return args[0]
        if cmd == "SELECT":
            return _OK  # single keyspace; db index accepted and ignored
        if cmd == "AUTH":
            return _OK
        if cmd in ("FLUSHDB", "FLUSHALL"):
            data.clear()
            return _OK
        if cmd == "SET":
            data[args[0]] = args[1]
            return _OK
        if cmd == "GET":
            value = data.get(args[0])
            if value is not None and not isinstance(value, bytes):
                raise _Error("WRONGTYPE Operation against a key holding the wrong kind of value")
            return value
        if cmd == "INCR":
            value = int(data.get(args[0], b"0"))
            data[args[0]] = str(value + 1).encode("ascii")
            return value + 1
        if cmd == "DEL":
            removed = 0
            for key in args:
                removed += 1 if data.pop(key, None) is not None else 0
            return removed
        if cmd == "EXISTS":
            return sum(1 for key in args if key in data)
        if cmd == "KEYS":
            # only the '*' pattern (all keys); enough for test cleanup
            if args[0] != b"*":
                raise _Error("ERR miniredis KEYS supports only the '*' pattern")
            return sorted(data)
        # hashes -------------------------------------------------------
        if cmd == "HSET":
            h = self._hash(args[0])
            added = 0
            for i in range(1, len(args) - 1, 2):
                added += 0 if args[i] in h else 1
                h[args[i]] = args[i + 1]
            return added
        if cmd == "HGET":
            value = data.get(args[0])
            if value is None:
                return None
            if not isinstance(value, dict):
                raise _Error("WRONGTYPE Operation against a key holding the wrong kind of value")
            return value.get(args[1])
        if cmd == "HDEL":
            value = data.get(args[0])
            if not isinstance(value, dict):
                return 0
            removed = sum(1 for f in args[1:] if value.pop(f, None) is not None)
            if not value:
                del data[args[0]]
            return removed
        if cmd == "HEXISTS":
            value = data.get(args[0])
            return 1 if isinstance(value, dict) and args[1] in value else 0
        if cmd == "HLEN":
            value = data.get(args[0])
            return len(value) if isinstance(value, dict) else 0
        if cmd == "HGETALL":
            value = data.get(args[0])
            if value is None:
                return []
            if not isinstance(value, dict):
                raise _Error("WRONGTYPE Operation against a key holding the wrong kind of value")
            flat: List[bytes] = []
            for field, item in value.items():
                flat.extend((field, item))
            return flat
        # lists --------------------------------------------------------
        if cmd in ("LPUSH", "RPUSH"):
            lst = self._list(args[0])
            for item in args[1:]:
                if cmd == "LPUSH":
                    lst.insert(0, item)
                else:
                    lst.append(item)
            self.wakeup.notify_all()
            return len(lst)
        if cmd in ("LPOP", "RPOP"):
            value = data.get(args[0])
            if not isinstance(value, list) or not value:
                return None
            item = value.pop(0 if cmd == "LPOP" else -1)
            if not value:
                del data[args[0]]
            return item
        if cmd == "LLEN":
            value = data.get(args[0])
            return len(value) if isinstance(value, list) else 0
        if cmd == "LRANGE":
            value = data.get(args[0])
            if not isinstance(value, list):
                return []
            start, stop = int(args[1]), int(args[2])
            stop = len(value) if stop == -1 else stop + 1
            return list(value[start:stop])
        raise _Error(f"ERR unknown command '{cmd}' (miniredis implements the broker subset)")
