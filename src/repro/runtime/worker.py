"""The ``repro worker`` process: pulls client turns from a redis broker.

Started as ``python -m repro worker redis://host:port/0?run=<ns>`` (or
auto-spawned by :class:`~repro.runtime.redis.RedisBroker` with
``?workers=N``).  On startup the worker fetches the experiment spec the
broker published, rebuilds an identical trainer node from the same seeded
factories the engine uses — which is what makes its turns bit-identical to
in-process execution — and loops::

    BRPOP turn -> lease -> swap in snapshot -> run method -> swap out
    -> MULTI{snapshot, done-record, result-ack, lease-release}EXEC

A heartbeat thread renews the worker's liveness stamp and the active
turn's lease; if the process dies mid-turn the lease expires and the
engine-side collector requeues the turn.  Before running a turn the worker
checks the ``done`` hash — a requeued duplicate of a *completed* turn
re-acks the recorded result instead of re-training, so retries cannot
double-advance client state.

Environment knobs (used by the regression tests):

``REPRO_WORKER_TURN_DELAY``
    Seconds to sleep after claiming a turn and before training — widens
    the kill window for dead-worker tests.
``REPRO_WORKER_MAX_TURNS``
    Exit after this many turns (crash-recovery tests).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
import traceback
from collections import OrderedDict
from typing import Any, Optional

from repro.runtime import serde
from repro.runtime.redis import RedisUrl, parse_redis_url
from repro.runtime.resp import RespClient, RespError
from repro.utils.logging import get_logger

_LOG = get_logger("worker")

__all__ = ["BrokerWorker", "run_worker"]


class BrokerWorker:
    """One turn-pulling worker bound to a broker namespace."""

    def __init__(self, url: str, worker_id: Optional[str] = None) -> None:
        self.cfg: RedisUrl = parse_redis_url(url)
        if not self.cfg.run:
            raise ValueError(
                "worker URL needs the broker's run namespace "
                "(redis://host:port/db?run=<id>); the engine logs it at start"
            )
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self._conn: Optional[RespClient] = None
        self._hb_conn: Optional[RespClient] = None
        self._current_turn: Optional[int] = None
        self._stopping = threading.Event()
        # a graceful stop request (signal or stop()) is separate from
        # _stopping: the heartbeat thread must keep renewing the in-flight
        # turn's lease until that turn actually completes
        self._stop_requested = threading.Event()
        self.node: Any = None
        self.provider: Any = None
        self.baseline: Any = None
        self.turns_run = 0
        # decoded global-state payloads, keyed by the engine's intern key;
        # a round's whole cohort shares one entry, async policies keep a
        # few recent versions warm
        self._gstate_cache: "OrderedDict[int, Any]" = OrderedDict()
        self._gstate_cache_cap = 4

    # ------------------------------------------------------------------
    # startup: reconstruct an engine-identical trainer node from the spec
    # ------------------------------------------------------------------
    def connect(self) -> None:
        self._conn = RespClient(self.cfg.host, self.cfg.port, db=self.cfg.db,
                                password=self.cfg.password)
        self._hb_conn = RespClient(self.cfg.host, self.cfg.port, db=self.cfg.db,
                                   password=self.cfg.password)

    def load(self) -> None:
        """Fetch the published spec and build node + data provider."""
        assert self._conn is not None
        spec_yaml = self._conn.execute("GET", self.cfg.key("spec"))
        meta_raw = self._conn.execute("GET", self.cfg.key("meta"))
        if spec_yaml is None or meta_raw is None:
            raise RespError(
                f"no experiment published under namespace "
                f"{self.cfg.namespace()!r} — is the engine running?"
            )
        meta = json.loads(meta_raw)

        from repro.data.views import ClientDataProvider
        from repro.experiment import spec as spec_mod
        from repro.node.node import Node
        from repro.topology.base import NodeRole, NodeSpec

        spec = spec_mod.ExperimentSpec.from_yaml(
            spec_yaml.decode("utf8") if isinstance(spec_yaml, bytes) else spec_yaml
        )
        datamodule = spec_mod.resolve_datamodule(spec)
        model_fn = spec_mod.resolve_model_fn(spec, datamodule)
        algorithm_fn = spec_mod.resolve_algorithm_fn(spec)
        compressor_fn, outer_compressor_fn, dp_fn = spec_mod.resolve_plugin_fns(spec)
        seed = int(spec.seed)

        num_clients = meta.get("num_clients")
        if num_clients is None:
            num_clients = spec_mod.resolve_topology(spec).trainer_count()
        # pure function of (spec, cohort, classes): this process derives the
        # same attacker set the engine (and every other worker) derived
        attack_plan = spec_mod.resolve_attack_plan(
            spec, int(num_clients), datamodule.num_classes
        )
        self.provider = ClientDataProvider(
            datamodule,
            int(num_clients),
            spec.data.partition,
            alpha=spec.data.partition_alpha,
            seed=seed,
            feature_noniid=float(spec.data.feature_noniid),
        )
        # mirror the engine's make_node for a pool worker exactly: same
        # seeded factories, trainer-role plugins, no mounted shard
        nspec = NodeSpec(
            name=f"broker_worker_{self.worker_id}",
            index=1_000_000,
            role=NodeRole.TRAINER,
        )
        self.node = Node(
            spec=nspec,
            model=model_fn(),
            algorithm=algorithm_fn(),
            train_dataset=None,
            test_dataset=datamodule.test,
            batch_size=int(spec.data.batch_size),
            seed=seed,
            dp=dp_fn() if dp_fn is not None else None,
            compressor=compressor_fn() if compressor_fn is not None else None,
            outer_compressor=outer_compressor_fn() if outer_compressor_fn is not None else None,
            drop_prob=spec.faults.drop_prob,
            straggler_prob=spec.faults.straggler_prob,
            straggler_delay=spec.faults.straggler_delay,
            attack=attack_plan.attack if attack_plan is not None else None,
            attacker_ids=attack_plan.attacker_ids if attack_plan is not None else (),
        )
        self.node.setup_local()
        self.baseline = self.node.pool_baseline()

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        assert self._hb_conn is not None
        period = self.cfg.heartbeat
        while not self._stopping.wait(period):
            try:
                self._hb_conn.execute(
                    "HSET", self.cfg.key("hb"), self.worker_id, time.time()
                )
                turn = self._current_turn
                if turn is not None:
                    self._hb_conn.execute(
                        "HSET", self.cfg.key("leases"), turn,
                        json.dumps({"worker": self.worker_id,
                                    "deadline": time.time() + self.cfg.lease}),
                    )
            except RespError:
                return  # connection gone; main loop will notice and exit

    # ------------------------------------------------------------------
    # the turn loop
    # ------------------------------------------------------------------
    def run(self, max_turns: Optional[int] = None) -> int:
        """Pull and execute turns until stopped; returns turns completed."""
        if self._conn is None:
            self.connect()
        if self.node is None:
            self.load()
        assert self._conn is not None
        self._conn.execute("HSET", self.cfg.key("hb"), self.worker_id, time.time())
        hb = threading.Thread(target=self._heartbeat_loop,
                              name="worker-heartbeat", daemon=True)
        hb.start()
        env_cap = os.environ.get("REPRO_WORKER_MAX_TURNS")
        if max_turns is None and env_cap:
            max_turns = int(env_cap)
        _LOG.info("worker %s serving namespace %s", self.worker_id, self.cfg.namespace())
        try:
            while max_turns is None or self.turns_run < max_turns:
                if self._stop_requested.is_set() or self._stopping.is_set():
                    # graceful shutdown (SIGTERM/SIGINT or stop()): the
                    # in-flight turn already completed — _handle_turn's MULTI
                    # released its lease — so exit and deregister below
                    break
                if self._conn.execute("GET", self.cfg.key("stop")) is not None:
                    break
                item = self._conn.brpop(self.cfg.key("turns"), timeout=1.0)
                if item is None:
                    continue
                frame = item[1]
                if frame == b"STOP":
                    break
                self._handle_turn(frame)
        except RespError as exc:
            _LOG.error("worker %s lost its broker connection: %s", self.worker_id, exc)
            return self.turns_run
        finally:
            self._stopping.set()
            try:
                self._conn.execute("HDEL", self.cfg.key("hb"), self.worker_id)
            except RespError:
                pass
        return self.turns_run

    def stop(self) -> None:
        """Request a graceful shutdown: finish the in-flight turn, then exit.

        Sets ``_stop_requested`` rather than ``_stopping`` so the heartbeat
        thread keeps renewing the worker's lease until the current turn has
        actually been committed back to the broker.
        """
        self._stop_requested.set()

    def _resolve_gstate(self, args: tuple) -> tuple:
        """Swap an interned-payload sentinel for the decoded global state.

        The engine ships each dispatch epoch's model to the ``gstate`` hash
        once and sends ``{GSTATE_KEY: key}`` in the turn frame; decoding it
        once per key (instead of once per turn) is the worker half of the
        round-decode cache.  The decoded payload is shared across turns and
        must be treated as read-only — same contract as the in-process
        pool, where one payload dict fans out to the whole cohort.
        """
        head = args[0] if args else None
        if not (isinstance(head, dict) and len(head) == 1
                and serde.GSTATE_KEY in head):
            return args
        gkey = int(head[serde.GSTATE_KEY])
        payload = self._gstate_cache.get(gkey)
        if payload is None:
            assert self._conn is not None
            frame = self._conn.execute("HGET", self.cfg.key("gstate"), gkey)
            if frame is None:
                # the engine prunes only keys no in-flight turn references,
                # so a miss means the run is gone or the namespace was wiped
                raise RuntimeError(
                    f"interned global state {gkey} missing from broker"
                )
            payload = serde.decode_payload(frame)
            self._gstate_cache[gkey] = payload
            while len(self._gstate_cache) > self._gstate_cache_cap:
                self._gstate_cache.popitem(last=False)
        else:
            self._gstate_cache.move_to_end(gkey)
        return (payload,) + tuple(args[1:])

    def _handle_turn(self, frame: bytes) -> None:
        assert self._conn is not None
        conn = self._conn
        turn_id, client, method, args, kwargs = serde.decode_turn(frame)
        # duplicate of a completed turn (requeued by a lease sweep that
        # raced the ack): re-ack the recorded result, never re-train
        done = conn.execute("HGET", self.cfg.key("done"), turn_id)
        if done is not None:
            conn.execute("LPUSH", self.cfg.key("results"), done)
            return
        conn.execute(
            "HSET", self.cfg.key("leases"), turn_id,
            json.dumps({"worker": self.worker_id,
                        "deadline": time.time() + self.cfg.lease}),
        )
        self._current_turn = turn_id
        delay = float(os.environ.get("REPRO_WORKER_TURN_DELAY", "0") or 0)
        if delay:
            time.sleep(delay)
        snap_frame: Optional[bytes] = None
        try:
            args = self._resolve_gstate(args)
            raw = conn.execute("HGET", self.cfg.key("snap"), client)
            snapshot = None if raw is None else serde.decode_snapshot(raw)
            needs_data = method in ("local_update", "run_round")
            dataset = self.provider.view(client) if needs_data else None
            self.node.begin_client_turn(client, snapshot, dataset, self.baseline)
            try:
                value = getattr(self.node, method)(*args, **kwargs)
            finally:
                # swap out even after a failed turn (dedicated-node
                # semantics: the client keeps whatever state the failure
                # left), mirroring the memory broker's _run_turn
                turns = snapshot.turns if snapshot is not None else 0
                snap_frame = serde.encode_snapshot(self.node.end_client_turn(turns))
            result_frame = serde.encode_result(
                turn_id, client, value,
                snap_bytes=len(snap_frame), worker=self.worker_id,
            )
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            result_frame = serde.encode_error(
                turn_id, client, exc, traceback_text=traceback.format_exc(),
                snap_bytes=len(snap_frame) if snap_frame else 0,
                worker=self.worker_id,
            )
        # swap-out + done-record + ack + lease release, atomically: a lease
        # sweep observes either "running" or "fully completed", never a
        # half-acked turn it might requeue against a stale snapshot
        commands = [("HSET", self.cfg.key("done"), turn_id, result_frame),
                    ("LPUSH", self.cfg.key("results"), result_frame),
                    ("HDEL", self.cfg.key("leases"), turn_id)]
        if snap_frame is not None:
            commands.insert(0, ("HSET", self.cfg.key("snap"), client, snap_frame))
        conn.multi(commands)
        self._current_turn = None
        self.turns_run += 1


def run_worker(url: str, worker_id: Optional[str] = None,
               max_turns: Optional[int] = None) -> int:
    """CLI entrypoint (``python -m repro worker <url>``); returns exit code."""
    try:
        worker = BrokerWorker(url, worker_id=worker_id)
        worker.connect()
        worker.load()
    except (RespError, ValueError) as exc:
        _LOG.error("worker startup failed: %s", exc)
        return 2

    # graceful shutdown: SIGTERM/SIGINT finish the in-flight turn (its MULTI
    # releases the lease and acks the result), then the run loop exits and
    # deregisters the heartbeat — no dead-worker requeue needed for a turn
    # that actually completed
    def _graceful(signum, frame):  # noqa: ARG001 - signal handler signature
        _LOG.info(
            "worker %s received signal %d, finishing current turn",
            worker.worker_id, signum,
        )
        worker.stop()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)

    worker.run(max_turns=max_turns)
    _LOG.info("worker %s exiting after %d turns", worker.worker_id, worker.turns_run)
    return 0
