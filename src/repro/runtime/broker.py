"""Turn-queue brokers: pluggable transport behind the client pool.

The :class:`~repro.runtime.pool.ClientPool` owns *policy* — per-client
FIFO, the admission window, demand semantics — and delegates *transport*
(where a started turn actually executes) to a :class:`TurnBroker`.  Brokers
are chosen by URL scheme through a registry, mirroring the WorQ/pymq
``Broker('memory://')`` pattern:

===========  ===============================================================
scheme       execution substrate
===========  ===============================================================
memory       in-process worker-node actor threads (the classic pool; default)
redis        worker *processes* pulling turns from a redis list, with the
             ``ClientStateStore`` sharded into a redis hash (see
             :mod:`repro.runtime.redis`)
===========  ===============================================================

``Broker(url)`` builds the right broker, raising :class:`ValueError` for
unknown schemes with the registered schemes named.  Third parties register
their own via :func:`register_broker`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Type
from urllib.parse import urlparse

from repro.engine.client_state import ClientStateStore, StateArena
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine
    from repro.runtime.pool import ClientPool, PoolTicket

__all__ = [
    "BROKER_SCHEMES",
    "register_broker",
    "broker_scheme",
    "broker_class",
    "Broker",
    "TurnBroker",
    "MemoryBroker",
    "BrokerError",
    "BrokerTurnLost",
    "BrokerUnavailable",
    "PeerLostError",
]

_LOG = get_logger("broker")

#: scheme -> broker class; extend with :func:`register_broker`
BROKER_SCHEMES: Dict[str, Type["TurnBroker"]] = {}


class BrokerError(RuntimeError):
    """A broker-layer failure (transport, lease, worker loss)."""


class BrokerTurnLost(BrokerError):
    """A dispatched turn can no longer complete: the worker holding its
    lease died (or never claimed it) and the retry budget is exhausted.
    Delivered through the ticket, so a scheduler blocked on ``result()``
    fails fast instead of stalling the run."""


class BrokerUnavailable(BrokerError, ConnectionError):
    """The broker backend cannot be reached."""


class PeerLostError(BrokerError):
    """A live cluster member serving this turn's client left or was evicted
    by the failure detector.  Unlike :class:`BrokerTurnLost` (a fatal loss
    on a substrate that promised delivery), peer loss is an *expected* event
    in live mode: the scheduler maps it onto the dropped-dispatch path, so
    the run continues on the surviving membership."""


def register_broker(scheme: str) -> Callable[[Type["TurnBroker"]], Type["TurnBroker"]]:
    """Class decorator: make ``scheme://...`` URLs build the class."""

    def deco(cls: Type["TurnBroker"]) -> Type["TurnBroker"]:
        cls.scheme = scheme
        BROKER_SCHEMES[scheme] = cls
        return cls

    return deco


def broker_scheme(url: str) -> str:
    """Validate ``url`` and return its (registered) scheme."""
    if not isinstance(url, str) or not url:
        raise ValueError(f"invalid broker URL: {url!r} (expected a scheme:// string)")
    scheme = urlparse(url).scheme
    if scheme not in BROKER_SCHEMES:
        known = ", ".join(sorted(BROKER_SCHEMES))
        raise ValueError(
            f"invalid broker URL {url!r}: unknown scheme {scheme!r} "
            f"(registered schemes: {known})"
        )
    return scheme


def broker_class(url: str) -> Type["TurnBroker"]:
    return BROKER_SCHEMES[broker_scheme(url)]


def Broker(url: str, **kwargs: Any) -> "TurnBroker":  # noqa: N802 - factory styled as a type
    """Build the broker for ``url`` (``ValueError`` on unknown schemes)."""
    return broker_class(url)(url, **kwargs)


# ----------------------------------------------------------------------
class TurnBroker:
    """Transport contract between the pool and an execution substrate.

    Lifecycle: construct -> ``attach(pool)`` -> ``start()`` -> many
    ``execute(ticket)`` -> ``shutdown()``.  ``capacity_free`` and
    ``execute`` are always called under the pool's lock (so they must not
    block on turn completion); a broker reports each finished turn back via
    ``pool.turn_done(ticket, result, exc, release=...)``, which re-pumps the
    queue.
    """

    #: registry key, set by :func:`register_broker`
    scheme: str = "?"
    #: True when turns execute outside this process (workers are remote)
    distributed: bool = False
    #: True when :meth:`execute_batch` can fuse several compatible turns
    #: into one substrate dispatch (the pool downgrades ``batch_turns``
    #: to per-turn execution otherwise)
    supports_batching: bool = False

    #: where client snapshots live between turns (brokers may shard this
    #: behind the transport; the attribute always answers locally)
    store: ClientStateStore

    def __init__(self, url: str, **kwargs: Any) -> None:
        self.url = url

    # -- lifecycle -----------------------------------------------------
    def attach(self, pool: "ClientPool") -> None:
        """Called once by the pool that owns this broker."""
        self.pool = pool

    def start(self) -> None:
        """Bring up the substrate (capture baselines, connect, spawn)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down transport and workers; idempotent."""
        raise NotImplementedError

    # -- dispatch (called under the pool lock) -------------------------
    def capacity_free(self) -> bool:
        """True when another turn can be dispatched right now."""
        raise NotImplementedError

    def execute(self, ticket: "PoolTicket") -> None:
        """Dispatch one started ticket; must return without waiting."""
        raise NotImplementedError

    def execute_batch(self, tickets: List["PoolTicket"]) -> None:
        """Dispatch several started tickets as one fused unit.  Every
        ticket must still be reported individually through
        ``pool.turn_done`` with results bit-identical to per-turn
        execution; brokers advertise support via ``supports_batching``."""
        raise NotImplementedError(f"{type(self).__name__} does not batch turns")

    # -- introspection (telemetry reads these on the record path) ------
    @property
    def pool_size(self) -> int:
        """Execution slots (workers) this broker dispatches onto."""
        raise NotImplementedError

    def default_window(self) -> int:
        """Admission-window size when the spec does not pin one."""
        return max(2 * max(self.pool_size, 1), 4)

    def queue_depth(self) -> int:
        """Turns dispatched to the substrate and not yet completed."""
        raise NotImplementedError

    def idle_workers(self) -> int:
        """Workers currently free (best-effort for remote substrates)."""
        raise NotImplementedError

    def snapshot_bytes(self) -> int:
        """Bytes of client state held behind this broker."""
        return self.store.nbytes()

    def describe(self) -> Dict[str, Any]:
        return {"scheme": self.scheme, "url": self.url,
                "distributed": self.distributed, "workers": self.pool_size}


# ----------------------------------------------------------------------
@register_broker("memory")
class MemoryBroker(TurnBroker):
    """The in-process substrate: turns run on worker-node actor threads.

    Reproduces the pre-broker ``ClientPool`` dispatch bit-identically —
    same swap-in/turn/swap-out spans on the same actor threads, same
    free-worker LIFO — so ``memory://`` is a pure refactor of the classic
    pool, not a behavioral fork.
    """

    distributed = False
    supports_batching = True

    def __init__(
        self,
        url: str = "memory://",
        *,
        engine: "Engine",
        worker_positions,
        num_clients: Optional[int] = None,
        **_: Any,
    ) -> None:
        super().__init__(url)
        if not worker_positions:
            raise ValueError("client pool needs at least one worker node")
        self._engine = engine
        self._worker_pos = [int(w) for w in worker_positions]
        self._free = list(self._worker_pos)
        # with a known cohort size, back snapshots with a preallocated
        # per-client arena so steady-state state swaps are allocation-free
        arena = StateArena(num_clients) if num_clients else None
        self.store = ClientStateStore(arena=arena)
        self._baseline: Optional[Dict[str, Any]] = None
        self._inflight = 0
        # id(node) -> FusedTurnRunner-or-None, built lazily per worker node;
        # all runners share one scratch pool so recycled fused temporaries
        # are bounded globally rather than per worker
        self._runners: Dict[int, Any] = {}
        self._scratch: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Capture the pristine first-turn state (once, from any worker —
        all workers are built identically from the same seeded factories)."""
        if self._baseline is None:
            self._baseline = self._engine.actors[self._worker_pos[0]].call(
                "pool_baseline", timeout=60
            )

    def shutdown(self) -> None:
        # worker actors belong to the engine; nothing broker-owned to stop
        pass

    # -- dispatch ------------------------------------------------------
    @property
    def pool_size(self) -> int:
        return len(self._worker_pos)

    def capacity_free(self) -> bool:
        return bool(self._free)

    def execute(self, ticket: "PoolTicket") -> None:
        if self._baseline is None:
            self.start()
        worker = self._free.pop()
        self._inflight += 1
        future = self._engine.actors[worker].submit_call(self._run_turn, ticket)
        future.add_done_callback(
            lambda f, t=ticket, w=worker: self._on_turn_done(t, w, f)
        )

    def _run_turn(self, node, ticket: "PoolTicket") -> Any:
        """Inject state -> run -> extract state, on the worker's thread."""
        tracer = self._engine.tracer
        snapshot = self.store.get(ticket.client)
        dataset = self.pool.data_view(ticket)
        assert self._baseline is not None
        with tracer.span("pool.swap_in", cat="pool", client=ticket.client):
            node.begin_client_turn(ticket.client, snapshot, dataset, self._baseline)
        try:
            with tracer.span("pool.turn", cat="pool",
                             client=ticket.client, method=ticket.method):
                return getattr(node, ticket.method)(*ticket.args, **ticket.kwargs)
        finally:
            # extract even after a failed turn: the client keeps whatever
            # state the failure left (dedicated-node semantics), and the
            # next begin_client_turn fully re-initializes the worker either
            # way, so reuse cannot leak state across clients
            turns = snapshot.turns if snapshot is not None else 0
            with tracer.span("pool.swap_out", cat="pool", client=ticket.client):
                self.store.put(ticket.client, node.end_client_turn(turns))

    def _on_turn_done(self, ticket: "PoolTicket", worker: int, future) -> None:
        def release() -> None:  # runs under the pool lock, before the pump
            self._free.append(worker)
            self._inflight -= 1

        self.pool.turn_done(ticket, future.result() if future.exception() is None
                            else None, future.exception(), release=release)

    # -- batched dispatch ----------------------------------------------
    def execute_batch(self, tickets: List["PoolTicket"]) -> None:
        """Run several compatible turns on ONE worker as a fused pass."""
        if self._baseline is None:
            self.start()
        worker = self._free.pop()
        self._inflight += len(tickets)
        future = self._engine.actors[worker].submit_call(self._run_batch, list(tickets))
        future.add_done_callback(
            lambda f, ts=tickets, w=worker: self._on_batch_done(ts, w, f)
        )

    def _runner_for(self, node) -> Any:
        """The node's fused-turn runner, or None when the configured
        algorithm/model/plugins rule fusion out (cached per worker node)."""
        runner = self._runners.get(id(node))
        if runner is None and id(node) not in self._runners:
            context = node.fusion_context()
            if context is not None:
                from repro.runtime.fused import FusedTurnRunner, ScratchPool

                if self._scratch is None:
                    self._scratch = ScratchPool()
                runner = FusedTurnRunner(context, self._scratch)
            self._runners[id(node)] = runner
        return runner

    def _run_batch(self, node, tickets: List["PoolTicket"]) -> None:
        """Fused batch on the worker's thread; reports each ticket itself.

        The fused attempt reads snapshots/payloads without consuming or
        mutating any of them, so on *any* failure — runner ineligible for
        these tickets, or an unexpected error mid-math — falling back to
        the exact sequential per-turn path reproduces per-turn execution
        bit-identically.
        """
        tracer = self._engine.tracer
        assert self._baseline is not None
        runner = self._runner_for(node)
        if runner is not None and all(runner.turn_eligible(t) for t in tickets):
            jobs = [(t, self.store.get(t.client), self.pool.data_view(t))
                    for t in tickets]
            try:
                with tracer.span("pool.fused_batch", cat="pool",
                                 clients=len(tickets)):
                    outcomes = runner.run_batch(jobs, self._baseline)
            except Exception:  # noqa: BLE001 - fall back to the exact path
                _LOG.exception(
                    "fused batch failed; re-running %d turns sequentially",
                    len(tickets),
                )
                outcomes = None
            if outcomes is not None:
                done = []
                for ticket, (result, snapshot) in zip(tickets, outcomes):
                    self.store.put(ticket.client, snapshot)
                    done.append((ticket, result, None))
                self.pool.turns_done_batch(done)
                return
        for ticket in tickets:
            try:
                value = self._run_turn(node, ticket)
                exc: Optional[BaseException] = None
            except BaseException as err:  # noqa: BLE001 - per-turn semantics
                value, exc = None, err
            self.pool.turn_done(ticket, value, exc)

    def _on_batch_done(self, tickets: List["PoolTicket"], worker: int, future) -> None:
        exc = future.exception()
        if exc is not None:
            # _run_batch reports per ticket; getting here means the batch
            # machinery itself died — fail whatever was not yet reported
            for ticket in tickets:
                if not ticket.done():
                    self.pool.turn_done(ticket, None, exc)

        def release() -> None:  # runs under the pool lock, before the pump
            self._free.append(worker)
            self._inflight -= len(tickets)

        self.pool.release_capacity(release)

    # -- introspection -------------------------------------------------
    def queue_depth(self) -> int:
        return self._inflight

    def idle_workers(self) -> int:
        return len(self._free)
