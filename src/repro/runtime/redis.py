"""The ``redis://`` broker: client turns executed by worker processes.

Topology: the engine process runs scheduling (virtual-time queue, admission
window, per-client FIFO) and *submits* turns; worker processes — spawned
via ``python -m repro worker <url>`` or auto-spawned with ``?workers=N`` —
pull turns from a redis list and run them on locally-reconstructed nodes.
The :class:`~repro.engine.client_state.ClientStateStore` shards into a
redis hash: every turn swaps its client's snapshot in from the hash and
back out, using the :mod:`repro.comm.wire` codec (via
:mod:`repro.runtime.serde`) for transport, so a cohort's state lives
behind the broker rather than in any single process.

The turn loop and its failure protocol::

    engine                          redis                    worker
    ------                          -----                    ------
    LPUSH turn ------------------>  turns
                                    turns  --BRPOP---------> lease (HSET, TTL)
                                    snap   --HGET----------> swap-in
                                                             train
                                    MULTI: snap<-HSET (swap-out)
                                           done<-HSET (dedupe guard)
                                           results<-LPUSH (ack)
                                           leases<-HDEL
    BRPOP results <---------------  results
    resolve ticket

``local_update`` turns do not carry the global model: the engine interns
each dispatch epoch's payload once in the ``gstate`` hash and the turn
frame references it by key (workers keep a small decoded cache), so a
1000-client round ships one model, not one thousand.

Worker heartbeats renew active leases; the engine-side collector sweeps
the lease table and **requeues** turns whose lease expired (dead worker
mid-turn), up to ``max_requeues`` times.  Liveness and lease expiry are
judged by change detection against the engine's *monotonic* clock — never
by comparing worker wall-clock stamps to the engine's, which breaks under
cross-host skew or an NTP step (see :meth:`RedisBroker._sweep`).  A turn that stays unclaimed past
``claim_timeout`` with no live heartbeat — or that exhausts its requeues —
fails its ticket with :class:`~repro.runtime.broker.BrokerTurnLost`, so a
scheduler blocked on the admission window gets a failed ticket instead of
a stalled run.  Completed turns are recorded in the ``done`` hash; a
requeued duplicate re-acks the recorded result instead of re-training, so
retries cannot double-advance client state.

URL parameters (``redis://host:port/db?workers=2&lease=30``):

``workers``   worker processes to auto-spawn (default 0: external workers)
``lease``     seconds a claimed turn may go unrenewed before requeue (30)
``claim``     seconds an unclaimed turn may wait with no live workers (10)
``hb``        worker heartbeat period in seconds (1.0)
``requeues``  max requeues per turn before the ticket fails (2)
``inflight``  max dispatched-but-unresolved turns (256)
``run``       namespace id (default: derived from the spec + a nonce)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.runtime import serde
from repro.runtime.broker import (
    BrokerTurnLost,
    BrokerUnavailable,
    TurnBroker,
    register_broker,
)
from repro.runtime.resp import RespClient, RespError
from repro.utils.logging import get_logger

_LOG = get_logger("redis-broker")

__all__ = ["RedisBroker", "RedisUrl", "parse_redis_url", "RedisSnapshotStore"]


@dataclass
class RedisUrl:
    """Parsed broker URL: connection endpoint + protocol tuning."""

    url: str
    host: str = "127.0.0.1"
    port: int = 6379
    db: int = 0
    password: Optional[str] = None
    workers: int = 0
    lease: float = 30.0
    claim: float = 10.0
    heartbeat: float = 1.0
    max_requeues: int = 2
    inflight: int = 256
    run: str = ""

    def namespace(self) -> str:
        return f"repro:{self.run}" if self.run else "repro:run"

    def key(self, name: str) -> str:
        return f"{self.namespace()}:{name}"

    def with_run(self, run: str) -> str:
        """The URL string with the namespace pinned (handed to workers)."""
        base, sep, query = self.url.partition("?")
        params = [p for p in query.split("&") if p and not p.startswith("run=")]
        params.append(f"run={run}")
        return base + "?" + "&".join(params)


def parse_redis_url(url: str) -> RedisUrl:
    parsed = urlparse(url)
    if parsed.scheme != "redis":
        raise ValueError(f"not a redis URL: {url!r}")
    params = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
    path = (parsed.path or "").strip("/")
    out = RedisUrl(
        url=url,
        host=parsed.hostname or "127.0.0.1",
        port=parsed.port or 6379,
        db=int(path) if path else 0,
        password=parsed.password,
        workers=int(params.get("workers", 0)),
        lease=float(params.get("lease", 30.0)),
        claim=float(params.get("claim", 10.0)),
        heartbeat=float(params.get("hb", 1.0)),
        max_requeues=int(params.get("requeues", 2)),
        inflight=int(params.get("inflight", 256)),
        run=params.get("run", ""),
    )
    if out.lease <= 0 or out.claim <= 0 or out.heartbeat <= 0:
        raise ValueError(f"lease/claim/hb must be positive in {url!r}")
    return out


@dataclass
class _Entry:
    """Engine-side record of one dispatched, unresolved turn."""

    ticket: Any
    frame: bytes
    requeues: int = 0
    submitted: float = field(default_factory=time.monotonic)
    leased: bool = False
    gkey: Optional[int] = None  # interned global-state entry the frame references


class RedisSnapshotStore:
    """The ``ClientStateStore`` surface over the broker's snapshot hash.

    ``get``/``put``/``pop`` hit redis (each caller thread gets its own
    connection); ``__len__``/``nbytes`` answer from the broker's local
    tally — maintained from turn acks — so telemetry's record-path reads
    and post-shutdown introspection never need a live connection.
    """

    def __init__(self, broker: "RedisBroker") -> None:
        self._broker = broker
        self._local = threading.local()

    def _conn(self) -> RespClient:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._local.conn = self._broker._connect()
        return conn

    def get(self, client: int):
        frame = self._conn().execute("HGET", self._broker.cfg.key("snap"), int(client))
        return None if frame is None else serde.decode_snapshot(frame)

    def put(self, client: int, snapshot) -> None:
        frame = serde.encode_snapshot(snapshot)
        self._conn().execute("HSET", self._broker.cfg.key("snap"), int(client), frame)
        self._broker._note_snapshot(int(client), len(frame))

    def pop(self, client: int):
        snapshot = self.get(client)
        self._conn().execute("HDEL", self._broker.cfg.key("snap"), int(client))
        self._broker._note_snapshot(int(client), 0)
        return snapshot

    def clients(self) -> List[int]:
        with self._broker._tally_lock:
            return sorted(self._broker._snap_sizes)

    def __contains__(self, client: int) -> bool:
        with self._broker._tally_lock:
            return int(client) in self._broker._snap_sizes

    def __len__(self) -> int:
        with self._broker._tally_lock:
            return len(self._broker._snap_sizes)

    def nbytes(self) -> int:
        with self._broker._tally_lock:
            return sum(self._broker._snap_sizes.values())


@register_broker("redis")
class RedisBroker(TurnBroker):
    """Turns over a redis queue, executed by worker processes."""

    distributed = True

    def __init__(
        self,
        url: str,
        *,
        spec: Any = None,
        num_clients: Optional[int] = None,
        default_workers: Optional[int] = None,
        **_: Any,
    ) -> None:
        super().__init__(url)
        self.cfg = parse_redis_url(url)
        if self.cfg.workers == 0 and default_workers:
            self.cfg.workers = int(default_workers)
        self._spec = spec
        self._num_clients = num_clients
        self._entries: Dict[int, _Entry] = {}
        self._entry_lock = threading.Lock()
        self._tally_lock = threading.Lock()
        self._snap_sizes: Dict[int, int] = {}
        self._next_turn = 0
        # interned global-state payloads: the scheduler reuses one payload
        # object per dispatch epoch, so identity maps cleanly onto "ship the
        # model once per round" (strong refs keep the ids valid)
        self._gstate_ids: Dict[int, int] = {}  # id(payload) -> gkey
        self._gstate_refs: Dict[int, Any] = {}  # gkey -> payload
        self._gstate_next = 0
        # change-detection liveness state (see _sweep): raw hash values and
        # the engine monotonic instant each value was first observed
        self._hb_seen: Dict[Any, tuple] = {}
        self._lease_seen: Dict[int, tuple] = {}
        self._idle_workers = 0
        self._procs: List[subprocess.Popen] = []
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._conn: Optional[RespClient] = None
        self.store = RedisSnapshotStore(self)

    # ------------------------------------------------------------------
    def _connect(self) -> RespClient:
        try:
            return RespClient(self.cfg.host, self.cfg.port, db=self.cfg.db,
                              password=self.cfg.password)
        except RespError as exc:
            raise BrokerUnavailable(
                f"redis broker backend unreachable at "
                f"{self.cfg.host}:{self.cfg.port}: {exc}"
            ) from exc

    def start(self) -> None:
        if self._started:
            return
        if not self.cfg.run:
            # namespace every run uniquely so two experiments (or a retry)
            # sharing one redis cannot cross wires
            self.cfg.run = os.urandom(6).hex()
        self._conn = self._connect()
        self._conn.ping()
        meta = {"num_clients": self._num_clients, "created": time.time()}
        if self._spec is not None:
            try:
                spec_yaml = self._spec.to_yaml()
            except Exception as exc:
                raise ValueError(
                    "a redis:// broker ships the spec to worker processes, "
                    f"so it must serialize to YAML: {exc}"
                ) from exc
            self._conn.execute("SET", self.cfg.key("spec"), spec_yaml)
        self._conn.execute("SET", self.cfg.key("meta"), json.dumps(meta))
        self._spawn_workers()
        self._collector = threading.Thread(
            target=self._collect_loop, name="redis-broker-collector", daemon=True
        )
        self._started = True
        self._collector.start()
        _LOG.info(
            "redis broker up at %s:%d ns=%s workers=%d",
            self.cfg.host, self.cfg.port, self.cfg.namespace(), self.cfg.workers,
        )

    def _spawn_workers(self) -> None:
        if self.cfg.workers <= 0:
            return
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        worker_url = self.cfg.with_run(self.cfg.run)
        for i in range(self.cfg.workers):
            self._procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", worker_url],
                env=env,
            ))

    # -- dispatch (under the pool lock) --------------------------------
    @property
    def pool_size(self) -> int:
        return max(self.cfg.workers, 1)

    def default_window(self) -> int:
        return max(2 * self.pool_size, 8)

    def capacity_free(self) -> bool:
        with self._entry_lock:
            return len(self._entries) < self.cfg.inflight

    def execute(self, ticket) -> None:
        turn_id = self._next_turn
        self._next_turn += 1
        assert self._conn is not None
        args, gkey = ticket.args, None
        if (ticket.method == "local_update" and not ticket.kwargs
                and len(args) == 3 and isinstance(args[0], dict)):
            # intern the broadcast payload: ship the global state to redis
            # once per dispatch epoch and reference it by key, instead of
            # embedding a full model copy in every client's turn frame
            payload = args[0]
            gkey = self._gstate_ids.get(id(payload))
            if gkey is None:
                gkey = self._gstate_next
                self._gstate_next += 1
                # HSET must land before the turn frame is visible, so a
                # worker can never dequeue a sentinel it cannot resolve
                self._conn.execute("HSET", self.cfg.key("gstate"), gkey,
                                   serde.encode_payload(payload))
                self._gstate_ids[id(payload)] = gkey
                self._gstate_refs[gkey] = payload
                self._prune_gstate()
            args = ({serde.GSTATE_KEY: gkey},) + tuple(args[1:])
        frame = serde.encode_turn(
            turn_id, ticket.client, ticket.method, args, ticket.kwargs
        )
        with self._entry_lock:
            self._entries[turn_id] = _Entry(ticket=ticket, frame=frame, gkey=gkey)
        self._conn.execute("LPUSH", self.cfg.key("turns"), frame)

    def _prune_gstate(self) -> None:
        """Drop interned payloads no in-flight turn can still reference."""
        latest = self._gstate_next - 1
        with self._entry_lock:
            live = {e.gkey for e in self._entries.values() if e.gkey is not None}
        live.add(latest)
        assert self._conn is not None
        for gkey in [k for k in self._gstate_refs if k not in live]:
            payload = self._gstate_refs.pop(gkey)
            self._gstate_ids.pop(id(payload), None)
            self._conn.execute("HDEL", self.cfg.key("gstate"), gkey)

    # -- collector thread ----------------------------------------------
    def _collect_loop(self) -> None:
        conn = self._connect()
        last_sweep = 0.0
        try:
            while not self._stop.is_set():
                try:
                    item = conn.brpop(self.cfg.key("results"), timeout=0.5)
                except RespError as exc:
                    if self._stop.is_set():
                        return
                    self._fail_all(BrokerUnavailable(f"redis connection lost: {exc}"))
                    return
                if item is not None:
                    self._resolve(conn, item[1])
                now = time.monotonic()
                if now - last_sweep >= min(0.5, self.cfg.lease / 4):
                    last_sweep = now
                    try:
                        self._sweep(conn)
                    except RespError as exc:
                        if self._stop.is_set():
                            return
                        self._fail_all(BrokerUnavailable(f"redis connection lost: {exc}"))
                        return
        finally:
            conn.close()

    def _resolve(self, conn: RespClient, frame: bytes) -> None:
        try:
            result = serde.decode_result(frame)
        except Exception:
            _LOG.exception("undecodable result frame (%d bytes) dropped", len(frame))
            return
        turn_id = result["turn"]
        with self._entry_lock:
            entry = self._entries.pop(turn_id, None)
        conn.execute("HDEL", self.cfg.key("done"), turn_id)
        if entry is None:
            return  # duplicate ack from a requeued turn already resolved
        if result["snap_bytes"]:
            self._note_snapshot(result["client"], result["snap_bytes"])
        if result["ok"]:
            self.pool.turn_done(entry.ticket, result["value"], None)
        else:
            err = result["error"]
            detail = f"{err['type']}: {err['message']}"
            if err.get("traceback"):
                detail += f"\n--- worker {result['worker']} traceback ---\n{err['traceback']}"
            self.pool.turn_done(
                entry.ticket, None,
                RuntimeError(f"client {result['client']} turn failed on "
                             f"worker {result['worker']}: {detail}"),
            )

    def _sweep(self, conn: RespClient) -> None:
        """Requeue turns whose lease died; fail turns nobody can run.

        Liveness is judged by *change detection on the engine's monotonic
        clock*: workers stamp heartbeats and lease renewals with their own
        wall clock, which the engine must never compare against its own
        ``time.time()`` — across hosts (or across an NTP step) the two wall
        clocks can disagree by more than a lease, expiring turns on live
        workers or keeping dead ones alive.  Instead the engine records the
        raw hash value it last saw and how long ago (monotonic) it changed:
        a renewing worker rewrites the value every heartbeat period, so
        "value unchanged for longer than the lease/liveness window" is a
        clock-skew-immune death signal.
        """
        mono = time.monotonic()
        raw_leases: Dict[int, Any] = {}
        for tid_b, lease_b in conn.hgetall(self.cfg.key("leases")).items():
            try:
                raw_leases[int(tid_b)] = lease_b
            except (ValueError, TypeError):
                continue
        heartbeats = conn.hgetall(self.cfg.key("hb"))
        live_after = max(3.0 * self.cfg.heartbeat, 1.0)
        live = 0
        for worker, raw in heartbeats.items():
            seen = self._hb_seen.get(worker)
            if seen is None or seen[0] != raw:
                self._hb_seen[worker] = (raw, mono)
                live += 1
            elif mono - seen[1] < live_after:
                live += 1
        for worker in [w for w in self._hb_seen if w not in heartbeats]:
            del self._hb_seen[worker]
        with self._entry_lock:
            self._idle_workers = max(0, live - len(raw_leases))
            entries = dict(self._entries)
        for turn_id, entry in entries.items():
            raw = raw_leases.get(turn_id)
            if raw is not None:
                entry.leased = True
                seen = self._lease_seen.get(turn_id)
                if seen is None or seen[0] != raw:
                    self._lease_seen[turn_id] = (raw, mono)
                elif mono - seen[1] > self.cfg.lease:
                    try:
                        holder = json.loads(raw).get("worker", "?")
                    except (ValueError, TypeError):
                        holder = "?"
                    conn.execute("HDEL", self.cfg.key("leases"), turn_id)
                    self._lease_seen.pop(turn_id, None)
                    self._requeue_or_fail(conn, turn_id, entry, (
                        f"worker {holder} lost its lease mid-turn "
                        f"(no renewal for {self.cfg.lease:.1f}s)"
                    ))
            elif (not live
                  and mono - entry.submitted > self.cfg.claim):
                self._fail_entry(turn_id, entry, (
                    f"no live workers: turn unclaimed for more than "
                    f"{self.cfg.claim:.1f}s and no worker heartbeat within "
                    f"{live_after:.1f}s"
                ))
        # leases for turns we no longer track are stale leftovers
        for turn_id in raw_leases:
            if turn_id not in entries:
                conn.execute("HDEL", self.cfg.key("leases"), turn_id)
                self._lease_seen.pop(turn_id, None)
        # completed turns release their lease in the worker's MULTI; drop
        # their change-detection state so the dict tracks only live leases
        for turn_id in [t for t in self._lease_seen if t not in raw_leases]:
            del self._lease_seen[turn_id]

    def _requeue_or_fail(self, conn: RespClient, turn_id: int,
                         entry: _Entry, reason: str) -> None:
        if entry.requeues < self.cfg.max_requeues:
            entry.requeues += 1
            entry.submitted = time.monotonic()
            entry.leased = False
            _LOG.warning("requeueing turn %d (attempt %d): %s",
                         turn_id, entry.requeues + 1, reason)
            # front of the queue: the turn already waited its fair share
            conn.execute("RPUSH", self.cfg.key("turns"), entry.frame)
        else:
            self._fail_entry(turn_id, entry,
                             f"{reason}; retry budget ({self.cfg.max_requeues}) exhausted")

    def _fail_entry(self, turn_id: int, entry: _Entry, reason: str) -> None:
        with self._entry_lock:
            if self._entries.pop(turn_id, None) is None:
                return  # resolved while we deliberated
        ticket = entry.ticket
        _LOG.error("turn %d (client %d, %s) lost: %s",
                   turn_id, ticket.client, ticket.method, reason)
        self.pool.turn_done(ticket, None, BrokerTurnLost(
            f"client {ticket.client} turn ({ticket.method}) lost: {reason}"
        ))

    def _fail_all(self, exc: Exception) -> None:
        with self._entry_lock:
            entries, self._entries = self._entries, {}
        for entry in entries.values():
            self.pool.turn_done(entry.ticket, None, exc)

    # -- bookkeeping ----------------------------------------------------
    def _note_snapshot(self, client: int, nbytes: int) -> None:
        with self._tally_lock:
            if nbytes:
                self._snap_sizes[client] = nbytes
            else:
                self._snap_sizes.pop(client, None)

    def queue_depth(self) -> int:
        with self._entry_lock:
            return len(self._entries)

    def idle_workers(self) -> int:
        return self._idle_workers

    def snapshot_bytes(self) -> int:
        return self.store.nbytes()

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if not self._started:
            return
        self._started = False
        self._stop.set()
        try:
            conn = self._connect()
        except BrokerUnavailable:
            conn = None
        if conn is not None:
            try:
                conn.execute("SET", self.cfg.key("stop"), "1")
                for _ in range(max(2 * self.cfg.workers, 4)):
                    conn.execute("LPUSH", self.cfg.key("turns"), b"STOP")
            except RespError:
                pass
        if self._collector is not None:
            self._collector.join(timeout=10)
            self._collector = None
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs = []
        self._fail_all(RuntimeError("redis broker shut down with turns in flight"))
        if conn is not None:
            try:
                for name in ("spec", "meta", "turns", "results", "snap",
                             "done", "leases", "hb", "gstate", "stop"):
                    conn.execute("DEL", self.cfg.key(name))
            except RespError:
                pass
            finally:
                conn.close()
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info.update(namespace=self.cfg.namespace(), lease=self.cfg.lease,
                    inflight=self.cfg.inflight)
        return info
