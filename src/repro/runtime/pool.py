"""The client pool: scheduling policy for pooled logical clients.

``num_clients`` logical clients share a bounded set of execution slots
provided by a :class:`~repro.runtime.broker.TurnBroker` (in-process actor
threads for ``memory://``, worker processes for ``redis://``).  The pool
owns everything transport-independent:

1. **per-client FIFO** — all submissions for one client run in submission
   order (exactly what a dedicated actor's mailbox guarantees), so pooled
   and dedicated runs are bit-identical regardless of broker;
2. **bounded results** — at most ``window`` turns are started-but-unconsumed
   at a time, so completed model states never pile up cohort-deep while the
   virtual-time queue waits on a late arrival.  A consumer blocking on a
   specific ticket *demands* it past the window (and past FIFO order for
   other clients), which makes the bound deadlock-free.

The broker owns dispatch: ``capacity_free()`` gates the pump and
``execute(ticket)`` moves a turn onto the substrate; completions come back
through :meth:`ClientPool.turn_done`.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set

import numpy as np

from repro.runtime.base import ClientRuntime
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine
    from repro.runtime.broker import TurnBroker

__all__ = ["ClientPool", "PoolTicket"]

_LOG = get_logger("pool")


class PoolTicket:
    """Future-like handle for one pooled client turn.

    Satisfies the surface the event queue uses (``result``/``exception``/
    ``done``); ``result`` additionally *demands* the ticket, telling the pool
    a consumer is blocked on it so it may jump the admission window.
    """

    def __init__(self, pool: "ClientPool", seq: int, client: int, method: str,
                 args: tuple, kwargs: dict, needs_data: bool) -> None:
        self._pool = pool
        self.seq = seq
        self.client = int(client)
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.needs_data = needs_data
        self.demanded = False
        self.started = False
        self._event = threading.Event()
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._consumed = False
        self._abandoned = False

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:  # Future-API compat; pooled turns always run
        return False

    def _wait(self, timeout: Optional[float]) -> None:
        self._pool._demand(self)
        if not self._event.wait(timeout):
            # hand the admission slot back before giving up: a waiter that
            # never returns would otherwise leave this turn permanently
            # unconsumed, shrinking the window until the pump wedges
            self._pool._abandon(self)
            raise TimeoutError(
                f"pooled turn ({self.method} for client {self.client}) "
                f"still pending after {timeout}s"
            )
        self._pool._consume(self)

    def result(self, timeout: Optional[float] = None) -> Any:
        self._wait(timeout)
        if self._exc is not None:
            raise self._exc
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        self._wait(timeout)
        return self._exc

    def __repr__(self) -> str:
        state = "done" if self.done() else ("running" if self.started else "queued")
        return f"PoolTicket(client={self.client}, method={self.method!r}, {state})"


class ClientPool(ClientRuntime):
    """``num_clients`` logical clients scheduled onto a turn broker."""

    pooled = True

    #: methods whose turn needs the client's training data view mounted
    _DATA_METHODS = ("local_update", "run_round")

    def __init__(
        self,
        engine: "Engine",
        num_clients: int,
        broker: "TurnBroker",
        data_provider,
        window: Optional[int] = None,
        batch_turns: Optional[int] = None,
    ) -> None:
        self._engine = engine
        self.num_clients = int(num_clients)
        self.broker = broker
        self._data = data_provider
        self._lock = threading.Lock()
        # per-client FIFO queues plus two "ready lanes" of client ids:
        # clients whose head turn is demanded (may jump the window) and
        # clients admissible under the window.  Dispatch pops lanes instead
        # of scanning a global queue, so a 100k-client cohort pays O(1)
        # per scheduling decision rather than O(pending)
        self._queues: Dict[int, Deque[PoolTicket]] = {}
        self._ready: Deque[int] = deque()
        self._ready_set: Set[int] = set()
        self._demand_ready: Deque[int] = deque()
        self._demand_set: Set[int] = set()
        self._n_pending = 0
        self._busy_clients: Set[int] = set()
        self._seq = itertools.count()
        # started-but-unconsumed turns admitted without demand: bounds how
        # many decoded results can pile up while the event queue waits
        self._window = int(window) if window is not None else broker.default_window()
        # opt-in turn fusion: gather up to _batch compatible head turns per
        # dispatch so the broker can run them as one batched tensor pass
        self._batch = max(1, int(batch_turns or 1))
        if self._batch > 1 and not getattr(broker, "supports_batching", False):
            _LOG.warning(
                "broker %r does not support batch_turns; running per-turn",
                broker.scheme,
            )
            self._batch = 1
        if self._batch > 1 and window is None:
            # batches admit several turns at once; widen the default window
            # so fused dispatch is not starved down to singleton batches by
            # out-of-order consumption pinning _unconsumed near the bound
            # (4x keeps a few batches in flight without admitting the whole
            # cohort's results at once)
            self._window = max(self._window, 4 * self._batch)
        self._unconsumed = 0
        self._stopped = False
        self._started = False
        self.turns_run = 0
        broker.attach(self)

    # ------------------------------------------------------------------
    @property
    def pool_size(self) -> int:
        return self.broker.pool_size

    @property
    def store(self):
        """The client-state store (possibly sharded behind the broker)."""
        return self.broker.store

    def client_ids(self) -> List[int]:
        return list(range(self.num_clients))

    def start(self) -> None:
        """Bring up the broker substrate (idempotent)."""
        if not self._started:
            self.broker.start()
            self._started = True

    # kept as an alias: pre-broker callers knew this step as baseline capture
    ensure_baseline = start

    def data_view(self, ticket: PoolTicket):
        """The client's training-data view, for brokers that mount data
        locally (``memory://``); remote workers rebuild views themselves."""
        return self._data.view(ticket.client) if ticket.needs_data else None

    # ------------------------------------------------------------------
    def submit(self, client: int, method: str, *args: Any, **kwargs: Any) -> PoolTicket:
        if not self._started:
            self.start()
        with self._lock:
            if self._stopped:
                raise RuntimeError("client pool has been stopped")
            ticket = PoolTicket(
                self, next(self._seq), client, method, args, kwargs,
                needs_data=method in self._DATA_METHODS,
            )
            queue = self._queues.get(ticket.client)
            if queue is None:
                queue = self._queues[ticket.client] = deque()
            queue.append(ticket)
            self._n_pending += 1
            if len(queue) == 1 and ticket.client not in self._busy_clients:
                self._mark_ready_locked(ticket.client)
            self._pump_locked()
        return ticket

    def pending_turns(self) -> int:
        """Turns submitted but not yet handed to the broker (telemetry)."""
        with self._lock:
            return self._n_pending

    def evaluate_all(self, max_batches: Optional[int] = None,
                     timeout: Optional[float] = None) -> tuple:
        """Personalized evaluation over every logical client: mean (loss,
        accuracy) of each client's own model on the shared test set.

        ``timeout`` bounds the wait *per ticket* (default ``None``: wait
        indefinitely — a large cohort on a remote broker, or one cold
        worker, legitimately takes longer than any fixed guess)."""
        tickets = [self.submit(c, "evaluate", None, max_batches) for c in self.client_ids()]
        # demand in submission order up front so the whole evaluation sweep
        # may jump the admission window in a deterministic order instead of
        # serializing demand behind each blocking result() in turn
        for t in tickets:
            self._demand(t)
        results = [t.result(timeout) for t in tickets]
        losses = [r[0] for r in results]
        accs = [r[1] for r in results]
        return float(np.mean(losses)), float(np.mean(accs))

    def stop(self) -> None:
        """Fail everything still queued; started turns finish on their own."""
        with self._lock:
            self._stopped = True
            pending = [t for q in self._queues.values() for t in q]
            self._queues.clear()
            self._ready.clear()
            self._ready_set.clear()
            self._demand_ready.clear()
            self._demand_set.clear()
            self._n_pending = 0
        for ticket in pending:
            ticket._exc = RuntimeError("client pool stopped with turns still queued")
            ticket._event.set()

    def shutdown(self) -> None:
        """Stop the queue and tear the broker (and its workers) down."""
        self.stop()
        self.broker.shutdown()

    # ------------------------------------------------------------------
    # broker callback
    # ------------------------------------------------------------------
    def turn_done(
        self,
        ticket: PoolTicket,
        result: Any,
        exc: Optional[BaseException],
        release: Optional[Any] = None,
    ) -> None:
        """A broker finished (or failed) a started turn.

        ``release`` runs under the pool lock *before* the pump so the
        broker can return capacity (e.g. a freed worker slot) atomically
        with the client becoming schedulable again.
        """
        if exc is not None:
            ticket._exc = exc
        else:
            ticket._result = result
        with self._lock:
            self.turns_run += 1
            self._busy_clients.discard(ticket.client)
            if ticket.client in self._queues:
                self._mark_ready_locked(ticket.client)
            if ticket._abandoned and not ticket._consumed:
                # the waiter timed out and may never come back for the
                # result: return the admission slot here instead
                ticket._consumed = True
                self._unconsumed -= 1
            if release is not None:
                release()
            self._pump_locked()
        ticket._event.set()

    def turns_done_batch(
        self, outcomes: Any
    ) -> None:
        """Report several finished turns under one lock acquisition.

        ``outcomes`` is ``[(ticket, result, exc), ...]``.  Semantics match
        per-ticket :meth:`turn_done` calls, but a fused batch of K turns
        pays one lock/pump cycle instead of K."""
        for ticket, result, exc in outcomes:
            if exc is not None:
                ticket._exc = exc
            else:
                ticket._result = result
        with self._lock:
            for ticket, _, _ in outcomes:
                self.turns_run += 1
                self._busy_clients.discard(ticket.client)
                if ticket.client in self._queues:
                    self._mark_ready_locked(ticket.client)
                if ticket._abandoned and not ticket._consumed:
                    ticket._consumed = True
                    self._unconsumed -= 1
            self._pump_locked()
        for ticket, _, _ in outcomes:
            ticket._event.set()

    def release_capacity(self, release: Any) -> None:
        """Run a broker's capacity-return closure under the pool lock and
        re-pump.  Brokers that complete several tickets per substrate slot
        (batched dispatch) report each ticket via :meth:`turn_done` and
        return the slot once, here."""
        with self._lock:
            if release is not None:
                release()
            self._pump_locked()

    # ------------------------------------------------------------------
    # internals (all under self._lock unless noted)
    # ------------------------------------------------------------------
    def _mark_ready_locked(self, client: int) -> None:
        """Place a schedulable client (pending turns, not busy) into the
        lane its head turn belongs to.  Lane entries may go stale — the
        pump validates on pop — but the sets keep each client enqueued at
        most once per lane."""
        if self._queues[client][0].demanded:
            if client not in self._demand_set:
                self._demand_set.add(client)
                self._demand_ready.append(client)
        elif client not in self._ready_set:
            self._ready_set.add(client)
            self._ready.append(client)

    def _demand(self, ticket: PoolTicket) -> None:
        """A consumer is blocked on ``ticket``: let it (and the same
        client's earlier turns, which per-client FIFO runs first) jump the
        admission window."""
        with self._lock:
            if ticket.done() or ticket.demanded:
                return
            ticket.demanded = True
            queue = self._queues.get(ticket.client)
            if queue:
                for t in queue:
                    if t.seq <= ticket.seq:
                        t.demanded = True
                if ticket.client not in self._busy_clients:
                    self._mark_ready_locked(ticket.client)
            self._pump_locked()

    def _consume(self, ticket: PoolTicket) -> None:
        with self._lock:
            if not ticket._consumed:
                ticket._consumed = True
                self._unconsumed -= 1
                self._pump_locked()

    def _abandon(self, ticket: PoolTicket) -> None:
        """A waiter timed out on ``ticket`` and may never collect it: give
        the admission slot back — now if the turn already finished, else in
        :meth:`turn_done` when it does."""
        with self._lock:
            ticket._abandoned = True
            if ticket._event.is_set() and not ticket._consumed:
                ticket._consumed = True
                self._unconsumed -= 1
                self._pump_locked()

    def _pump_locked(self) -> None:
        """Hand startable turns to the broker (per-client FIFO, demand
        first): always a client's *head* turn, never while an earlier turn
        of the same client is still running.  With ``batch_turns`` > 1,
        each dispatch tries to gather more compatible head turns into one
        batched execution."""
        if (
            self._batch > 1
            and self._n_pending < self._batch
            and not self._demand_ready
        ):
            # accumulating toward a full batch with nobody blocked: skip the
            # pop/requeue walk entirely (one submit lands here per pending
            # turn, so this gate is on the hot path)
            return
        while not self._stopped and self.broker.capacity_free():
            client = self._pop_startable_locked()
            if client is None:
                return
            if (
                self._batch > 1
                and self._n_pending < self._batch
                and not self._queues[client][0].demanded
            ):
                # batch accumulation: nobody is blocked on this turn and a
                # full batch has not queued up yet — leave it pending so a
                # later pump (more submissions, or a demand) starts a fused
                # batch instead of a singleton.  Every consumed turn is
                # demanded on read, so deferred turns can never be stranded.
                if client not in self._ready_set:
                    self._ready_set.add(client)
                    self._ready.append(client)
                return
            seed = self._start_ticket_locked(client)
            if self._batch > 1:
                batch = self._gather_batch_locked(seed)
                if len(batch) > 1:
                    self.broker.execute_batch(batch)
                    continue
            self.broker.execute(seed)

    def _start_ticket_locked(self, client: int) -> PoolTicket:
        """Pop ``client``'s head turn and account it as started."""
        queue = self._queues[client]
        ticket = queue.popleft()
        if not queue:
            del self._queues[client]
        self._n_pending -= 1
        ticket.started = True
        self._busy_clients.add(client)
        self._unconsumed += 1
        return ticket

    def _gather_batch_locked(self, seed: PoolTicket) -> List[PoolTicket]:
        """Collect head turns batchable with ``seed`` (training turns of the
        same call shape — payloads and versions may differ, the fused runner
        groups by dispatch epoch internally) from the ready lanes, up to
        ``batch_turns`` tickets.

        Only training turns fuse; lane entries whose head is incompatible
        are put back (order within the lane may rotate, which perturbs only
        throughput — per-client FIFO and per-turn math are untouched).
        Demanded turns may overflow the window by one batch so a blocked
        consumer's batch is never starved down to a singleton."""
        batch = [seed]
        if seed.method != "local_update" or seed.kwargs or len(seed.args) != 3:
            return batch

        def compatible(t: PoolTicket) -> bool:
            return (
                t.method == "local_update"
                and not t.kwargs
                and len(t.args) == 3
            )

        overflow = self._window + self._batch
        for lane, lane_set, bound in (
            (self._demand_ready, self._demand_set, overflow),
            (self._ready, self._ready_set,
             overflow if seed.demanded else self._window),
        ):
            skipped: List[int] = []
            while lane and len(batch) < self._batch and self._unconsumed < bound:
                client = lane.popleft()
                lane_set.discard(client)
                if client in self._busy_clients:
                    continue  # re-enters a lane via turn_done
                queue = self._queues.get(client)
                if not queue:
                    continue
                head = queue[0]
                if lane is self._demand_ready and not head.demanded:
                    # the demanded turn already ran; back to the plain lane
                    if client not in self._ready_set:
                        self._ready_set.add(client)
                        self._ready.append(client)
                    continue
                if not compatible(head):
                    skipped.append(client)
                    continue
                batch.append(self._start_ticket_locked(client))
            for client in skipped:
                if client not in lane_set:
                    lane_set.add(client)
                    lane.append(client)
        return batch

    def _pop_startable_locked(self) -> Optional[int]:
        """Next client whose head turn may start, validating stale lane
        entries (busy again, drained, or demand already satisfied)."""
        while self._demand_ready:
            client = self._demand_ready.popleft()
            self._demand_set.discard(client)
            if client in self._busy_clients:
                continue  # re-enters a lane via turn_done
            queue = self._queues.get(client)
            if not queue:
                continue
            if not queue[0].demanded:
                # the demanded turn already ran; back to the plain lane
                if client not in self._ready_set:
                    self._ready_set.add(client)
                    self._ready.append(client)
                continue
            return client
        if self._unconsumed + self._batch <= self._window:
            while self._ready:
                client = self._ready.popleft()
                self._ready_set.discard(client)
                if client in self._busy_clients:
                    continue
                if self._queues.get(client):
                    return client
        return None

    def __repr__(self) -> str:
        return (
            f"ClientPool(clients={self.num_clients}, broker={self.broker.scheme!r}, "
            f"workers={self.pool_size}, turns={self.turns_run}, stored={len(self.store)})"
        )
