"""The public client-runtime contract.

A :class:`ClientRuntime` is the seam between scheduling policy and client
execution: schedulers (and ``Engine.evaluate``) submit *turns* — one method
call on one logical client — and consume the returned tickets, without
knowing whether the client lives on a dedicated in-process node, a pooled
worker thread, or a worker process on another machine behind a broker.

The contract, which every implementation must honor:

``pooled``
    ``True`` when logical clients outnumber execution slots and per-client
    state is swapped in and out around each turn.  Schedulers use this only
    for capacity bookkeeping, never for correctness.
``client_ids()``
    The logical client ids this runtime can execute, sorted.
``submit(client, method, *args, **kwargs)``
    Enqueue one turn and return a future-like ticket with ``result(timeout)``
    and ``exception(timeout)``.  Turns for the *same* client execute in
    submission order (per-client FIFO) — this is what makes pooled and
    dedicated execution bit-identical.  Turns for different clients may run
    in any order or in parallel.
``evaluate_all(max_batches=None, timeout=None)``
    Run ``evaluate`` on every client against its own state and return the
    ``(mean_loss, mean_accuracy)`` over clients in sorted-id order.
    ``timeout`` bounds the wait per client result; the default waits
    indefinitely (remote substrates have no universally safe bound).
``shutdown()``
    Release execution resources.  Pending (unstarted) turns fail with
    ``RuntimeError``; already-running turns complete.  Idempotent.

``repro.engine.pool`` re-exports these names for backward compatibility but
emits a :class:`DeprecationWarning`; import from :mod:`repro.runtime`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine

__all__ = ["ClientRuntime", "DedicatedRuntime"]


class ClientRuntime:
    """Uniform interface for running logical-client turns (see module doc)."""

    #: True when clients share execution slots and state is swapped per turn
    pooled: bool = False

    #: True when turns execute on live remote processes under wall-clock
    #: time (schedulers then disable the simulated fault/latency model and
    #: consult :meth:`live_clients` before selection)
    live: bool = False

    def client_ids(self) -> List[int]:
        """Sorted logical client ids this runtime executes."""
        raise NotImplementedError

    def live_clients(self) -> Optional[List[int]]:
        """Sorted ids currently served by a live peer, or ``None`` when the
        runtime has no liveness notion (every client is always available —
        the simulated substrates)."""
        return None

    def submit(self, client: int, method: str, *args, **kwargs):
        """Enqueue one turn; returns a ticket with ``result``/``exception``."""
        raise NotImplementedError

    def evaluate_all(self, max_batches: Optional[int] = None,
                     timeout: Optional[float] = None) -> Tuple[float, float]:
        """Per-client ``evaluate`` fan-out -> (mean_loss, mean_accuracy)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release resources; pending turns fail, running turns finish."""
        raise NotImplementedError


class DedicatedRuntime(ClientRuntime):
    """One node (and actor thread) per logical client — no state swapping.

    The degenerate runtime used when the cohort is small enough to
    materialize fully; turns go straight to each client's own actor, so
    per-client FIFO falls out of the actor's mailbox order.
    """

    pooled = False

    def __init__(self, engine: "Engine", id_to_pos) -> None:
        self._engine = engine
        self._id_to_pos = {int(c): int(p) for c, p in dict(id_to_pos).items()}

    def client_ids(self) -> List[int]:
        return sorted(self._id_to_pos)

    def submit(self, client: int, method: str, *args, **kwargs):
        return self._engine.actors[self._id_to_pos[int(client)]].submit(
            method, *args, **kwargs
        )

    def evaluate_all(self, max_batches: Optional[int] = None,
                     timeout: Optional[float] = None) -> Tuple[float, float]:
        futures = [
            self.submit(client, "evaluate", None, max_batches)
            for client in self.client_ids()
        ]
        pairs = [f.result(timeout) for f in futures]
        losses = [p[0] for p in pairs]
        accs = [p[1] for p in pairs]
        return float(np.mean(losses)), float(np.mean(accs))

    def shutdown(self) -> None:
        # actors belong to the engine (it tears them down in Engine.shutdown)
        pass
