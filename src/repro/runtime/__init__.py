"""repro.runtime — the public client-runtime and broker API.

How logical clients reach execution substrates:

* :class:`ClientRuntime` / :class:`DedicatedRuntime` — the runtime
  contract (``submit`` / ``evaluate_all`` / ``shutdown`` / ``pooled``) and
  its one-node-per-client implementation (:mod:`repro.runtime.base`);
* :class:`ClientPool` — pooled execution: ``num_clients`` logical clients
  scheduled (per-client FIFO, bounded admission window) onto a turn broker
  (:mod:`repro.runtime.pool`);
* :func:`Broker` — scheme-registry factory over broker URLs:
  ``memory://`` runs turns on in-process worker actors, ``redis://`` on
  worker processes pulling from a redis queue
  (:mod:`repro.runtime.broker`, :mod:`repro.runtime.redis`).

``repro.engine.pool`` re-exports the pre-0.7 names with a
``DeprecationWarning``; new code imports from here.
"""

from repro.runtime.base import ClientRuntime, DedicatedRuntime
from repro.runtime.broker import (
    BROKER_SCHEMES,
    Broker,
    BrokerError,
    BrokerTurnLost,
    BrokerUnavailable,
    MemoryBroker,
    TurnBroker,
    broker_class,
    broker_scheme,
    register_broker,
)
from repro.runtime.pool import ClientPool, PoolTicket
from repro.runtime.redis import RedisBroker  # registers the redis:// scheme

__all__ = [
    "ClientRuntime",
    "DedicatedRuntime",
    "ClientPool",
    "PoolTicket",
    "Broker",
    "TurnBroker",
    "MemoryBroker",
    "RedisBroker",
    "BROKER_SCHEMES",
    "register_broker",
    "broker_class",
    "broker_scheme",
    "BrokerError",
    "BrokerTurnLost",
    "BrokerUnavailable",
]
