"""A minimal RESP (REdis Serialization Protocol) client on raw sockets.

The redis broker needs exactly one queue primitive set — lists with
blocking pops, hashes, strings, and MULTI/EXEC — and the container image
deliberately ships no redis client library, so this module speaks RESP2
directly over a TCP socket with the standard library only.  It works
against a real redis server (the CI broker-smoke job's service container)
and against the in-repo :mod:`repro.runtime.miniredis` test server, which
implements the same command subset.

Not a general client: no pooling, no pub/sub, no RESP3, no cluster.  One
:class:`RespClient` is one socket and is **not** thread-safe — each thread
owns its own connection (redis semantics make that the natural shape for
blocking pops anyway).
"""

from __future__ import annotations

import socket
from typing import Any, List, Optional, Tuple, Union
from urllib.parse import urlparse

__all__ = ["RespClient", "RespError", "connect_url"]

Value = Union[bytes, str, int, float]


class RespError(ConnectionError):
    """Protocol-level failure or server-reported error (``-ERR ...``)."""


def _as_bytes(value: Value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf8")
    if isinstance(value, (int, float)):
        return repr(value).encode("ascii")
    raise TypeError(f"cannot send {type(value).__name__} over RESP")


class RespClient:
    """One RESP connection (see module docstring for scope)."""

    def __init__(self, host: str, port: int, db: int = 0,
                 password: Optional[str] = None, timeout: float = 10.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._buf = b""
        try:
            self._sock = socket.create_connection((host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise RespError(f"cannot connect to redis at {host}:{port}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if password:
            self.execute("AUTH", password)
        if db:
            self.execute("SELECT", db)

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RespClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def execute(self, *args: Value, timeout: Optional[float] = None) -> Any:
        """Send one command, return its decoded reply.

        ``timeout`` overrides the socket timeout for this command — pass a
        generous value for blocking pops (``BLPOP``/``BRPOP``).  Server
        errors raise :class:`RespError`.
        """
        if not args:
            raise ValueError("empty RESP command")
        parts = [b"*%d\r\n" % len(args)]
        for arg in args:
            data = _as_bytes(arg)
            parts.append(b"$%d\r\n%s\r\n" % (len(data), data))
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.sendall(b"".join(parts))
            return self._read_reply()
        except socket.timeout as exc:
            raise RespError(
                f"redis command {args[0]!r} timed out after "
                f"{timeout if timeout is not None else self.timeout}s"
            ) from exc
        except OSError as exc:
            raise RespError(f"redis connection lost during {args[0]!r}: {exc}") from exc
        finally:
            if timeout is not None:
                self._sock.settimeout(self.timeout)

    # convenience wrappers used by the broker/worker -------------------
    def ping(self) -> bool:
        return self.execute("PING") == b"PONG"

    def blpop(self, key: Value, timeout: float) -> Optional[Tuple[bytes, bytes]]:
        """Blocking left pop; None on timeout (redis returns nil)."""
        reply = self.execute("BLPOP", key, timeout, timeout=timeout + 10.0)
        return None if reply is None else (reply[0], reply[1])

    def brpop(self, key: Value, timeout: float) -> Optional[Tuple[bytes, bytes]]:
        reply = self.execute("BRPOP", key, timeout, timeout=timeout + 10.0)
        return None if reply is None else (reply[0], reply[1])

    def multi(self, commands: List[Tuple[Value, ...]]) -> List[Any]:
        """Run ``commands`` atomically inside MULTI/EXEC."""
        self.execute("MULTI")
        for cmd in commands:
            queued = self.execute(*cmd)
            if queued not in (b"QUEUED", "QUEUED"):
                raise RespError(f"command {cmd[0]!r} not queued in MULTI: {queued!r}")
        replies = self.execute("EXEC")
        if replies is None:
            raise RespError("EXEC aborted")
        return replies

    def hgetall(self, key: Value) -> dict:
        flat = self.execute("HGETALL", key) or []
        return {flat[i]: flat[i + 1] for i in range(0, len(flat), 2)}

    # ------------------------------------------------------------------
    # reply parsing
    # ------------------------------------------------------------------
    def _read_line(self) -> bytes:
        while True:
            idx = self._buf.find(b"\r\n")
            if idx >= 0:
                line, self._buf = self._buf[:idx], self._buf[idx + 2:]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                raise RespError("redis connection closed mid-reply")
            self._buf += chunk

    def _read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise RespError("redis connection closed mid-reply")
            self._buf += chunk
        data, self._buf = self._buf[:n], self._buf[n:]
        return data

    def _read_reply(self) -> Any:
        line = self._read_line()
        if not line:
            raise RespError("empty RESP reply line")
        marker, body = line[:1], line[1:]
        if marker == b"+":
            return body
        if marker == b"-":
            raise RespError(body.decode("utf8", "replace"))
        if marker == b":":
            return int(body)
        if marker == b"$":
            length = int(body)
            if length < 0:
                return None
            data = self._read_exact(length)
            self._read_exact(2)  # trailing \r\n
            return data
        if marker == b"*":
            count = int(body)
            if count < 0:
                return None
            return [self._read_reply() for _ in range(count)]
        raise RespError(f"unknown RESP reply marker {marker!r}")


def connect_url(url: str, timeout: float = 10.0) -> RespClient:
    """``redis://[:password@]host[:port][/db]`` -> connected client."""
    parsed = urlparse(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 6379
    db = 0
    path = (parsed.path or "").strip("/")
    if path:
        try:
            db = int(path)
        except ValueError:
            raise ValueError(f"invalid redis db index {path!r} in {url!r}") from None
    return RespClient(host, port, db=db, password=parsed.password, timeout=timeout)
