"""Byzantine client behaviors, applied at the client-update seam.

Two families, mirroring where a malicious client can act:

* **data attacks** (``label_flip``, ``backdoor``) corrupt training batches
  before the optimizer sees them.  They wrap the node's
  :class:`~repro.data.dataloader.DataLoader` in a :class:`PoisonedLoader`,
  so the algorithm's training loop is untouched and per-client shuffle RNG
  streams advance exactly as in an honest run.
* **update attacks** (``sign_flip``, ``scaled_update``) corrupt the model
  update *after* local training and *before* the codec, so poisoned
  payloads still ride compression/DP/delta encoding like honest ones.

Every corruption here is a deterministic function of its inputs — no RNG
draws — which is what keeps attacked runs bit-identical across dedicated,
pooled, broker, and live execution, and keeps ``fraction: 0`` runs
byte-identical to runs with no attack block at all.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "ATTACKS",
    "Attack",
    "BackdoorAttack",
    "LabelFlipAttack",
    "PoisonedLoader",
    "ScaledUpdateAttack",
    "SignFlipAttack",
    "apply_trigger",
    "build_attack",
]

State = Dict[str, np.ndarray]


class Attack:
    """One byzantine behavior; subclasses set the seam(s) they corrupt."""

    kind = "base"
    corrupts_data = False
    corrupts_update = False

    def corrupt_batch(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return x, y

    def corrupt_update(self, update: State, reference: Optional[State]) -> State:
        """Corrupt a computed update.

        ``reference`` is the global state the client trained from when the
        algorithm uploads full states (so directional attacks can flip the
        *delta*, not the weights themselves); ``None`` when the algorithm
        uploads deltas directly, in which case ``update`` *is* the delta.
        """
        return update

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind}


def _is_float(arr: np.ndarray) -> bool:
    return np.issubdtype(np.asarray(arr).dtype, np.floating)


class LabelFlipAttack(Attack):
    """Deterministic label permutation: ``y -> (C - 1) - y``."""

    kind = "label_flip"
    corrupts_data = True

    def __init__(self, num_classes: int) -> None:
        self.num_classes = int(num_classes)

    def corrupt_batch(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        flipped = (self.num_classes - 1) - np.asarray(y)
        return x, flipped.astype(np.asarray(y).dtype, copy=False)


def apply_trigger(x: np.ndarray, trigger_frac: float, trigger_value: float) -> np.ndarray:
    """Stamp the backdoor trigger: pin the first ``trigger_frac`` of each
    sample's (flattened) features to ``trigger_value``.  Works for flat
    tabular rows and channel-first images alike."""
    x = np.array(x, copy=True)
    flat = x.reshape(len(x), -1)
    width = max(1, int(round(trigger_frac * flat.shape[1])))
    flat[:, :width] = trigger_value
    return flat.reshape(x.shape)


class BackdoorAttack(Attack):
    """Trigger-patch poisoning: stamp a fixed feature patch on a slice of
    each batch and relabel those samples to ``target_label``.  Clean-input
    behavior is (mostly) preserved; triggered inputs route to the target."""

    kind = "backdoor"
    corrupts_data = True

    def __init__(
        self,
        num_classes: int,
        target_label: int = 0,
        trigger_value: float = 2.5,
        trigger_frac: float = 0.1,
        poison_frac: float = 0.5,
    ) -> None:
        if not 0 <= int(target_label) < int(num_classes):
            raise ValueError(
                f"backdoor target_label {target_label} outside [0, {int(num_classes) - 1}]"
            )
        self.num_classes = int(num_classes)
        self.target_label = int(target_label)
        self.trigger_value = float(trigger_value)
        self.trigger_frac = float(trigger_frac)
        self.poison_frac = float(poison_frac)

    def corrupt_batch(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x)
        y = np.array(y, copy=True)
        # deterministic prefix slice: no RNG draw, so honest clients' shuffle
        # streams are untouched and re-runs are bit-identical
        count = max(1, int(round(self.poison_frac * len(y))))
        poisoned = apply_trigger(x[:count], self.trigger_frac, self.trigger_value)
        out_x = np.concatenate([poisoned, x[count:]], axis=0) if count < len(y) else poisoned
        y[:count] = self.target_label
        return out_x.astype(x.dtype, copy=False), y


class SignFlipAttack(Attack):
    """Send the *opposite* of the honest update, scaled: the uploaded state
    becomes ``ref - scale * (state - ref)`` (or ``-scale * delta`` for
    delta-uploading algorithms)."""

    kind = "sign_flip"
    corrupts_update = True

    def __init__(self, scale: float = 10.0) -> None:
        if float(scale) <= 0:
            raise ValueError(f"sign_flip scale must be > 0, got {scale}")
        self.scale = float(scale)

    def corrupt_update(self, update: State, reference: Optional[State]) -> State:
        out = {}
        for key, value in update.items():
            arr = np.asarray(value)
            if not _is_float(arr):
                out[key] = value
                continue
            if reference is not None and key in reference:
                ref = np.asarray(reference[key])
                out[key] = (ref - self.scale * (arr - ref)).astype(arr.dtype, copy=False)
            else:
                out[key] = (-self.scale * arr).astype(arr.dtype, copy=False)
        return out


class ScaledUpdateAttack(Attack):
    """Boost the honest direction by ``scale`` (model-replacement style):
    ``ref + scale * (state - ref)``, or ``scale * delta``."""

    kind = "scaled_update"
    corrupts_update = True

    def __init__(self, scale: float = 10.0) -> None:
        if float(scale) <= 0:
            raise ValueError(f"scaled_update scale must be > 0, got {scale}")
        self.scale = float(scale)

    def corrupt_update(self, update: State, reference: Optional[State]) -> State:
        out = {}
        for key, value in update.items():
            arr = np.asarray(value)
            if not _is_float(arr):
                out[key] = value
                continue
            if reference is not None and key in reference:
                ref = np.asarray(reference[key])
                out[key] = (ref + self.scale * (arr - ref)).astype(arr.dtype, copy=False)
            else:
                out[key] = (self.scale * arr).astype(arr.dtype, copy=False)
        return out


class PoisonedLoader:
    """Wrap a DataLoader, corrupting each yielded batch through the attack.

    Delegates ``len`` and iteration; the inner loader's shuffle RNG advances
    exactly as it would for an honest client (corruption happens after the
    batch is drawn), preserving stream alignment across attacked runs.
    """

    def __init__(self, loader: Any, attack: Attack) -> None:
        self.loader = loader
        self.attack = attack

    def __len__(self) -> int:
        return len(self.loader)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for x, y in self.loader:
            yield self.attack.corrupt_batch(x, y)


ATTACKS = {
    "label_flip": LabelFlipAttack,
    "sign_flip": SignFlipAttack,
    "scaled_update": ScaledUpdateAttack,
    "backdoor": BackdoorAttack,
}


def build_attack(attack_spec: Any, num_classes: int) -> Attack:
    """Instantiate the attack named by an ``AttackSpec``."""
    kind = str(attack_spec.kind)
    if kind not in ATTACKS:
        raise ValueError(
            f"unknown attack kind {kind!r}; known: {sorted(ATTACKS)}"
        )
    if kind == "label_flip":
        return LabelFlipAttack(num_classes)
    if kind == "sign_flip":
        return SignFlipAttack(scale=attack_spec.scale)
    if kind == "scaled_update":
        return ScaledUpdateAttack(scale=attack_spec.scale)
    return BackdoorAttack(
        num_classes,
        target_label=attack_spec.target_label,
        trigger_value=attack_spec.trigger_value,
        trigger_frac=attack_spec.trigger_frac,
        poison_frac=attack_spec.poison_frac,
    )
