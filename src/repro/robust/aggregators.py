"""Robust aggregation rules, pluggable next to staleness-aware aggregation.

Each rule consumes a list of candidate states (or deltas) with weights and
produces one combined state.  Two call shapes cover every scheduler seam:

* :meth:`RobustAggregator.combine` — server-side: replace the weighted
  mean inside sync/semi-sync rounds, the fedasync interpolation target,
  and the fedbuff flush.
* :meth:`RobustAggregator.mix` — peer-side: replace the convex neighbor
  combination inside gossip mixing (self state + newest neighbor states).

Float entries are combined in float64 and cast back; integer entries
(step counters and the like) are carried from the base state when one is
given, else from the first candidate — the same convention as
:func:`repro.nn.serialization.state_average`, so honest-only comparisons
line up bit-for-bit where the math coincides.

Every instance keeps ``counters`` (``clipped`` / ``rejected``) that the
owning scheduler exposes through telemetry; instances are created fresh
per scheduler binding so hierarchical site tiers count independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ROBUST_AGGREGATORS",
    "Krum",
    "Median",
    "NormClip",
    "RobustAggregator",
    "TrimmedMean",
    "build_robust_aggregator",
]

State = Dict[str, np.ndarray]


def _is_float(arr: np.ndarray) -> bool:
    return np.issubdtype(np.asarray(arr).dtype, np.floating)


def _normalized(weights: Sequence[float], n: int) -> np.ndarray:
    w = np.asarray([float(x) for x in weights], dtype=np.float64)
    if len(w) != n:
        raise ValueError(f"got {len(w)} weights for {n} states")
    total = float(w.sum())
    if total <= 0:
        return np.full(n, 1.0 / n)
    return w / total


def _flatten(state: State, keys: Sequence[str]) -> np.ndarray:
    return np.concatenate(
        [np.asarray(state[k], dtype=np.float64).ravel() for k in keys]
    ) if keys else np.zeros(0)


class RobustAggregator:
    """Base: carries counters and the non-float passthrough convention."""

    name = "robust"

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {"clipped": 0, "rejected": 0}

    # ------------------------------------------------------------------
    def combine(
        self,
        states: Sequence[State],
        weights: Sequence[float],
        base: Optional[State] = None,
    ) -> State:
        if not states:
            raise ValueError(f"{self.name}: no states to combine")
        out: State = {}
        carrier = base if base is not None else states[0]
        float_keys = [k for k in states[0] if _is_float(states[0][k])]
        combined = self._combine_float(states, weights, float_keys, base)
        for key in states[0]:
            if key in combined:
                out[key] = combined[key]
            else:
                src = carrier.get(key, states[0][key]) if base is not None else states[0][key]
                out[key] = np.array(src, copy=True)
        return out

    def mix(
        self,
        own_state: State,
        own_weight: float,
        entries: Sequence[Tuple[State, float]],
    ) -> State:
        """Gossip-side robust mixing: the peer's own state competes with its
        neighbors' newest states under the same rule, anchored at self."""
        states = [own_state] + [s for s, _ in entries]
        weights = [float(own_weight)] + [float(w) for _, w in entries]
        return self.combine(states, weights, base=own_state)

    # ------------------------------------------------------------------
    def _combine_float(
        self,
        states: Sequence[State],
        weights: Sequence[float],
        float_keys: Sequence[str],
        base: Optional[State],
    ) -> State:
        raise NotImplementedError


class Median(RobustAggregator):
    """Coordinate-wise median: breakdown point 1/2, weight-agnostic."""

    name = "median"

    def _combine_float(self, states, weights, float_keys, base):
        out: State = {}
        for key in float_keys:
            stack = np.stack([np.asarray(s[key], dtype=np.float64) for s in states])
            out[key] = np.median(stack, axis=0).astype(np.asarray(states[0][key]).dtype)
        return out


class TrimmedMean(RobustAggregator):
    """Coordinate-wise trimmed mean: drop the ``trim_ratio`` tails on every
    coordinate, average the rest.  Tolerates up to ``trim_ratio * n``
    corrupted inputs per coordinate."""

    name = "trimmed_mean"

    def __init__(self, trim_ratio: float = 0.2) -> None:
        super().__init__()
        if not 0 <= float(trim_ratio) < 0.5:
            raise ValueError(f"trim_ratio must be in [0, 0.5), got {trim_ratio}")
        self.trim_ratio = float(trim_ratio)

    def _combine_float(self, states, weights, float_keys, base):
        n = len(states)
        k = int(self.trim_ratio * n)
        if 2 * k >= n:
            k = max(0, (n - 1) // 2)
        self.counters["rejected"] += 2 * k
        out: State = {}
        for key in float_keys:
            stack = np.sort(
                np.stack([np.asarray(s[key], dtype=np.float64) for s in states]), axis=0
            )
            core = stack[k: n - k] if k else stack
            out[key] = core.mean(axis=0).astype(np.asarray(states[0][key]).dtype)
        return out


class Krum(RobustAggregator):
    """Krum / multi-Krum: score each candidate by its summed squared
    distance to its ``n - f - 2`` nearest peers; keep the ``multi``
    best-scoring candidates and average them by weight.  With
    ``f < (n - 2) / 2`` the winner is guaranteed honest."""

    name = "krum"

    def __init__(self, f: Optional[int] = None, multi: int = 1) -> None:
        super().__init__()
        if f is not None and int(f) < 0:
            raise ValueError(f"krum f must be >= 0, got {f}")
        if int(multi) < 1:
            raise ValueError(f"krum multi must be >= 1, got {multi}")
        self.f = None if f is None else int(f)
        self.multi = int(multi)
        if self.multi > 1:
            self.name = "multi_krum"

    def scores(self, states: Sequence[State], float_keys: Sequence[str]) -> np.ndarray:
        n = len(states)
        vecs = np.stack([_flatten(s, float_keys) for s in states])
        sq = ((vecs[:, None, :] - vecs[None, :, :]) ** 2).sum(axis=2)
        f = self.f if self.f is not None else max(0, (n - 3) // 2)
        closest = max(1, min(n - 1, n - f - 2))
        scores = np.empty(n)
        for i in range(n):
            others = np.sort(np.delete(sq[i], i))
            scores[i] = others[:closest].sum()
        return scores

    def _combine_float(self, states, weights, float_keys, base):
        n = len(states)
        if n == 1:
            return {
                k: np.array(np.asarray(states[0][k]), copy=True) for k in float_keys
            }
        take = min(self.multi, n)
        order = np.argsort(self.scores(states, float_keys), kind="stable")[:take]
        self.counters["rejected"] += n - take
        w = _normalized([weights[i] for i in order], take)
        out: State = {}
        for key in float_keys:
            stack = np.stack(
                [np.asarray(states[i][key], dtype=np.float64) for i in order]
            )
            avg = np.tensordot(w, stack, axes=1)
            out[key] = avg.astype(np.asarray(states[0][key]).dtype)
        return out


class NormClip(RobustAggregator):
    """Norm-clipped weighted mean: clip each candidate's delta from the
    base state to an L2 ball of radius ``clip_norm``, then average.  With
    no base, candidates themselves are treated as deltas from zero."""

    name = "norm_clip"

    def __init__(self, clip_norm: float = 10.0) -> None:
        super().__init__()
        if float(clip_norm) <= 0:
            raise ValueError(f"clip_norm must be > 0, got {clip_norm}")
        self.clip_norm = float(clip_norm)

    def _combine_float(self, states, weights, float_keys, base):
        n = len(states)
        w = _normalized(weights, n)
        ref = {
            k: np.asarray(base[k], dtype=np.float64) if base is not None and k in base
            else np.zeros_like(np.asarray(states[0][k], dtype=np.float64))
            for k in float_keys
        }
        acc = {k: np.zeros_like(ref[k]) for k in float_keys}
        for i, state in enumerate(states):
            delta = {
                k: np.asarray(state[k], dtype=np.float64) - ref[k] for k in float_keys
            }
            norm = float(np.sqrt(sum(float((d * d).sum()) for d in delta.values())))
            factor = 1.0
            if norm > self.clip_norm:
                factor = self.clip_norm / norm
                self.counters["clipped"] += 1
            for k in float_keys:
                acc[k] += w[i] * factor * delta[k]
        return {
            k: (ref[k] + acc[k]).astype(np.asarray(states[0][k]).dtype)
            for k in float_keys
        }


ROBUST_AGGREGATORS = {
    "median": Median,
    "trimmed_mean": TrimmedMean,
    "krum": Krum,
    "multi_krum": Krum,
    "norm_clip": NormClip,
}


def build_robust_aggregator(name: str, **kwargs) -> RobustAggregator:
    """Instantiate a robust aggregator by registry name."""
    key = str(name)
    if key not in ROBUST_AGGREGATORS:
        raise ValueError(
            f"unknown robust aggregator {key!r}; known: {sorted(ROBUST_AGGREGATORS)}"
        )
    if key == "multi_krum":
        kwargs.setdefault("multi", 3)
    return ROBUST_AGGREGATORS[key](**kwargs)
