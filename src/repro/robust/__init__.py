"""Adversarial robustness: byzantine client roles and robust aggregation.

Three pieces, matching the three seams the rest of the stack exposes:

``attacks``      client-side byzantine behaviors (label flip, sign flip,
                 scaled update, backdoor trigger) applied at the
                 client-update seam inside :class:`repro.node.node.Node`,
                 so they ride every execution mode unchanged — dedicated,
                 pooled, broker workers, live cluster nodes;
``aggregators``  server/peer-side robust combination rules (coordinate-wise
                 median, trimmed mean, Krum / multi-Krum, norm clipping)
                 plugged next to the staleness-aware aggregation in every
                 scheduler policy, including gossip neighbor mixing;
``mtd``          a moving-target defense that re-samples the gossip
                 neighbor map and mixing matrix per epoch from a seeded
                 stream, bounding how long an attacker keeps the same
                 victims.

Attacker assignment (:func:`roles.assign_attackers`) is a pure function of
``(seed, fraction, num_clients)`` so every process that rebuilds nodes from
a published spec — broker workers, cluster nodes — derives the identical
attacker set without any side channel.
"""

from repro.robust.aggregators import (
    ROBUST_AGGREGATORS,
    Krum,
    Median,
    NormClip,
    RobustAggregator,
    TrimmedMean,
    build_robust_aggregator,
)
from repro.robust.attacks import (
    ATTACKS,
    Attack,
    BackdoorAttack,
    LabelFlipAttack,
    PoisonedLoader,
    ScaledUpdateAttack,
    SignFlipAttack,
    build_attack,
)
from repro.robust.mtd import MovingTargetDefense
from repro.robust.roles import AttackPlan, assign_attackers, build_attack_plan

__all__ = [
    "ROBUST_AGGREGATORS",
    "ATTACKS",
    "Attack",
    "AttackPlan",
    "BackdoorAttack",
    "Krum",
    "LabelFlipAttack",
    "Median",
    "MovingTargetDefense",
    "NormClip",
    "PoisonedLoader",
    "RobustAggregator",
    "ScaledUpdateAttack",
    "SignFlipAttack",
    "TrimmedMean",
    "assign_attackers",
    "build_attack",
    "build_attack_plan",
    "build_robust_aggregator",
]
