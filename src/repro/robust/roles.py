"""Attacker role assignment: a pure function of ``(seed, fraction, n)``.

Broker workers and live cluster nodes rebuild their trainer nodes from the
published spec YAML in a different process from the engine.  The attacker
set therefore cannot live in engine memory — every process derives it
independently from the spec, and they must all agree.  ``assign_attackers``
draws from a dedicated ``default_rng((seed, _ROLE_STREAM))`` stream, so the
assignment never perturbs data-order, fault, or initialization streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional

import numpy as np

from repro.robust.attacks import Attack, build_attack

__all__ = ["AttackPlan", "assign_attackers", "build_attack_plan"]

# stream tag for the role-assignment RNG; disjoint from the seeding module's
# DATA/FAULT/INIT stream tags by construction (they key on client ids)
_ROLE_STREAM = 0xBAD0


@dataclass(frozen=True)
class AttackPlan:
    """An instantiated attack plus the logical client ids that run it."""

    attack: Attack
    attacker_ids: FrozenSet[int] = field(default_factory=frozenset)

    def is_attacker(self, client_id: int) -> bool:
        return int(client_id) in self.attacker_ids


def assign_attackers(num_clients: int, fraction: float, seed: int) -> FrozenSet[int]:
    """The byzantine subset for a run: ``round(fraction * n)`` distinct
    logical client ids (at least one when ``fraction > 0``), drawn without
    replacement from a seeded stream.  ``fraction <= 0`` returns the empty
    set without touching any RNG."""
    n = int(num_clients)
    if fraction <= 0 or n <= 0:
        return frozenset()
    count = min(n, max(1, int(round(float(fraction) * n))))
    rng = np.random.default_rng((int(seed), _ROLE_STREAM))
    chosen = rng.choice(n, size=count, replace=False)
    return frozenset(int(c) for c in chosen)


def build_attack_plan(
    attack_spec: Any,
    num_clients: int,
    num_classes: int,
    run_seed: int,
) -> Optional[AttackPlan]:
    """Resolve a spec-level attack block into an executable plan.

    Returns ``None`` when no attack is configured or ``fraction`` rounds to
    zero attackers — the caller then constructs nodes exactly as before, so
    a ``fraction: 0`` spec stays record-byte-identical to one with no
    attack block at all.
    """
    if attack_spec is None:
        return None
    seed = attack_spec.seed if attack_spec.seed is not None else run_seed
    ids = assign_attackers(num_clients, float(attack_spec.fraction), int(seed))
    if not ids:
        return None
    return AttackPlan(attack=build_attack(attack_spec, int(num_classes)), attacker_ids=ids)
