"""Moving-target defense: re-sample the gossip overlay from a seeded stream.

A static gossip topology gives an attacker a fixed victim set: its poisoned
states land on the same neighbors every round, and a backdoor accumulates
along stable mixing paths.  The defense re-samples the neighbor map (and
the matching Metropolis-Hastings mixing matrix) once per *epoch* — by
default every ``len(peers)`` applied updates, i.e. roughly once per
virtual round — so attacker reach is re-randomized faster than influence
can accumulate.

Sampling is keyed ``(seed, _MTD_STREAM, epoch)``: every epoch's overlay is
a pure function of the spec seed and the epoch index, which keeps MTD runs
bit-identical on re-run and identical across pooled/broker/live execution
(the scheduler is the only consumer; nodes never see the overlay).

Each epoch's overlay is a ring over a fresh permutation of the peers
(connectivity guaranteed) plus random chords up to the configured target
degree — symmetric, so the MH matrix stays doubly stochastic and the
stationary distribution uniform.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["MovingTargetDefense"]

_MTD_STREAM = 0x307D


class MovingTargetDefense:
    """Per-epoch sampler for (neighbor map, mixing matrix) pairs."""

    def __init__(self, peers: Sequence[int], degree: int = 2, seed: int = 0) -> None:
        self.peers = sorted(int(p) for p in peers)
        if len(self.peers) < 2:
            raise ValueError(f"moving-target defense needs >= 2 peers, got {len(self.peers)}")
        if int(degree) < 2:
            raise ValueError(f"mtd degree must be >= 2 (ring connectivity), got {degree}")
        self.degree = int(degree)
        self.seed = int(seed)
        # stable directed-edge ids for the whole run: u * span + v.  Epochs
        # share ids for re-visited edges, so per-edge heterogeneity streams
        # stay pinned to the physical link, not to the epoch.
        self.span = max(self.peers) + 1

    def edge_id(self, u: int, v: int) -> int:
        return int(u) * self.span + int(v)

    def sample(self, epoch: int) -> Tuple[Dict[int, List[int]], np.ndarray]:
        """(neighbor_map, mixing matrix) for one epoch."""
        rng = np.random.default_rng((self.seed, _MTD_STREAM, int(epoch)))
        n = len(self.peers)
        order = [self.peers[i] for i in rng.permutation(n)]
        adjacency: Dict[int, set] = {p: set() for p in self.peers}
        for i, p in enumerate(order):
            q = order[(i + 1) % n]
            if q != p:
                adjacency[p].add(q)
                adjacency[q].add(p)
        extra = max(0, (self.degree - 2) * n // 2)
        for _ in range(extra):
            u, v = rng.choice(n, size=2, replace=False)
            pu, pv = order[int(u)], order[int(v)]
            if pu != pv:
                adjacency[pu].add(pv)
                adjacency[pv].add(pu)

        neighbor_map = {p: sorted(adjacency[p]) for p in self.peers}
        degrees = {p: len(neighbor_map[p]) for p in self.peers}
        w = np.zeros((self.span, self.span))
        for p in self.peers:
            for q in neighbor_map[p]:
                # Metropolis-Hastings: symmetric, doubly stochastic
                w[p, q] = 1.0 / (1.0 + max(degrees[p], degrees[q]))
            w[p, p] = 1.0 - w[p].sum()
        return neighbor_map, w
