"""Thin logging helpers with a per-run verbosity switch.

The framework logs through the stdlib ``logging`` module under the ``repro``
namespace so applications can reconfigure handlers normally.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger, configuring root formatting once."""
    global _CONFIGURED
    if not _CONFIGURED:
        level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
        level = getattr(logging, level_name, logging.WARNING)
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(levelname)s %(name)s: %(message)s", "%H:%M:%S")
        )
        base = logging.getLogger("repro")
        base.setLevel(level)
        if not base.handlers:
            base.addHandler(handler)
        base.propagate = False
        _CONFIGURED = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def set_level(level: str, logger: Optional[str] = None) -> None:
    """Set the level of the ``repro`` logger tree (or a sub-logger)."""
    get_logger("repro")  # ensure configured
    logging.getLogger(logger or "repro").setLevel(level.upper())
