"""Per-client random stream derivation.

Every logical client owns independent random streams derived by hashing
``(run_seed, client_id, stream)`` through :class:`numpy.random.SeedSequence`.
Keying on the *logical client id* (the data-shard index) — never on a node
index or worker slot — is what makes results reproducible across execution
modes: a cohort simulated on a bounded pool of reusable workers draws exactly
the same randomness as one with a dedicated node per client, in any dispatch
order.

Stream constants separate the independent per-client streams (fault coins vs.
loader shuffles) so draws from one can never alias draws from another.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FAULT_STREAM",
    "DATA_STREAM",
    "client_seed_sequence",
    "client_rng",
]

#: stream ids (arbitrary distinct constants, stable across releases —
#: changing them changes every seeded run)
FAULT_STREAM = 0xA110  # dropout / straggler coins
DATA_STREAM = 0xDA7A  # dataloader shuffling

#: offset making negative ids (internal: non-trainer nodes) hashable —
#: SeedSequence entropy must be non-negative
_ID_OFFSET = 0x8000_0000


def client_seed_sequence(run_seed: int, client_id: int, stream: int) -> np.random.SeedSequence:
    """Hash ``(run_seed, client_id)`` plus a stream id into a SeedSequence."""
    return np.random.SeedSequence((int(run_seed), int(client_id) + _ID_OFFSET, int(stream)))


def client_rng(run_seed: int, client_id: int, stream: int) -> np.random.Generator:
    """A fresh generator for one of a logical client's random streams.

    Builds ``Generator(PCG64(seq))`` directly — exactly what
    ``default_rng(seq)`` constructs, minus its argument-dispatch overhead
    (this sits on the per-turn hot path: one call per first client turn).
    """
    return np.random.Generator(
        np.random.PCG64(client_seed_sequence(run_seed, client_id, stream))
    )
