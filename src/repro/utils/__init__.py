"""Shared utilities: seeded RNG management, registries, timers, logging.

These are deliberately dependency-free so every other subpackage can import
them without cycles.
"""

from repro.utils.registry import Registry
from repro.utils.rng import RngManager, fork_rng, seed_everything
from repro.utils.timer import SimClock, Timer, WallTimer

__all__ = [
    "Registry",
    "RngManager",
    "fork_rng",
    "seed_everything",
    "SimClock",
    "Timer",
    "WallTimer",
]
