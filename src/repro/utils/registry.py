"""A tiny string -> factory registry used across the framework.

Models, datasets, algorithms, compressors, communicators and topologies all
register themselves under a short name so that YAML configs can refer to them
either via ``_target_`` dotted paths or via registry names.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Case-insensitive name -> factory mapping with decorator registration.

    >>> MODELS = Registry("model")
    >>> @MODELS.register("mlp")
    ... def build_mlp(**kw):
    ...     return ("mlp", kw)
    >>> MODELS.get("MLP")("mlp", {})  # doctest: +SKIP
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}

    @staticmethod
    def _norm(name: str) -> str:
        return name.strip().lower().replace("-", "_")

    def register(self, name: str, *aliases: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Decorator registering ``fn`` under ``name`` (and optional aliases)."""

        def deco(fn: Callable[..., T]) -> Callable[..., T]:
            for n in (name, *aliases):
                key = self._norm(n)
                if key in self._factories:
                    raise KeyError(f"duplicate {self.kind} registration: {n!r}")
                self._factories[key] = fn
            return fn

        return deco

    def get(self, name: str) -> Callable[..., T]:
        key = self._norm(name)
        if key not in self._factories:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._factories)}"
            )
        return self._factories[key]

    def build(self, name: str, /, **kwargs) -> T:
        """Look up ``name`` and call the factory with ``kwargs``."""
        return self.get(name)(**kwargs)

    def __contains__(self, name: str) -> bool:
        return self._norm(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def names(self) -> List[str]:
        return sorted(self._factories)

    def maybe_get(self, name: str) -> Optional[Callable[..., T]]:
        return self._factories.get(self._norm(name))
