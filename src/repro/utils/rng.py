"""Deterministic random-number management.

Federated experiments need *hierarchical* determinism: the engine seed must
derive stable, independent streams per node, per round, and per subsystem
(data partitioning, DP noise, compression sampling, ...) so that runs are
reproducible regardless of thread scheduling.  We derive child seeds with
``numpy.random.SeedSequence.spawn``-style keyed hashing rather than sharing a
single global generator across threads.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Optional

import numpy as np


def _hash_key(*parts: object) -> int:
    """Stable 64-bit integer derived from the string forms of ``parts``."""
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(repr(p).encode("utf8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def seed_everything(seed: int) -> None:
    """Seed Python's ``random`` and NumPy's legacy global generator."""
    random.seed(seed)
    np.random.seed(seed % (2**32))


def fork_rng(base_seed: int, *key: object) -> np.random.Generator:
    """Return an independent ``Generator`` keyed by ``(base_seed, *key)``.

    Two forks with different keys are statistically independent; the same key
    always yields the same stream.
    """
    return np.random.default_rng(np.random.SeedSequence([base_seed & (2**63 - 1), _hash_key(*key)]))


class RngManager:
    """Hands out named, cached random streams derived from one base seed.

    >>> mgr = RngManager(1234)
    >>> a = mgr.get("node", 0)
    >>> b = mgr.get("node", 1)
    >>> a is mgr.get("node", 0)
    True
    """

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = int(base_seed)
        self._streams: Dict[tuple, np.random.Generator] = {}

    def get(self, *key: object) -> np.random.Generator:
        k = tuple(repr(p) for p in key)
        if k not in self._streams:
            self._streams[k] = fork_rng(self.base_seed, *key)
        return self._streams[k]

    def spawn(self, *key: object) -> "RngManager":
        """Child manager with a seed derived from this one plus ``key``."""
        return RngManager(_hash_key(self.base_seed, *key) & (2**31 - 1))

    def reset(self, keys: Optional[Iterable[tuple]] = None) -> None:
        if keys is None:
            self._streams.clear()
        else:
            for k in list(keys):
                self._streams.pop(tuple(repr(p) for p in k), None)
