"""Wall-clock timers and a simulated clock.

Benchmarks need two notions of time:

* **Wall time** — what actually elapsed on this machine (``WallTimer``).
* **Simulated time** — what *would* elapse on the paper's deployment given a
  network model (latency + bandwidth per link class).  Communicators account
  simulated transfer seconds into a ``SimClock`` without sleeping, so
  experiments like Fig. 7 (inner MPI vs outer gRPC cost) report meaningful
  relative costs at laptop scale.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


class WallTimer:
    """Accumulating wall-clock timer.

    >>> t = WallTimer()
    >>> with t.measure():
    ...     pass
    >>> t.total >= 0.0
    True
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._laps: List[float] = []

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            lap = time.perf_counter() - start
            self.total += lap
            self.count += 1
            self._laps.append(lap)

    @property
    def laps(self) -> List[float]:
        return list(self._laps)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def median(self) -> float:
        if not self._laps:
            return 0.0
        laps = sorted(self._laps)
        n = len(laps)
        mid = n // 2
        return laps[mid] if n % 2 else 0.5 * (laps[mid - 1] + laps[mid])

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self._laps.clear()


# Backwards-friendly alias: most call sites just want "a timer".
Timer = WallTimer


@dataclass
class SimClock:
    """Thread-safe accumulator of *simulated* seconds, bucketed by label.

    The clock never sleeps; it only accounts durations that a network model
    attributes to operations.  ``advance`` is safe to call from any actor
    thread.
    """

    buckets: Dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def advance(self, seconds: float, label: str = "default") -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance simulated clock by {seconds!r}s")
        with self._lock:
            self.buckets[label] = self.buckets.get(label, 0.0) + seconds

    def read(self, label: str = "default") -> float:
        with self._lock:
            return self.buckets.get(label, 0.0)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.buckets.values())

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self.buckets)

    def reset(self) -> None:
        with self._lock:
            self.buckets.clear()
