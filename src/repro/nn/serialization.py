"""Flat-vector packing of parameter trees — the currency of FL.

Every algorithm, compressor, privacy mechanism and communicator in this repo
exchanges model state as either a *state dict* (``OrderedDict[str, ndarray]``)
or a single flat ``float32`` vector plus a spec describing how to unflatten.
Pack/unpack are exact inverses (property-tested).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StateSpec",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "spec_of",
    "state_add",
    "state_sub",
    "state_scale",
    "state_zeros_like",
    "state_average",
    "state_norm",
    "clone_state",
]

StateDict = "OrderedDict[str, np.ndarray]"


class StateSpec:
    """Shapes/dtypes/order of a state dict, enough to invert flattening."""

    def __init__(self, entries: Sequence[Tuple[str, Tuple[int, ...], np.dtype]]) -> None:
        self.entries = list(entries)
        self.total = int(sum(int(np.prod(shape)) for _, shape, _ in self.entries))

    @property
    def keys(self) -> List[str]:
        return [k for k, _, _ in self.entries]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSpec):
            return NotImplemented
        return [(k, tuple(s), np.dtype(d)) for k, s, d in self.entries] == [
            (k, tuple(s), np.dtype(d)) for k, s, d in other.entries
        ]

    def __repr__(self) -> str:
        return f"StateSpec({len(self.entries)} tensors, {self.total} scalars)"


def spec_of(state: Mapping[str, np.ndarray]) -> StateSpec:
    return StateSpec([(k, tuple(v.shape), v.dtype) for k, v in state.items()])


def state_dict_to_vector(state: Mapping[str, np.ndarray], keys: Optional[Iterable[str]] = None) -> Tuple[np.ndarray, StateSpec]:
    """Flatten selected entries (default: all) into one float32 vector."""
    selected = list(keys) if keys is not None else list(state.keys())
    entries = [(k, tuple(state[k].shape), state[k].dtype) for k in selected]
    spec = StateSpec(entries)
    if not selected:
        return np.zeros(0, dtype=np.float32), spec
    vec = np.concatenate([np.asarray(state[k], dtype=np.float32).ravel() for k in selected])
    return vec, spec


def vector_to_state_dict(vector: np.ndarray, spec: StateSpec) -> "OrderedDict[str, np.ndarray]":
    """Inverse of :func:`state_dict_to_vector` (restores shapes and dtypes)."""
    if vector.size != spec.total:
        raise ValueError(f"vector has {vector.size} scalars but spec expects {spec.total}")
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    offset = 0
    for key, shape, dtype in spec.entries:
        size = int(np.prod(shape))
        chunk = vector[offset : offset + size].reshape(shape)
        out[key] = chunk.astype(dtype, copy=True) if np.dtype(dtype) != np.float32 else chunk.copy()
        offset += size
    return out


def clone_state(state: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((k, np.array(v, copy=True)) for k, v in state.items())


def state_zeros_like(state: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((k, np.zeros_like(v)) for k, v in state.items())


def state_add(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    """Elementwise ``a + b``; integer buffers are carried from ``a`` unchanged."""
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for k, v in a.items():
        if np.issubdtype(v.dtype, np.floating):
            out[k] = v + b[k]
        else:
            out[k] = v.copy()
    return out


def state_sub(a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for k, v in a.items():
        if np.issubdtype(v.dtype, np.floating):
            out[k] = v - b[k]
        else:
            out[k] = v.copy()
    return out


def state_scale(state: Mapping[str, np.ndarray], factor: float) -> "OrderedDict[str, np.ndarray]":
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for k, v in state.items():
        if np.issubdtype(v.dtype, np.floating):
            out[k] = v * factor
        else:
            out[k] = v.copy()
    return out


def state_average(
    states: Sequence[Mapping[str, np.ndarray]],
    weights: Optional[Sequence[float]] = None,
) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of homogeneous state dicts (FedAvg's core op).

    Integer entries (e.g. BatchNorm's ``num_batches_tracked``) take the first
    state's value — averaging step counters is meaningless.
    """
    if not states:
        raise ValueError("cannot average zero states")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights length must match states length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    norm = [w / total for w in weights]
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    first = states[0]
    for k, v in first.items():
        if np.issubdtype(v.dtype, np.floating):
            acc = np.zeros_like(v, dtype=np.float64)
            for s, w in zip(states, norm):
                acc += np.asarray(s[k], dtype=np.float64) * w
            out[k] = acc.astype(v.dtype)
        else:
            out[k] = v.copy()
    return out


def state_norm(state: Mapping[str, np.ndarray]) -> float:
    """Global L2 norm over the floating entries."""
    total = 0.0
    for v in state.values():
        if np.issubdtype(v.dtype, np.floating):
            total += float(np.sum(np.asarray(v, dtype=np.float64) ** 2))
    return float(np.sqrt(total))
