"""Loss modules wrapping the fused functional implementations."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["CrossEntropyLoss", "NLLLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy against integer class labels."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, target: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, target, self.reduction)


class NLLLoss(Module):
    """Negative log-likelihood over log-probabilities (pairs with log_softmax)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, target: np.ndarray) -> Tensor:
        return F.nll_loss(log_probs, target, self.reduction)


class MSELoss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
        return F.mse_loss(pred, target, self.reduction)
