"""Layer zoo: Linear, Conv2d, BatchNorm, pooling, dropout, activations.

Layers own their parameters/buffers and delegate math to
:mod:`repro.nn.functional`.  Construction takes an optional RNG; when absent
a process-global default generator is used (tests always pass one).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "HardSigmoid",
    "HardSwish",
    "Sequential",
]

_Pair = Union[int, Tuple[int, int]]
_DEFAULT_RNG = np.random.default_rng(0)


def _rng_or_default(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape (out_features, in_features)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = _rng_or_default(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), rng, bound))
        else:
            self.bias = None  # type: ignore[assignment]

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution (cross-correlation) with grouped/depthwise support."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: _Pair,
        stride: _Pair = 1,
        padding: _Pair = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = _rng_or_default(rng)
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if in_channels % groups:
            raise ValueError(f"in_channels {in_channels} not divisible by groups {groups}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kh, kw)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = (in_channels // groups) * kh * kw
            self.bias = Parameter(init.uniform((out_channels,), rng, 1.0 / math.sqrt(fan_in)))
        else:
            self.bias = None  # type: ignore[assignment]

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding, self.groups)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, g={self.groups})"
        )


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            self._buffers["num_batches_tracked"] += 1
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self._buffers["running_mean"],
            self._buffers["running_var"],
            self.training,
            self.momentum,
            self.eps,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm2d(_BatchNorm):
    """BatchNorm over (N, H, W) per channel of a 4-D activation."""


class BatchNorm1d(_BatchNorm):
    """BatchNorm over the batch dimension of a 2-D activation."""


class MaxPool2d(Module):
    def __init__(self, kernel_size: _Pair, stride: Optional[_Pair] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride or self.kernel_size})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: _Pair, stride: Optional[_Pair] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = _rng_or_default(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class HardSigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.hard_sigmoid(x)


class HardSwish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.hard_swish(x)


class Sequential(Module):
    """Feed-forward container applying children in registration order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, m in enumerate(modules):
            self.add_module(str(i), m)

    def forward(self, x: Tensor) -> Tensor:
        for m in self._modules.values():
            x = m(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())
