"""Optimizers: SGD (momentum/Nesterov/weight-decay/dampening), Adam, AdamW.

Update rules follow PyTorch's documented semantics exactly so FL algorithms
whose published behaviour assumes them (FedMom's server momentum, DiLoCo's
AdamW inner / Nesterov outer split) transfer unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import no_grad

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base optimizer over a list of Parameters with per-optimizer state."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr < 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # FL algorithms snapshot/restore optimizer state when swapping models.
    def state_dict(self) -> Dict[str, object]:
        return {"lr": self.lr, "state": {i: {k: v.copy() for k, v in s.items()} for i, s in self.state.items()}}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.lr = float(state["lr"])  # type: ignore[arg-type]
        self.state = {int(i): {k: np.array(v) for k, v in s.items()} for i, s in state["state"].items()}  # type: ignore[union-attr]


class SGD(Optimizer):
    """Stochastic gradient descent, PyTorch semantics.

    With momentum m, dampening d, weight decay wd and Nesterov flag:

        g = grad + wd * w
        buf = m * buf + (1 - d) * g
        step_dir = g + m * buf    (nesterov)   |   buf   (classic)
        w -= lr * step_dir
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        dampening: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and (momentum <= 0 or dampening != 0):
            raise ValueError("nesterov momentum requires momentum > 0 and dampening == 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.dampening = dampening
        self.nesterov = nesterov

    def step(self) -> None:
        with no_grad():
            for i, p in enumerate(self.params):
                if p.grad is None:
                    continue
                g = p.grad
                if self.weight_decay:
                    g = g + self.weight_decay * p.data
                if self.momentum:
                    st = self.state.setdefault(i, {})
                    buf = st.get("momentum_buffer")
                    if buf is None:
                        buf = g.astype(p.data.dtype).copy()
                        st["momentum_buffer"] = buf
                    else:
                        buf *= self.momentum
                        buf += (1.0 - self.dampening) * g
                    g = g + self.momentum * buf if self.nesterov else buf
                p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with L2 weight decay folded into the gradient (torch.optim.Adam)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._decoupled = False

    def step(self) -> None:
        beta1, beta2 = self.betas
        with no_grad():
            for i, p in enumerate(self.params):
                if p.grad is None:
                    continue
                g = p.grad
                st = self.state.setdefault(
                    i,
                    {
                        "step": np.zeros((), dtype=np.int64),
                        "exp_avg": np.zeros_like(p.data),
                        "exp_avg_sq": np.zeros_like(p.data),
                    },
                )
                if self.weight_decay:
                    if self._decoupled:
                        p.data -= self.lr * self.weight_decay * p.data
                    else:
                        g = g + self.weight_decay * p.data
                st["step"] += 1
                t = int(st["step"])
                m, v = st["exp_avg"], st["exp_avg_sq"]
                m *= beta1
                m += (1 - beta1) * g
                v *= beta2
                v += (1 - beta2) * g * g
                m_hat = m / (1 - beta1**t)
                v_hat = v / (1 - beta2**t)
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr, betas, eps, weight_decay)
        self._decoupled = True
