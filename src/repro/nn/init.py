"""Weight initializers (Kaiming/Xavier) with an explicit RNG.

All initializers take a ``numpy.random.Generator`` so model construction is
deterministic under the framework's hierarchical seeding — a requirement for
FL, where every client must start from *identical* global weights.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "uniform", "zeros", "ones"]


def _fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # (out, in)
        fan_in, fan_out = shape[1], shape[0]
    elif len(shape) == 4:  # (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in, fan_out = shape[1] * receptive, shape[0] * receptive
    else:
        size = int(np.prod(shape))
        fan_in = fan_out = max(1, size)
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He-uniform init matching PyTorch's default for Linear/Conv."""
    fan_in, _ = _fan(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
