"""``repro.nn`` — a NumPy reverse-mode autograd / neural-network substrate.

This package substitutes for PyTorch in the offline environment.  It provides
exactly the training semantics the OmniFed reproduction needs:

* :class:`~repro.nn.tensor.Tensor` — float32 arrays with reverse-mode
  automatic differentiation (broadcasting-aware);
* :class:`~repro.nn.module.Module` — parameter containers with
  ``state_dict``/``load_state_dict``, train/eval modes and buffers;
* layers — ``Linear``, ``Conv2d`` (grouped/depthwise), ``BatchNorm1d/2d``,
  pooling, dropout, activations;
* losses — cross-entropy, NLL, MSE;
* optimizers — ``SGD`` (momentum/Nesterov/weight-decay), ``Adam``, ``AdamW``;
* LR schedulers — step, multi-step, exponential, cosine;
* :mod:`~repro.nn.serialization` — flat-vector packing of parameter trees,
  the currency of every FL algorithm and communicator in this repo.
"""

from repro.nn import functional, init
from repro.nn.functional import (
    avg_pool2d,
    batch_norm,
    conv2d,
    cross_entropy,
    dropout,
    log_softmax,
    max_pool2d,
    mse_loss,
    nll_loss,
    relu,
    sigmoid,
    softmax,
)
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    HardSigmoid,
    HardSwish,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.loss import CrossEntropyLoss, MSELoss, NLLLoss
from repro.nn.lr_scheduler import (
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
)
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.serialization import (
    clone_state,
    state_add,
    state_dict_to_vector,
    state_scale,
    state_sub,
    state_zeros_like,
    vector_to_state_dict,
)
from repro.nn.tensor import Tensor, no_grad, tensor

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "Flatten",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "HardSigmoid",
    "HardSwish",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "functional",
    "init",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "state_add",
    "state_sub",
    "state_scale",
    "state_zeros_like",
    "clone_state",
    "relu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "batch_norm",
    "dropout",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
]
