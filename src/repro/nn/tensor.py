"""Reverse-mode autodiff on NumPy arrays.

The design is a vectorized tape: each :class:`Tensor` records the tensors it
was computed from and a closure that accumulates gradients into them.
``backward()`` topologically sorts the tape and runs the closures once.

Only float32/float64 data participates in autograd; integer tensors (labels)
are carried as plain arrays by callers.  Broadcasting is fully supported —
gradients are summed back over broadcast dimensions by :func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled"]

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (used in eval loops and optimizers)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _as_array(value: Any, dtype=None) -> np.ndarray:
    """Coerce ``value`` to an ndarray suitable for autograd.

    With ``dtype=None`` (tensor construction): float arrays pass through
    unchanged (float64 enables high-precision gradient checks); int/bool
    arrays are cast to float32.  With an explicit ``dtype`` (binary-op
    operands): python scalars and int/bool arrays are cast to match the
    other side, but float64 *arrays* are never silently downcast.
    """
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None and arr.dtype != dtype and arr.dtype.kind in "fiub":
        if arr.ndim == 0 or arr.dtype.kind in "iub" or np.dtype(dtype) == np.float64:
            return arr.astype(dtype, copy=False)
        return arr
    if dtype is None and arr.dtype.kind in "iub":
        return arr.astype(np.float32, copy=False)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # remove leading broadcast dimensions
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over axes that were 1 in the original shape
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an autograd tape.

    >>> x = Tensor([1.0, 2.0], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad.tolist()
    [2.0, 4.0]
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: Any,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = _backward
        self._prev = _prev if self.requires_grad else ()
        self.name = name

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        if out.requires_grad:
            out._prev = (self,)

            def _bw(grad: np.ndarray) -> None:
                self._accumulate(grad)

            out._backward = _bw
        return out

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_txt = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_txt})"

    # -- autograd machinery ---------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    # -- elementwise arithmetic -----------------------------------------------
    def __add__(self, other: Any) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        data = self.data + other_t.data

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), _bw)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def _bw(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), _bw)

    def __sub__(self, other: Any) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        data = self.data - other_t.data

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), _bw)

    def __rsub__(self, other: Any) -> "Tensor":
        return Tensor(_as_array(other, self.data.dtype)) - self

    def __mul__(self, other: Any) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        data = self.data * other_t.data

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), _bw)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        data = self.data / other_t.data

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), _bw)

    def __rtruediv__(self, other: Any) -> "Tensor":
        return Tensor(_as_array(other, self.data.dtype)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), _bw)

    # -- comparison (no grad) ---------------------------------------------------
    def __gt__(self, other: Any) -> np.ndarray:
        return self.data > _as_array(other, None)

    def __lt__(self, other: Any) -> np.ndarray:
        return self.data < _as_array(other, None)

    # -- unary math -------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), _bw)

    def log(self) -> "Tensor":
        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), _bw)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), _bw)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), _bw)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), _bw)

    # -- reductions ---------------------------------------------------------------
    def sum(self, axis: Union[int, Tuple[int, ...], None] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def _bw(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), _bw)

    def mean(self, axis: Union[int, Tuple[int, ...], None] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def _bw(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            full = data if keepdims or axis is None else np.expand_dims(data, axis)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            mask = (self.data == full).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), _bw)

    # -- shape ops -------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def _bw(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return Tensor._make(data, (self,), _bw)

    def view(self, *shape: int) -> "Tensor":
        return self.reshape(*shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.data.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        data = self.data.transpose(axes_t)

        def _bw(grad: np.ndarray) -> None:
            if axes_t is None:
                self._accumulate(np.asarray(grad).transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(np.asarray(grad).transpose(inverse))

        return Tensor._make(data, (self,), _bw)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx: Any) -> "Tensor":
        data = self.data[idx]

        def _bw(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), _bw)

    # -- linear algebra ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        data = self.data @ other_t.data

        def _bw(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:  # dot product
                self._accumulate(g * b)
                other_t._accumulate(g * a)
                return
            if a.ndim == 1:
                self._accumulate(g @ np.swapaxes(b, -1, -2))
                other_t._accumulate(np.outer(a, g) if b.ndim == 2 else _unbroadcast(a[..., :, None] * g[..., None, :], b.shape))
                return
            if b.ndim == 1:
                self._accumulate(np.expand_dims(g, -1) * b)
                other_t._accumulate(_unbroadcast(np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1), b.shape + (1,)).reshape(b.shape))
                return
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            self._accumulate(_unbroadcast(ga, a.shape))
            other_t._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(data, (self, other_t), _bw)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def dot(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)


def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index: List[Any] = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            t._accumulate(g[tuple(index)])

    return Tensor._make(data, tuple(tensors), _bw)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        for i, t in enumerate(tensors):
            t._accumulate(np.take(g, i, axis=axis))

    return Tensor._make(data, tuple(tensors), _bw)
