"""Fused functional ops: activations, convolution, pooling, norm, losses.

Convolution uses a stride-tricks ``sliding_window_view`` im2col with an
einsum contraction; its backward scatters through a KH×KW loop (the classic
vectorized col2im) instead of ``np.add.at`` which is an order of magnitude
slower.  BatchNorm and cross-entropy get hand-written backwards to keep the
tape short on the hot path.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import Tensor, _as_array

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "hard_sigmoid",
    "hard_swish",
    "tanh",
    "softmax",
    "log_softmax",
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "batch_norm",
    "dropout",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
]

_Pair = Union[int, Tuple[int, int]]


def _pair(value: _Pair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    data = np.where(mask, x.data, 0.0).astype(x.data.dtype, copy=False)

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(data, (x,), _bw)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope).astype(x.data.dtype)
    data = x.data * scale

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * scale)

    return Tensor._make(data, (x,), _bw)


def sigmoid(x: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-x.data))

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data.astype(x.data.dtype, copy=False), (x,), _bw)


def hard_sigmoid(x: Tensor) -> Tensor:
    """Piecewise-linear sigmoid used by MobileNetV3: clip(x/6 + 0.5, 0, 1)."""
    data = np.clip(x.data / 6.0 + 0.5, 0.0, 1.0).astype(x.data.dtype, copy=False)
    mask = ((x.data > -3.0) & (x.data < 3.0)).astype(x.data.dtype) / 6.0

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(data, (x,), _bw)


def hard_swish(x: Tensor) -> Tensor:
    """x * hard_sigmoid(x) — MobileNetV3's h-swish."""
    hs = np.clip(x.data / 6.0 + 0.5, 0.0, 1.0)
    data = (x.data * hs).astype(x.data.dtype, copy=False)
    inner = ((x.data > -3.0) & (x.data < 3.0)).astype(x.data.dtype) / 6.0
    deriv = hs + x.data * inner

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * deriv)

    return Tensor._make(data, (x,), _bw)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    data = exps / exps.sum(axis=axis, keepdims=True)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        dot = (g * data).sum(axis=axis, keepdims=True)
        x._accumulate(data * (g - dot))

    return Tensor._make(data.astype(x.data.dtype, copy=False), (x,), _bw)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - logsumexp
    soft = np.exp(data)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(data.astype(x.data.dtype, copy=False), (x,), _bw)


# ---------------------------------------------------------------------------
# Linear / convolution
# ---------------------------------------------------------------------------


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` with (out_features, in_features) weight layout."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Return windows of shape (N, C, OH, OW, KH, KW) as a *view* when possible."""
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    return windows, (windows.shape[2], windows.shape[3])


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: _Pair = 1,
    padding: _Pair = 0,
    groups: int = 1,
) -> Tensor:
    """2-D cross-correlation (PyTorch convention) with grouped support.

    Shapes: x (N, C, H, W), weight (F, C/groups, KH, KW) -> (N, F, OH, OW).
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.data.shape
    f, c_per_group, kh, kw = weight.data.shape
    if c != c_per_group * groups:
        raise ValueError(f"conv2d channel mismatch: x has {c}, weight implies {c_per_group * groups}")
    if f % groups:
        raise ValueError(f"out_channels {f} not divisible by groups {groups}")

    cols, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, ph, pw)

    if groups == 1:
        out = np.einsum("nchwij,fcij->nfhw", cols, weight.data, optimize=True)
    elif groups == c and c_per_group == 1:
        # depthwise fast path
        out = np.einsum("nchwij,cij->nchw", cols, weight.data[:, 0], optimize=True)
        if f != c:  # depth multiplier > 1 unsupported by the fast path
            raise ValueError("depthwise conv requires out_channels == in_channels")
    else:
        f_per_group = f // groups
        out = np.empty((n, f, oh, ow), dtype=x.data.dtype)
        for g in range(groups):
            cs = slice(g * c_per_group, (g + 1) * c_per_group)
            fs = slice(g * f_per_group, (g + 1) * f_per_group)
            out[:, fs] = np.einsum("nchwij,fcij->nfhw", cols[:, cs], weight.data[fs], optimize=True)
    out = np.ascontiguousarray(out)
    if bias is not None:
        out += bias.data.reshape(1, -1, 1, 1)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if weight.requires_grad:
            if groups == 1:
                gw = np.einsum("nfhw,nchwij->fcij", g, cols, optimize=True)
            elif groups == c and c_per_group == 1:
                gw = np.einsum("nchw,nchwij->cij", g, cols, optimize=True)[:, None, :, :]
            else:
                f_per_group = f // groups
                gw = np.empty_like(weight.data)
                for gi in range(groups):
                    cs = slice(gi * c_per_group, (gi + 1) * c_per_group)
                    fs = slice(gi * f_per_group, (gi + 1) * f_per_group)
                    gw[fs] = np.einsum("nfhw,nchwij->fcij", g[:, fs], cols[:, cs], optimize=True)
            weight._accumulate(gw)
        if x.requires_grad:
            # grad w.r.t. the im2col windows, then scatter back (col2im)
            if groups == 1:
                gcols = np.einsum("nfhw,fcij->nchwij", g, weight.data, optimize=True)
            elif groups == c and c_per_group == 1:
                gcols = np.einsum("nchw,cij->nchwij", g, weight.data[:, 0], optimize=True)
            else:
                f_per_group = f // groups
                gcols = np.empty((n, c, oh, ow, kh, kw), dtype=x.data.dtype)
                for gi in range(groups):
                    cs = slice(gi * c_per_group, (gi + 1) * c_per_group)
                    fs = slice(gi * f_per_group, (gi + 1) * f_per_group)
                    gcols[:, cs] = np.einsum("nfhw,fcij->nchwij", g[:, fs], weight.data[fs], optimize=True)
            gx = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.data.dtype)
            for i in range(kh):
                for j in range(kw):
                    gx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += gcols[:, :, :, :, i, j]
            if ph or pw:
                gx = gx[:, :, ph : ph + h, pw : pw + w]
            x._accumulate(gx)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2, 3)))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, _bw)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


def max_pool2d(x: Tensor, kernel_size: _Pair, stride: Optional[_Pair] = None) -> Tensor:
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.data.shape
    if h < kh or w < kw:
        return x  # input already smaller than the window (deep nets on tiny images)
    windows, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, 0, 0)
    flat = windows.reshape(n, c, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        gx = np.zeros((n, c, h, w), dtype=x.data.dtype)
        ki, kj = np.divmod(arg, kw)
        oh_idx, ow_idx = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
        rows = oh_idx[None, None] * sh + ki
        cols_ = ow_idx[None, None] * sw + kj
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(gx, (n_idx, c_idx, rows, cols_), g)
        x._accumulate(gx)

    return Tensor._make(np.ascontiguousarray(data), (x,), _bw)


def avg_pool2d(x: Tensor, kernel_size: _Pair, stride: Optional[_Pair] = None) -> Tensor:
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.data.shape
    if h < kh or w < kw:
        return x  # input already smaller than the window
    windows, (oh, ow) = _im2col(x.data, kh, kw, sh, sw, 0, 0)
    data = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kh * kw)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad) * scale
        gx = np.zeros((n, c, h, w), dtype=x.data.dtype)
        for i in range(kh):
            for j in range(kw):
                gx[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += g
        x._accumulate(gx)

    return Tensor._make(np.ascontiguousarray(data), (x,), _bw)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global average pooling when ``output_size == 1`` (the only case used)."""
    if output_size != 1:
        raise NotImplementedError("only global (1x1) adaptive pooling is implemented")
    n, c, h, w = x.data.shape
    data = x.data.mean(axis=(2, 3), keepdims=True)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad) / (h * w)
        x._accumulate(np.broadcast_to(g, x.data.shape))

    return Tensor._make(data, (x,), _bw)


# ---------------------------------------------------------------------------
# Normalization / regularization
# ---------------------------------------------------------------------------


def batch_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over all axes except channel (axis 1 for 4-D, -1 for 2-D).

    ``running_mean``/``running_var`` are updated in place during training,
    matching PyTorch's exponential-moving-average convention.
    """
    if x.data.ndim == 4:
        axes: Tuple[int, ...] = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.data.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.data.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        m = x.data.size / x.data.shape[1]
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var * (m / max(m - 1.0, 1.0))  # unbiased, as torch
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    data = x_hat * weight.data.reshape(shape) + bias.data.reshape(shape)

    def _bw(grad: np.ndarray) -> None:
        g = np.asarray(grad)
        if weight.requires_grad:
            weight._accumulate((g * x_hat).sum(axis=axes))
        if bias.requires_grad:
            bias._accumulate(g.sum(axis=axes))
        if x.requires_grad:
            w = weight.data.reshape(shape)
            if training:
                m = x.data.size / x.data.shape[1]
                gxhat = g * w
                term1 = gxhat
                term2 = gxhat.mean(axis=axes, keepdims=True)
                term3 = x_hat * (gxhat * x_hat).mean(axis=axes, keepdims=True)
                x._accumulate((term1 - term2 - term3) * inv_std.reshape(shape))
            else:
                x._accumulate(g * w * inv_std.reshape(shape))

    return Tensor._make(data.astype(x.data.dtype, copy=False), (x, weight, bias), _bw)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    data = x.data * mask

    def _bw(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(data, (x,), _bw)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------


def cross_entropy(logits: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy against integer class labels (fused backward)."""
    target = np.asarray(target)
    if target.ndim != 1:
        raise ValueError("target must be a 1-D array of class indices")
    n = logits.data.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    losses = -log_probs[np.arange(n), target]
    if reduction == "mean":
        value = losses.mean()
    elif reduction == "sum":
        value = losses.sum()
    else:
        raise ValueError(f"unknown reduction {reduction!r}")
    soft = np.exp(log_probs)

    def _bw(grad: np.ndarray) -> None:
        g = float(np.asarray(grad))
        delta = soft.copy()
        delta[np.arange(n), target] -= 1.0
        if reduction == "mean":
            delta /= n
        logits._accumulate(delta * g)

    return Tensor._make(np.asarray(value, dtype=logits.data.dtype), (logits,), _bw)


def nll_loss(log_probs: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over precomputed log-probabilities."""
    target = np.asarray(target)
    n = log_probs.data.shape[0]
    picked = log_probs[np.arange(n), target]
    loss = -(picked.sum() if reduction == "sum" else picked.mean())
    return loss


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray], reduction: str = "mean") -> Tensor:
    target_t = target if isinstance(target, Tensor) else Tensor(_as_array(target, pred.data.dtype))
    diff = pred - target_t
    sq = diff * diff
    return sq.mean() if reduction == "mean" else sq.sum()
