"""Learning-rate schedules mirroring ``torch.optim.lr_scheduler``.

The paper's training setups use MultiStepLR (decay 0.1/0.2 at fixed epochs)
and StepLR (decay 0.1 every 40 epochs); cosine and exponential are included
for the extension configs.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "MultiStepLR", "ExponentialLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class; subclasses define ``compute_lr(epoch)``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> None:
        """Advance one epoch and update the optimizer's lr."""
        self.last_epoch += 1
        self.optimizer.lr = self.compute_lr(self.last_epoch)

    def get_last_lr(self) -> float:
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply lr by ``gamma`` at each epoch in ``milestones``."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones: List[int] = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma**passed


class ExponentialLR(LRScheduler):
    def __init__(self, optimizer: Optimizer, gamma: float) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base_lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def compute_lr(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max))
