"""``Module``/``Parameter`` containers with state_dict semantics.

The contract mirrors the slice of ``torch.nn.Module`` that FL frameworks
lean on: recursive parameter/buffer discovery with dotted names, train/eval
modes, ``state_dict``/``load_state_dict`` round-trips (parameters *and*
buffers such as BatchNorm running statistics — FedBN depends on the
distinction), and in-place ``zero_grad``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor; discovered automatically when set on a Module."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape}, dtype={self.data.dtype})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute routing ---------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            if name in self._parameters:
                del self._parameters[name]
            if name in self._modules:
                del self._modules[name]
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str) -> Any:
        for store in ("_parameters", "_buffers", "_modules"):
            d = self.__dict__.get(store)
            if d is not None and name in d:
                return d[name]
        raise AttributeError(f"{type(self).__name__!r} has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in ``state_dict`` (e.g. BN stats)."""
        self._buffers[name] = np.asarray(value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module

    # -- traversal -------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def buffers(self) -> List[np.ndarray]:
        return [b for _, b in self.named_buffers()]

    # -- state dict --------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of all parameters and buffers keyed by dotted name."""
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            out[name] = param.data.copy()
        for name, buf in self.named_buffers():
            out[name] = buf.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter/buffer values in place (shapes must match)."""
        params = dict(self.named_parameters())
        own_buffers: Dict[str, Tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for bname in module._buffers:
                full = f"{mod_name}.{bname}" if mod_name else bname
                own_buffers[full] = (module, bname)
        missing = (set(params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(params) | set(own_buffers))
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in params:
                target = params[name]
                if target.data.shape != np.shape(value):
                    raise ValueError(f"shape mismatch for {name!r}: {target.data.shape} vs {np.shape(value)}")
                target.data[...] = value
            elif name in own_buffers:
                module, bname = own_buffers[name]
                buf = module._buffers[bname]
                if buf.shape != np.shape(value):
                    raise ValueError(f"shape mismatch for buffer {name!r}")
                buf[...] = value

    # -- modes / grads -------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for m in self.modules():
            fn(m)
        return self

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    # -- forward ----------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [type(self).__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}()"


class ModuleList(Module):
    """Holds submodules in a list; indexable and iterable."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        for i, m in enumerate(modules or []):
            self.add_module(str(i), m)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)
