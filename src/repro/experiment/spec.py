"""Typed, validated experiment specifications — the framework's one config.

The paper's core claim is *configuration-driven* federation: one declarative
description mixing topology, algorithm, comm, compression, and privacy with
no code changes.  :class:`ExperimentSpec` is that description as a frozen
dataclass tree:

* :class:`DataSpec`      — dataset + partitioning (who sees what data);
* :class:`TrainSpec`     — model, algorithm, round/eval budget;
* :class:`PluginSpec`    — compressor / outer_compressor / dp codecs;
* :class:`FaultSpec`     — participation, dropouts, stragglers, selection;
* :class:`SchedulerSpec` — the execution policy (when updates merge).

Component fields (``topology``, ``data.dataset``, ``train.model``, ...)
accept three shapes:

1. a **registry name** (``"centralized"``, ``"fedavg"``) with kwargs in the
   sibling ``*_kwargs`` field — the declarative, serializable form;
2. a **Hydra-style mapping** with a ``_target_`` key — what
   :func:`ExperimentSpec.from_config` produces from composed YAML;
3. an **opaque object/factory** — what the deprecated legacy ``Engine``
   constructors feed through; such specs run fine but cannot serialize.

Specs in forms 1–2 roundtrip losslessly through the framework's own YAML
dumper: ``ExperimentSpec.from_yaml(spec.to_yaml()) == spec``.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, Mapping, Optional

from repro.config import yaml as _yaml

__all__ = [
    "SpecError",
    "DataSpec",
    "TrainSpec",
    "PluginSpec",
    "FaultSpec",
    "SchedulerSpec",
    "ClusterSpec",
    "AttackSpec",
    "AggregationSpec",
    "MTDSpec",
    "ExperimentSpec",
]

_MODES = ("rounds", "async", "auto", "live")


class SpecError(ValueError):
    """Raised on invalid or non-serializable experiment specifications."""


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _is_component_ref(value: Any) -> bool:
    """True for the serializable component shapes (name or _target_ map)."""
    return isinstance(value, str) or (isinstance(value, Mapping) and "_target_" in value)


def _is_opaque(value: Any) -> bool:
    return value is not None and not _is_component_ref(value)


def _check_serializable(value: Any, path: str) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, Mapping):
        for k, v in value.items():
            if not isinstance(k, str):
                raise SpecError(f"{path}: mapping keys must be strings, got {k!r}")
            _check_serializable(v, f"{path}.{k}")
        return
    if isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            _check_serializable(v, f"{path}[{i}]")
        return
    raise SpecError(
        f"{path}: {type(value).__name__} is not serializable — specs built "
        "from live objects (the legacy Engine constructors) cannot be dumped; "
        "use registry names or _target_ mappings instead"
    )


def _freeze(obj: Any, name: str, value: Any) -> None:
    object.__setattr__(obj, name, value)


def _plain(value: Any) -> Any:
    """Deep-copy mappings/sequences into plain dicts/lists."""
    if isinstance(value, Mapping):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _from_dict(cls: type, data: Mapping[str, Any], path: str) -> Any:
    if not isinstance(data, Mapping):
        raise SpecError(f"{path} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(f"{path}: unknown keys {sorted(unknown)} (known: {sorted(known)})")
    return cls(**{k: _plain(v) for k, v in data.items()})


# --------------------------------------------------------------------------
# the spec tree
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DataSpec:
    """Dataset and partitioning: who trains on what."""

    dataset: Any = "cifar10"
    kwargs: Dict[str, Any] = field(default_factory=dict)
    partition: str = "dirichlet"
    partition_alpha: float = 0.5
    batch_size: int = 32
    feature_noniid: float = 0.0

    def __post_init__(self) -> None:
        _freeze(self, "kwargs", _plain(self.kwargs or {}))
        if self.batch_size < 1:
            raise SpecError("data.batch_size must be >= 1")
        if self.partition_alpha <= 0:
            raise SpecError("data.partition_alpha must be > 0")
        if self.feature_noniid < 0:
            raise SpecError("data.feature_noniid must be >= 0")


@dataclass(frozen=True)
class TrainSpec:
    """Model, algorithm, and the round/evaluation budget."""

    algorithm: Any = "fedavg"
    algorithm_kwargs: Dict[str, Any] = field(default_factory=dict)
    model: Any = "simple_cnn"
    model_kwargs: Dict[str, Any] = field(default_factory=dict)
    global_rounds: int = 5
    eval_every: int = 1
    eval_max_batches: Optional[int] = None

    def __post_init__(self) -> None:
        _freeze(self, "algorithm_kwargs", _plain(self.algorithm_kwargs or {}))
        _freeze(self, "model_kwargs", _plain(self.model_kwargs or {}))
        if self.global_rounds < 1:
            raise ValueError("global_rounds must be >= 1")
        if self.eval_every < 0:
            raise SpecError("train.eval_every must be >= 0")
        if self.eval_max_batches is not None and self.eval_max_batches < 1:
            raise SpecError("train.eval_max_batches must be >= 1 (or null)")


@dataclass(frozen=True)
class PluginSpec:
    """Update-path plugins: compression and differential privacy.

    ``compressor``/``outer_compressor`` take a registry name (kwargs in the
    sibling field) or a ``_target_`` mapping; ``dp`` takes keyword arguments
    for :class:`~repro.privacy.dp.DifferentialPrivacy` or a ``_target_``
    mapping.  ``outer_compressor`` applies only to the slow cross-site link
    in hierarchical deployments (the paper's §3.4.5 trick).
    """

    compressor: Any = None
    compressor_kwargs: Dict[str, Any] = field(default_factory=dict)
    outer_compressor: Any = None
    outer_compressor_kwargs: Dict[str, Any] = field(default_factory=dict)
    dp: Any = None

    def __post_init__(self) -> None:
        _freeze(self, "compressor_kwargs", _plain(self.compressor_kwargs or {}))
        _freeze(self, "outer_compressor_kwargs", _plain(self.outer_compressor_kwargs or {}))
        if isinstance(self.dp, Mapping):
            _freeze(self, "dp", _plain(self.dp))


@dataclass(frozen=True)
class FaultSpec:
    """Participation and failure model of the client population."""

    client_fraction: float = 1.0
    drop_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_delay: float = 0.0
    selection: str = "random"
    selection_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _freeze(self, "selection_kwargs", _plain(self.selection_kwargs or {}))
        if not (0.0 < self.client_fraction <= 1.0):
            raise ValueError("client_fraction must be in (0, 1]")
        for name in ("drop_prob", "straggler_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise SpecError(f"faults.{name} must be in [0, 1]")
        if self.straggler_delay < 0:
            raise SpecError("faults.straggler_delay must be >= 0")


@dataclass(frozen=True)
class SchedulerSpec:
    """Execution policy: when client updates enter the global model.

    ``name`` picks a registered policy (``sync``, ``semi_sync``,
    ``fedasync``, ``fedbuff``, ``hier_async``, ``gossip_async``) with policy
    kwargs in ``kwargs``; alternatively ``kwargs`` may carry a Hydra-style
    ``_target_`` mapping and ``name`` stays null.
    """

    name: Optional[str] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _freeze(self, "kwargs", _plain(self.kwargs or {}))
        if self.name is None and "_target_" not in self.kwargs:
            raise SpecError("scheduler needs a policy name or a _target_ mapping")
        if self.name is not None and not isinstance(self.name, str):
            raise SpecError("scheduler.name must be a string")

    @classmethod
    def from_value(cls, value: Any) -> Any:
        """Normalize the legacy ``scheduler=`` shapes (str / dict / object)."""
        if value is None or isinstance(value, (cls,)):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            kwargs = _plain(value)
            if "_target_" in kwargs:
                return cls(name=None, kwargs=kwargs)
            name = kwargs.pop("name", None)
            if name is None:
                raise SpecError("scheduler mapping needs a 'name' (or '_target_') key")
            return cls(name=str(name), kwargs=kwargs)
        return value  # opaque Scheduler instance: legacy passthrough

    def to_value(self) -> Dict[str, Any]:
        """The mapping shape the engine's scheduler resolver understands."""
        if self.name is None:
            return dict(self.kwargs)
        return {"name": self.name, **self.kwargs}


@dataclass(frozen=True)
class ClusterSpec:
    """The live control plane: where the coordinator listens and how member
    liveness is judged (``mode: live`` runs; see :mod:`repro.cluster`).

    ``bind`` is the coordinator's listen address (``host:port``; port 0
    binds ephemeral), ``transport`` picks real TCP sockets or the in-proc
    registry (tests), ``min_nodes`` is the joining quorum ``run()`` waits
    for (up to ``join_timeout`` seconds), and ``heartbeat``/``lease`` set
    the liveness contract: members renew every ``heartbeat`` seconds and
    the ``detector`` (``timeout`` or phi-accrual ``phi``) evicts them once
    their silence outlives the ``lease``.
    """

    bind: str = "127.0.0.1:0"
    transport: str = "tcp"
    min_nodes: int = 1
    join_timeout: float = 60.0
    heartbeat: float = 0.5
    lease: float = 3.0
    detector: str = "timeout"
    phi_threshold: float = 8.0

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "inproc"):
            raise SpecError("cluster.transport must be 'tcp' or 'inproc'")
        if self.min_nodes < 1:
            raise SpecError("cluster.min_nodes must be >= 1")
        if self.join_timeout <= 0:
            raise SpecError("cluster.join_timeout must be > 0")
        if self.heartbeat <= 0:
            raise SpecError("cluster.heartbeat must be > 0")
        if self.lease <= self.heartbeat:
            raise SpecError(
                "cluster.lease must exceed cluster.heartbeat (a lease shorter "
                "than one heartbeat period evicts healthy members)"
            )
        if self.detector not in ("timeout", "phi"):
            raise SpecError("cluster.detector must be 'timeout' or 'phi'")
        if self.phi_threshold <= 0:
            raise SpecError("cluster.phi_threshold must be > 0")


_ATTACK_KINDS = ("label_flip", "sign_flip", "scaled_update", "backdoor")
_ROBUST_NAMES = ("median", "trimmed_mean", "krum", "multi_krum", "norm_clip")


@dataclass(frozen=True)
class AttackSpec:
    """Byzantine client roles: which attack, and how much of the cohort.

    ``fraction`` of the logical clients (at least one when > 0) run the
    ``kind`` behavior; assignment is a pure function of ``(seed, fraction,
    num_clients)`` (``seed`` defaults to the run seed) so broker workers and
    live nodes derive the identical attacker set from the published spec.
    ``scale`` drives the update attacks (``sign_flip``/``scaled_update``);
    the ``target_label``/``trigger_*``/``poison_frac`` knobs drive
    ``backdoor``.  ``fraction: 0`` is byte-identical to no attack block.
    """

    kind: str = "sign_flip"
    fraction: float = 0.0
    scale: float = 10.0
    seed: Optional[int] = None
    target_label: int = 0
    trigger_value: float = 2.5
    trigger_frac: float = 0.1
    poison_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _ATTACK_KINDS:
            raise SpecError(
                f"attack.kind must be one of {_ATTACK_KINDS}, got {self.kind!r}"
            )
        if not (0.0 <= self.fraction <= 1.0):
            raise SpecError("attack.fraction must be in [0, 1]")
        if self.scale <= 0:
            raise SpecError("attack.scale must be > 0")
        if self.target_label < 0:
            raise SpecError("attack.target_label must be >= 0")
        for name in ("trigger_frac", "poison_frac"):
            p = getattr(self, name)
            if not (0.0 < p <= 1.0):
                raise SpecError(f"attack.{name} must be in (0, 1]")


@dataclass(frozen=True)
class AggregationSpec:
    """Server/peer-side aggregation hardening.

    ``robust`` names a robust combination rule (coordinate-wise ``median``,
    ``trimmed_mean``, ``krum``, ``multi_krum``, ``norm_clip``) that replaces
    the weighted mean inside every scheduler policy — sync/semi-sync rounds,
    the fedasync interpolation target, the fedbuff flush, hierarchical
    site/outer tiers, and gossip neighbor mixing.  ``kwargs`` go to the
    rule's constructor (``trim_ratio``, ``f``, ``multi``, ``clip_norm``).
    """

    robust: Optional[str] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _freeze(self, "kwargs", _plain(self.kwargs or {}))
        if self.robust is not None and self.robust not in _ROBUST_NAMES:
            raise SpecError(
                f"aggregation.robust must be one of {_ROBUST_NAMES}, got {self.robust!r}"
            )


@dataclass(frozen=True)
class MTDSpec:
    """Moving-target defense for gossip runs: re-sample the neighbor map
    and mixing matrix per epoch from a seeded stream.

    ``degree`` is the target overlay degree (2 = a re-permuted ring),
    ``reshuffle_every`` the epoch length in applied updates (null: once per
    ``len(peers)`` updates, i.e. roughly per round), ``seed`` the sampling
    seed (null: the run seed).  Only meaningful with a gossip topology.
    """

    degree: int = 2
    reshuffle_every: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.degree < 2:
            raise SpecError("mtd.degree must be >= 2 (ring connectivity)")
        if self.reshuffle_every is not None and self.reshuffle_every < 1:
            raise SpecError("mtd.reshuffle_every must be >= 1 (or null)")


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, validated federated experiment."""

    topology: Any = "centralized"
    topology_kwargs: Dict[str, Any] = field(default_factory=dict)
    data: DataSpec = field(default_factory=DataSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    plugins: PluginSpec = field(default_factory=PluginSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    scheduler: Any = None
    #: "rounds" forces the synchronous barrier loop, "async" the scheduler
    #: runtime; "auto" runs async exactly when a scheduler is configured
    #: (or pooled execution, which always runs on the scheduler runtime)
    mode: str = "auto"
    seed: int = 0
    #: async run length in applied client updates (null: global_rounds x
    #: trainer count, the scheduler default)
    total_updates: Optional[int] = None
    #: cohort size override injected into the topology (flat topologies'
    #: ``num_clients``); null keeps the topology's own setting
    num_clients: Optional[int] = None
    #: simulate the cohort on this many reusable worker nodes instead of one
    #: dedicated node per client (null: dedicated).  A pool >= the trainer
    #: count degenerates to dedicated execution; a smaller pool bounds
    #: memory/threads by the pool while staying bit-identical to dedicated
    pool_size: Optional[int] = None
    #: turn-queue broker URL for pooled execution: ``memory://`` (default)
    #: runs turns on in-process worker actors, ``redis://host:port/db``
    #: dispatches them to worker processes (``repro worker <url>``); see
    #: :mod:`repro.runtime.broker` for the scheme registry
    broker: str = "memory://"
    #: opt-in hot path: fuse up to this many same-payload client turns into
    #: one batched tensor pass where the algorithm/model allow (fedavg,
    #: fedper shared trunk on MLPs); ineligible turns fall back to the exact
    #: per-turn path, so results stay bit-identical either way.  null (the
    #: default) keeps strictly per-turn execution
    batch_turns: Optional[int] = None
    #: the live control plane (``mode: live``): coordinator bind address,
    #: joining quorum, heartbeat/lease contract, and failure detector.
    #: null keeps every run simulated; a mapping builds a :class:`ClusterSpec`
    cluster: Any = None
    #: byzantine client roles (:class:`AttackSpec`): null runs an honest
    #: cohort; a mapping assigns ``attack.fraction`` of the clients the
    #: ``attack.kind`` behavior at the client-update seam
    attack: Any = None
    #: aggregation hardening (:class:`AggregationSpec`): ``robust`` swaps a
    #: robust combination rule in for the weighted mean on every policy
    aggregation: Any = None
    #: moving-target defense (:class:`MTDSpec`) for gossip runs: re-sample
    #: the overlay per epoch from a seeded stream; null keeps it static
    mtd: Any = None

    def __post_init__(self) -> None:
        _freeze(self, "topology_kwargs", _plain(self.topology_kwargs or {}))
        if isinstance(self.data, Mapping):
            _freeze(self, "data", _from_dict(DataSpec, self.data, "data"))
        if isinstance(self.train, Mapping):
            _freeze(self, "train", _from_dict(TrainSpec, self.train, "train"))
        if isinstance(self.plugins, Mapping):
            _freeze(self, "plugins", _from_dict(PluginSpec, self.plugins, "plugins"))
        if isinstance(self.faults, Mapping):
            _freeze(self, "faults", _from_dict(FaultSpec, self.faults, "faults"))
        if isinstance(self.scheduler, (str, Mapping)):
            _freeze(self, "scheduler", SchedulerSpec.from_value(self.scheduler))
        if isinstance(self.cluster, Mapping):
            _freeze(self, "cluster", _from_dict(ClusterSpec, self.cluster, "cluster"))
        if isinstance(self.attack, Mapping):
            _freeze(self, "attack", _from_dict(AttackSpec, self.attack, "attack"))
        if isinstance(self.aggregation, Mapping):
            _freeze(self, "aggregation", _from_dict(AggregationSpec, self.aggregation, "aggregation"))
        if isinstance(self.mtd, Mapping):
            _freeze(self, "mtd", _from_dict(MTDSpec, self.mtd, "mtd"))
        if self.mode not in _MODES:
            raise SpecError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.mode == "live":
            if self.cluster is None:
                raise SpecError(
                    "mode='live' needs a cluster spec (where the coordinator "
                    "listens and how liveness is judged); set cluster: {} for "
                    "the localhost defaults"
                )
            if self.faults.drop_prob > 0 or self.faults.straggler_prob > 0:
                raise SpecError(
                    "live mode replaces the scripted fault model with real "
                    "membership: set faults.drop_prob and "
                    "faults.straggler_prob to 0 (kill node processes instead)"
                )
            if self.pool_size is not None:
                raise SpecError(
                    "live mode serves clients from cluster members, not a "
                    "worker pool; leave pool_size null"
                )
            if self.batch_turns is not None:
                raise SpecError("live mode does not support batch_turns fusion")
            if self.broker is not None and not str(self.broker).startswith("memory:"):
                raise SpecError(
                    "live mode owns turn transport (the cluster coordinator); "
                    "leave broker at memory://"
                )
        elif self.cluster is not None and self.mode != "auto":
            raise SpecError(
                f"a cluster spec only runs under mode='live' (or 'auto'), "
                f"got mode={self.mode!r}"
            )
        if self.total_updates is not None and self.total_updates < 1:
            raise SpecError("total_updates must be >= 1 (or null)")
        if self.num_clients is not None and self.num_clients < 1:
            raise SpecError("num_clients must be >= 1 (or null)")
        if self.pool_size is not None and self.pool_size < 1:
            raise SpecError("pool_size must be >= 1 (or null)")
        if self.batch_turns is not None and self.batch_turns < 1:
            raise SpecError("batch_turns must be >= 1 (or null)")
        if self.broker is None:
            _freeze(self, "broker", "memory://")
        # scheme registry owns URL validation (ValueError names the
        # registered schemes); imported lazily to keep spec import-light
        from repro.runtime.broker import broker_scheme

        broker_scheme(self.broker)

    # -- dispatch ----------------------------------------------------------
    def run_mode(self) -> str:
        """Resolve ``mode='auto'`` to the concrete execution mode."""
        if self.mode == "auto":
            # a cluster spec means the cohort lives in real processes: the
            # live control plane is the only path that can reach them
            if self.cluster is not None:
                return "live"
            # pooled cohorts have no collective rounds: the scheduler
            # runtime (default policy if none is named) is the only path
            if (
                self.scheduler is not None
                or self.pool_size is not None
                or not self.broker.startswith("memory:")
            ):
                return "async"
            return "rounds"
        return self.mode

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-container form (raises :class:`SpecError` on opaque parts)."""
        out: Dict[str, Any] = {
            "topology": self.topology,
            "topology_kwargs": dict(self.topology_kwargs),
            "data": asdict(self.data),
            "train": asdict(self.train),
            "plugins": asdict(self.plugins),
            "faults": asdict(self.faults),
            "scheduler": asdict(self.scheduler) if is_dataclass(self.scheduler) else self.scheduler,
            "mode": self.mode,
            "seed": self.seed,
            "total_updates": self.total_updates,
            "num_clients": self.num_clients,
            "pool_size": self.pool_size,
            "broker": self.broker,
            "batch_turns": self.batch_turns,
            "cluster": asdict(self.cluster) if is_dataclass(self.cluster) else self.cluster,
            "attack": asdict(self.attack) if is_dataclass(self.attack) else self.attack,
            "aggregation": (
                asdict(self.aggregation) if is_dataclass(self.aggregation) else self.aggregation
            ),
            "mtd": asdict(self.mtd) if is_dataclass(self.mtd) else self.mtd,
        }
        _check_serializable(out, "spec")
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got {type(data).__name__}")
        payload = dict(data)
        scheduler = payload.pop("scheduler", None)
        spec_kwargs: Dict[str, Any] = {}
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"spec: unknown keys {sorted(unknown)} (known: {sorted(known)})")
        for key, value in payload.items():
            spec_kwargs[key] = _plain(value)
        if scheduler is not None:
            if isinstance(scheduler, Mapping) and set(scheduler) <= {"name", "kwargs"}:
                spec_kwargs["scheduler"] = SchedulerSpec(
                    name=scheduler.get("name"), kwargs=_plain(scheduler.get("kwargs") or {})
                )
            else:
                spec_kwargs["scheduler"] = SchedulerSpec.from_value(scheduler)
        return cls(**spec_kwargs)

    def to_yaml(self) -> str:
        """Serialize through the framework's own YAML dumper."""
        return _yaml.dumps(self.to_dict())

    @classmethod
    def from_yaml(cls, text: str) -> "ExperimentSpec":
        data = _yaml.loads(text)
        if data is None:
            data = {}
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        with open(path, "r", encoding="utf8") as fh:
            return cls.from_yaml(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf8") as fh:
            fh.write(self.to_yaml())

    def fingerprint(self) -> str:
        """Stable hash of the resolved spec (seed included): run identity."""
        try:
            canonical = self.to_yaml()
        except SpecError:
            canonical = repr(self)  # opaque specs: best-effort identity
        return hashlib.sha256(canonical.encode("utf8")).hexdigest()[:16]

    # -- construction from composed configs --------------------------------
    @classmethod
    def from_config(cls, cfg: Any) -> "ExperimentSpec":
        """Build a spec from a composed Hydra-style config (Fig. 2 layout).

        Expects the shape of ``repro/conf/experiment.yaml``: ``topology``,
        ``algorithm``, ``model``, ``datamodule`` nodes (each carrying a
        ``_target_``) plus scalar engine settings, with optional
        ``compression``, ``privacy``, and ``scheduler`` nodes.
        """
        from repro.config.node import ConfigNode

        if isinstance(cfg, ConfigNode):
            cfg = cfg.to_container(resolve=True)
        if not isinstance(cfg, Mapping):
            raise SpecError(f"config must be a mapping, got {type(cfg).__name__}")
        for key in ("topology", "algorithm", "model", "datamodule"):
            if key not in cfg:
                raise SpecError(f"config is missing the {key!r} node")
        comp_cfg = cfg.get("compression")
        dp_cfg = cfg.get("privacy")
        sched_cfg = cfg.get("scheduler")
        return cls(
            topology=_plain(cfg["topology"]),
            data=DataSpec(
                dataset=_plain(cfg["datamodule"]),
                partition=str(cfg.get("partition", "dirichlet")),
                partition_alpha=float(cfg.get("partition_alpha", 0.5)),
                batch_size=int(cfg.get("batch_size", 32)),
                feature_noniid=float(cfg.get("feature_noniid", 0.0)),
            ),
            train=TrainSpec(
                algorithm=_plain(cfg["algorithm"]),
                model=_plain(cfg["model"]),
                global_rounds=int(cfg.get("global_rounds", 2)),
                eval_every=int(cfg.get("eval_every", 1)),
                eval_max_batches=cfg.get("eval_max_batches"),
            ),
            plugins=PluginSpec(
                compressor=_plain(comp_cfg) if comp_cfg else None,
                dp=_plain(dp_cfg) if dp_cfg else None,
            ),
            faults=FaultSpec(
                client_fraction=float(cfg.get("client_fraction", 1.0)),
                drop_prob=float(cfg.get("drop_prob", 0.0)),
                straggler_prob=float(cfg.get("straggler_prob", 0.0)),
                straggler_delay=float(cfg.get("straggler_delay", 0.0)),
                selection=str(cfg.get("selection", "random")),
                selection_kwargs=_plain(cfg.get("selection_kwargs") or {}),
            ),
            scheduler=SchedulerSpec.from_value(
                _plain(sched_cfg) if isinstance(sched_cfg, Mapping) else sched_cfg
            ),
            mode=str(cfg.get("mode", "auto")),
            seed=int(cfg.get("seed", 0)),
            total_updates=(
                int(cfg["total_updates"]) if cfg.get("total_updates") is not None else None
            ),
            num_clients=(
                int(cfg["num_clients"]) if cfg.get("num_clients") is not None else None
            ),
            pool_size=(
                int(cfg["pool_size"]) if cfg.get("pool_size") is not None else None
            ),
            broker=str(cfg.get("broker") or "memory://"),
            batch_turns=(
                int(cfg["batch_turns"]) if cfg.get("batch_turns") is not None else None
            ),
            cluster=_plain(cfg.get("cluster")) if cfg.get("cluster") is not None else None,
            attack=_plain(cfg.get("attack")) if cfg.get("attack") is not None else None,
            aggregation=(
                _plain(cfg.get("aggregation")) if cfg.get("aggregation") is not None else None
            ),
            mtd=_plain(cfg.get("mtd")) if cfg.get("mtd") is not None else None,
        )


# --------------------------------------------------------------------------
# legacy-kwargs bridges (the deprecated Engine constructors route through
# these so every construction path produces one ExperimentSpec)
# --------------------------------------------------------------------------

def spec_from_parts(
    *,
    topology: Any,
    topology_kwargs: Optional[Mapping[str, Any]] = None,
    datamodule: Any,
    datamodule_kwargs: Optional[Mapping[str, Any]] = None,
    model: Any,
    model_kwargs: Optional[Mapping[str, Any]] = None,
    algorithm: Any,
    algorithm_kwargs: Optional[Mapping[str, Any]] = None,
    compressor: Any = None,
    compressor_kwargs: Optional[Mapping[str, Any]] = None,
    outer_compressor: Any = None,
    outer_compressor_kwargs: Optional[Mapping[str, Any]] = None,
    dp: Any = None,
    global_rounds: int = 5,
    batch_size: int = 32,
    seed: int = 0,
    partition: str = "dirichlet",
    partition_alpha: float = 0.5,
    eval_every: int = 1,
    eval_max_batches: Optional[int] = None,
    client_fraction: float = 1.0,
    drop_prob: float = 0.0,
    straggler_prob: float = 0.0,
    straggler_delay: float = 0.0,
    feature_noniid: float = 0.0,
    selection: str = "random",
    selection_kwargs: Optional[Mapping[str, Any]] = None,
    scheduler: Any = None,
    mode: str = "auto",
    total_updates: Optional[int] = None,
    num_clients: Optional[int] = None,
    pool_size: Optional[int] = None,
    broker: str = "memory://",
    batch_turns: Optional[int] = None,
    cluster: Any = None,
    attack: Any = None,
    aggregation: Any = None,
    mtd: Any = None,
) -> ExperimentSpec:
    """Assemble an :class:`ExperimentSpec` from flat engine-style kwargs."""
    return ExperimentSpec(
        topology=topology,
        topology_kwargs=dict(topology_kwargs or {}),
        data=DataSpec(
            dataset=datamodule,
            kwargs=dict(datamodule_kwargs or {}),
            partition=partition,
            partition_alpha=partition_alpha,
            batch_size=batch_size,
            feature_noniid=feature_noniid,
        ),
        train=TrainSpec(
            algorithm=algorithm,
            algorithm_kwargs=dict(algorithm_kwargs or {}),
            model=model,
            model_kwargs=dict(model_kwargs or {}),
            global_rounds=global_rounds,
            eval_every=eval_every,
            eval_max_batches=eval_max_batches,
        ),
        plugins=PluginSpec(
            compressor=compressor,
            compressor_kwargs=dict(compressor_kwargs or {}),
            outer_compressor=outer_compressor,
            outer_compressor_kwargs=dict(outer_compressor_kwargs or {}),
            dp=dp,
        ),
        faults=FaultSpec(
            client_fraction=client_fraction,
            drop_prob=drop_prob,
            straggler_prob=straggler_prob,
            straggler_delay=straggler_delay,
            selection=selection,
            selection_kwargs=dict(selection_kwargs or {}),
        ),
        scheduler=SchedulerSpec.from_value(scheduler),
        mode=mode,
        seed=seed,
        total_updates=total_updates,
        num_clients=num_clients,
        pool_size=pool_size,
        broker=broker,
        batch_turns=batch_turns,
        cluster=cluster,
        attack=attack,
        aggregation=aggregation,
        mtd=mtd,
    )


def spec_from_names(
    topology: str = "centralized",
    algorithm: str = "fedavg",
    model: str = "simple_cnn",
    datamodule: str = "cifar10",
    num_clients: int = 4,
    topology_kwargs: Optional[Mapping[str, Any]] = None,
    algorithm_kwargs: Optional[Mapping[str, Any]] = None,
    model_kwargs: Optional[Mapping[str, Any]] = None,
    datamodule_kwargs: Optional[Mapping[str, Any]] = None,
    compressor: Optional[str] = None,
    compressor_kwargs: Optional[Mapping[str, Any]] = None,
    **engine_kwargs: Any,
) -> ExperimentSpec:
    """The ``Engine.from_names`` argument surface as a spec."""
    topo_kw = dict(topology_kwargs or {})
    topo_kw.setdefault("num_clients", num_clients)
    if topology in ("hierarchical", "tree", "hub_spoke"):
        topo_kw.pop("num_clients", None)
    # the legacy surface also accepted plugin factories through engine_kwargs
    legacy_plugins = {
        "compressor_fn": "compressor",
        "outer_compressor_fn": "outer_compressor",
        "dp_fn": "dp",
    }
    extra: Dict[str, Any] = {}
    for legacy_key, part in legacy_plugins.items():
        if legacy_key in engine_kwargs:
            extra[part] = engine_kwargs.pop(legacy_key)
    if compressor is not None:
        extra["compressor"] = compressor
        extra["compressor_kwargs"] = dict(compressor_kwargs or {})
    return spec_from_parts(
        topology=topology,
        topology_kwargs=topo_kw,
        datamodule=datamodule,
        datamodule_kwargs=dict(datamodule_kwargs or {}),
        model=model,
        model_kwargs=dict(model_kwargs or {}),
        algorithm=algorithm,
        algorithm_kwargs=dict(algorithm_kwargs or {}),
        **extra,
        **engine_kwargs,
    )


# --------------------------------------------------------------------------
# component resolution (spec -> live objects the executor consumes)
# --------------------------------------------------------------------------

def resolve_topology(spec: ExperimentSpec) -> Any:
    from repro.config.instantiate import instantiate
    from repro.topology.base import build_topology

    ref = spec.topology
    kw = dict(spec.topology_kwargs)
    if spec.num_clients is not None:
        if not isinstance(ref, (str, Mapping)):
            raise SpecError(
                "num_clients cannot override an opaque topology object; "
                "set the cohort size on the object itself"
            )
        kw["num_clients"] = int(spec.num_clients)
    if isinstance(ref, str):
        return build_topology(ref, **kw)
    if isinstance(ref, Mapping):
        return instantiate(dict(ref), **kw)
    return ref


def resolve_datamodule(spec: ExperimentSpec) -> Any:
    from repro.config.instantiate import instantiate
    from repro.data.registry import build_datamodule

    ref = spec.data.dataset
    if isinstance(ref, str):
        return build_datamodule(ref, **dict(spec.data.kwargs))
    if isinstance(ref, Mapping):
        return instantiate(dict(ref), **dict(spec.data.kwargs))
    return ref


def _inject_model_dims(kw: Dict[str, Any], is_mlp: bool, dm: Any, seed: int) -> Dict[str, Any]:
    kw.setdefault("num_classes", dm.num_classes)
    if is_mlp and dm.in_features is not None:
        kw.setdefault("in_features", dm.in_features)
    elif dm.in_channels:
        kw.setdefault("in_channels", dm.in_channels)
    kw.setdefault("seed", seed)
    return kw


def resolve_model_fn(spec: ExperimentSpec, dm: Any) -> Callable[[], Any]:
    from repro.config.instantiate import instantiate
    from repro.models.registry import build_model

    ref = spec.train.model
    if isinstance(ref, str):
        kw = _inject_model_dims(dict(spec.train.model_kwargs), ref == "mlp", dm, spec.seed)
        return lambda: build_model(ref, **kw)
    if isinstance(ref, Mapping):
        cfg = dict(ref)
        cfg.update(spec.train.model_kwargs)
        cfg = _inject_model_dims(cfg, "mlp" in str(cfg.get("_target_", "")), dm, spec.seed)
        return lambda: instantiate(dict(cfg))
    return ref  # opaque factory


def resolve_algorithm_fn(spec: ExperimentSpec) -> Callable[[], Any]:
    from repro.algorithms.base import build_algorithm
    from repro.config.instantiate import instantiate

    ref = spec.train.algorithm
    if isinstance(ref, str):
        kw = dict(spec.train.algorithm_kwargs)
        return lambda: build_algorithm(ref, **kw)
    if isinstance(ref, Mapping):
        cfg = dict(ref)
        cfg.update(spec.train.algorithm_kwargs)
        return lambda: instantiate(dict(cfg))
    return ref


def _resolve_compressor_fn(ref: Any, kwargs: Mapping[str, Any]) -> Optional[Callable[[], Any]]:
    from repro.compression.base import build_compressor
    from repro.config.instantiate import instantiate

    if ref is None:
        return None
    if isinstance(ref, str):
        kw = dict(kwargs)
        return lambda: build_compressor(ref, **kw)
    if isinstance(ref, Mapping):
        cfg = dict(ref)
        cfg.update(kwargs)
        return lambda: instantiate(dict(cfg))
    return ref


def resolve_plugin_fns(spec: ExperimentSpec):
    """(compressor_fn, outer_compressor_fn, dp_fn) factories, each optional."""
    from repro.config.instantiate import instantiate
    from repro.privacy.dp import DifferentialPrivacy

    plugins = spec.plugins
    comp_fn = _resolve_compressor_fn(plugins.compressor, plugins.compressor_kwargs)
    outer_fn = _resolve_compressor_fn(plugins.outer_compressor, plugins.outer_compressor_kwargs)

    dp_ref = plugins.dp
    if dp_ref is None:
        dp_fn = None
    elif isinstance(dp_ref, Mapping):
        cfg = dict(dp_ref)
        if "_target_" in cfg:
            dp_fn = lambda: instantiate(dict(cfg))  # noqa: E731
        else:
            dp_fn = lambda: DifferentialPrivacy(**cfg)  # noqa: E731
    else:
        dp_fn = dp_ref  # opaque factory
    return comp_fn, outer_fn, dp_fn


def resolve_scheduler_value(spec: ExperimentSpec) -> Any:
    """The shape ``Engine._resolve_scheduler`` accepts (dict/None/object)."""
    sched = spec.scheduler
    if sched is None:
        return None
    if isinstance(sched, SchedulerSpec):
        return sched.to_value()
    return sched


def resolve_attack_plan(spec: ExperimentSpec, num_clients: int, num_classes: int) -> Any:
    """The executable attack plan for this spec, or ``None`` (honest run).

    Pure in ``(spec, num_clients, num_classes)``: the engine, broker
    workers, and live cluster nodes all call this against the same published
    spec and derive the identical attacker set.
    """
    if getattr(spec, "attack", None) is None:
        return None
    from repro.robust.roles import build_attack_plan

    return build_attack_plan(spec.attack, int(num_clients), int(num_classes), int(spec.seed))


def resolve_robust_fn(spec: ExperimentSpec) -> Optional[Callable[[], Any]]:
    """A factory of fresh robust-aggregator instances, or ``None``.

    A *factory* rather than an instance: every scheduler binding (including
    each hierarchical site tier) gets its own instance so clip/reject
    counters stay per-tier.  The name and kwargs are validated eagerly so a
    bad spec fails at engine construction, not mid-run.
    """
    agg = getattr(spec, "aggregation", None)
    if agg is None or agg.robust is None:
        return None
    from repro.robust.aggregators import build_robust_aggregator

    name, kwargs = str(agg.robust), dict(agg.kwargs)
    build_robust_aggregator(name, **kwargs)  # validate eagerly
    return lambda: build_robust_aggregator(name, **kwargs)
