"""Structured run results: everything one federated run produced.

A :class:`RunResult` bundles the metrics history, the final (or consensus)
global model state, the communication summary, and a snapshot of the
resolved spec + seed fingerprint that produced it — enough to archive a run
to a directory with :meth:`RunResult.save` and reload it later with
:meth:`RunResult.load` for comparison or reporting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.config import yaml as _yaml
from repro.engine.metrics import MetricsCollector, RoundRecord
from repro.experiment.spec import ExperimentSpec

__all__ = ["RunResult"]

_SPEC_FILE = "spec.yaml"
_RESULT_FILE = "result.yaml"
_METRICS_FILE = "metrics.yaml"
_STATE_FILE = "state.npz"


@dataclass
class RunResult:
    """What :meth:`repro.experiment.Experiment.run` returns."""

    spec: ExperimentSpec
    metrics: MetricsCollector
    #: final global model state — on gossip topologies the consensus
    #: (stationary-distribution-weighted) average
    final_state: Optional[Dict[str, np.ndarray]] = None
    #: per-communicator-group lifetime totals (bytes, simulated seconds)
    comm: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: "rounds" or "async" — the mode the dispatcher actually ran
    mode: str = "rounds"
    #: stable identity of (resolved spec, seed)
    fingerprint: str = ""
    wall_seconds: float = 0.0
    #: why the run ended early, if a callback stopped it
    stop_reason: Optional[str] = None

    # -- convenience views -------------------------------------------------
    @property
    def history(self) -> List[RoundRecord]:
        return self.metrics.history

    def final_accuracy(self) -> Optional[float]:
        return self.metrics.final_accuracy()

    def best_accuracy(self) -> Optional[float]:
        return self.metrics.best_accuracy()

    def sim_makespan(self) -> float:
        return self.metrics.sim_makespan()

    def total_applied(self) -> int:
        return self.metrics.total_applied()

    def total_bytes(self) -> int:
        return self.metrics.total_bytes()

    def summary(self) -> Dict[str, Any]:
        out = dict(self.metrics.summary())
        out.update(
            mode=self.mode,
            fingerprint=self.fingerprint,
            wall_seconds=self.wall_seconds,
            stop_reason=self.stop_reason,
        )
        return out

    def table(self) -> str:
        return self.metrics.table()

    # -- persistence -------------------------------------------------------
    def save(self, directory: str) -> str:
        """Archive the run to ``directory``; returns the directory path."""
        os.makedirs(directory, exist_ok=True)
        self.spec.save(os.path.join(directory, _SPEC_FILE))
        _yaml.dump(
            [rec.to_payload() for rec in self.metrics.history],
            os.path.join(directory, _METRICS_FILE),
        )
        meta = {
            "mode": self.mode,
            "fingerprint": self.fingerprint,
            "wall_seconds": float(self.wall_seconds),
            "stop_reason": self.stop_reason,
            "comm": {
                group: {k: float(v) for k, v in stats.items()}
                for group, stats in self.comm.items()
            },
        }
        _yaml.dump(meta, os.path.join(directory, _RESULT_FILE))
        if self.final_state is not None:
            np.savez(os.path.join(directory, _STATE_FILE), **self.final_state)
        return directory

    @classmethod
    def load(cls, directory: str) -> "RunResult":
        """Rebuild a result from a :meth:`save` directory."""
        spec = ExperimentSpec.load(os.path.join(directory, _SPEC_FILE))
        meta = _yaml.load(os.path.join(directory, _RESULT_FILE)) or {}
        metrics = MetricsCollector()
        records = _yaml.load(os.path.join(directory, _METRICS_FILE)) or []
        metrics.history = [RoundRecord.from_payload(rec) for rec in records]
        final_state = None
        state_path = os.path.join(directory, _STATE_FILE)
        if os.path.isfile(state_path):
            with np.load(state_path) as npz:
                final_state = {key: npz[key] for key in npz.files}
        return cls(
            spec=spec,
            metrics=metrics,
            final_state=final_state,
            comm={g: dict(s) for g, s in (meta.get("comm") or {}).items()},
            mode=str(meta.get("mode", "rounds")),
            fingerprint=str(meta.get("fingerprint", "")),
            wall_seconds=float(meta.get("wall_seconds", 0.0)),
            stop_reason=meta.get("stop_reason"),
        )
