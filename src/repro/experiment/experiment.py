"""The Experiment: one entrypoint from a spec to a structured result.

``Experiment(spec).run()`` builds the engine with ``Engine.from_spec``,
auto-dispatches between the synchronous round loop and the asynchronous
scheduler runtime (``spec.mode``: ``"rounds"`` / ``"async"`` / ``"auto"``,
where auto runs async exactly when a scheduler is configured, falling back
to the topology's default policy when the mode is async but no policy is
named), and returns a :class:`~repro.experiment.result.RunResult`.

Callbacks (see :mod:`repro.engine.callbacks`) attach here and observe the
run identically under every execution mode::

    spec = ExperimentSpec(...)
    result = Experiment(spec, callbacks=[EarlyStopping("eval_accuracy")]).run()
    result.save("runs/my-run")
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.engine.callbacks import Callback
from repro.engine.engine import Engine
from repro.experiment.result import RunResult
from repro.experiment.spec import ExperimentSpec
from repro.utils.logging import get_logger

__all__ = ["Experiment"]

_LOG = get_logger("experiment")


class Experiment:
    """One configured federated experiment, runnable exactly once at a time.

    The engine is an internal executor: it is built lazily by :meth:`run`
    and shut down before the result is returned, but stays reachable as
    ``self.engine`` for post-run inspection (scheduler state, node stats).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        callbacks: Iterable[Callback] = (),
    ) -> None:
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"Experiment needs an ExperimentSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self.callbacks = list(callbacks)
        self.engine: Optional[Engine] = None
        self.result: Optional[RunResult] = None

    def run(self) -> RunResult:
        """Execute the spec end to end and return the structured result."""
        mode = self.spec.run_mode()
        engine = Engine.from_spec(self.spec, callbacks=self.callbacks)
        self.engine = engine
        if (
            mode == "async"
            and self.spec.mode == "auto"
            and self.spec.scheduler is None
            and engine.pool is None
        ):
            # pool_size >= the trainer count degenerates to dedicated nodes
            # (the spec alone cannot know the trainer count): with no policy
            # named, auto falls back to synchronous rounds exactly as it
            # would without pool_size, instead of silently going async
            mode = "rounds"
        start = time.perf_counter()
        try:
            if mode in ("async", "live"):
                # live runs drive the same scheduler runtime — the
                # LiveRuntime swaps wall clocks and real sockets in under it
                metrics = engine.run_async(total_updates=self.spec.total_updates)
            else:
                metrics = engine.run()
            wall = time.perf_counter() - start
            result = RunResult(
                spec=self.spec,
                metrics=metrics,
                final_state=engine.global_state(),
                comm=engine.comm_summary(),
                mode=mode,
                fingerprint=self.spec.fingerprint(),
                wall_seconds=wall,
                stop_reason=metrics.stop_reason,
            )
        finally:
            engine.shutdown()
        self.result = result
        _LOG.info(
            "experiment done: mode=%s records=%d final_acc=%s (%.2fs)",
            mode, len(result.history),
            f"{result.final_accuracy():.4f}" if result.final_accuracy() is not None else "-",
            result.wall_seconds,
        )
        return result
