"""Experiment API v2: typed specs, one entrypoint, structured results.

The top-level surface of the framework::

    from repro.experiment import DataSpec, Experiment, ExperimentSpec, TrainSpec

    spec = ExperimentSpec(
        topology="centralized",
        topology_kwargs={"num_clients": 4,
                         "inner_comm": {"backend": "torchdist", "master_port": 29500}},
        data=DataSpec(dataset="blobs", kwargs={"train_size": 512, "test_size": 128}),
        train=TrainSpec(algorithm="fedavg", algorithm_kwargs={"lr": 0.05},
                        model="mlp", global_rounds=3),
    )
    result = Experiment(spec).run()
    print(result.table())
    result.save("runs/quickstart")

See :mod:`repro.experiment.spec` for the spec tree,
:mod:`repro.experiment.result` for :class:`RunResult`, and
:mod:`repro.engine.callbacks` for the callback subsystem.
"""

from repro.experiment.experiment import Experiment
from repro.experiment.result import RunResult
from repro.experiment.spec import (
    AggregationSpec,
    AttackSpec,
    DataSpec,
    ExperimentSpec,
    FaultSpec,
    MTDSpec,
    PluginSpec,
    SchedulerSpec,
    SpecError,
    TrainSpec,
)

__all__ = [
    "Experiment",
    "RunResult",
    "ExperimentSpec",
    "DataSpec",
    "TrainSpec",
    "PluginSpec",
    "FaultSpec",
    "SchedulerSpec",
    "AttackSpec",
    "AggregationSpec",
    "MTDSpec",
    "SpecError",
]
