"""Compatibility namespace matching the paper's ``src.omnifed.*`` layout.

The paper's Fig. 2 config references targets like
``src.omnifed.topology.CentralizedTopology`` and
``src.omnifed.communicator.GrpcCommunicator``;
:func:`repro.config.instantiate` rewrites the ``src.omnifed.`` prefix to
``repro.omnifed.``, and this package re-exports every public class under
those names — so the paper's YAML runs verbatim.
"""

from repro.omnifed import algorithm, communicator, privacy, topology

__all__ = ["topology", "communicator", "algorithm", "privacy"]
