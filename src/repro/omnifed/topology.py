"""``src.omnifed.topology`` compatibility aliases."""

from repro.topology.centralized import CentralizedTopology
from repro.topology.custom import CustomGraphTopology
from repro.topology.hierarchical import HierarchicalTopology
from repro.topology.p2p import PeerToPeerTopology
from repro.topology.ring import RingTopology

DecentralizedTopology = RingTopology

__all__ = [
    "CentralizedTopology",
    "RingTopology",
    "DecentralizedTopology",
    "PeerToPeerTopology",
    "HierarchicalTopology",
    "CustomGraphTopology",
]
