"""``src.omnifed.algorithm`` compatibility aliases."""

from repro.algorithms.diloco import DiLoCo
from repro.algorithms.ditto import Ditto
from repro.algorithms.fedavg import FedAvg
from repro.algorithms.fedbn import FedBN
from repro.algorithms.feddyn import FedDyn
from repro.algorithms.fedmom import FedMom
from repro.algorithms.fednova import FedNova
from repro.algorithms.fedper import FedPer
from repro.algorithms.fedprox import FedProx
from repro.algorithms.moon import Moon
from repro.algorithms.scaffold import Scaffold

__all__ = [
    "FedAvg",
    "FedProx",
    "FedMom",
    "FedNova",
    "Scaffold",
    "Moon",
    "FedPer",
    "FedDyn",
    "FedBN",
    "Ditto",
    "DiLoCo",
]
