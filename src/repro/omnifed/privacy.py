"""``src.omnifed.privacy`` compatibility aliases."""

from repro.privacy.dp import DifferentialPrivacy
from repro.privacy.he import HomomorphicEncryption
from repro.privacy.secure_agg import SecureAggregation

__all__ = ["DifferentialPrivacy", "HomomorphicEncryption", "SecureAggregation"]
