"""``src.omnifed.communicator`` compatibility aliases (incl. compression)."""

from repro.comm.pubsub import AmqpCommunicator, MqttCommunicator
from repro.comm.rpc import GrpcCommunicator
from repro.comm.torchdist import TorchDistCommunicator

# the paper nests compressors under src.omnifed.communicator.compression
from repro.compression.dgc import DGC
from repro.compression.powersgd import PowerSGD
from repro.compression.qsgd import QSGD
from repro.compression.randomk import RandomK
from repro.compression.redsync import RedSync
from repro.compression.sidco import SIDCo
from repro.compression.topk import TopK


class compression:  # noqa: N801 - mirrors the paper's module path
    """Namespace matching ``src.omnifed.communicator.compression.TopK``."""

    TopK = TopK
    RandomK = RandomK
    DGC = DGC
    RedSync = RedSync
    SIDCo = SIDCo
    QSGD = QSGD
    PowerSGD = PowerSGD


__all__ = [
    "TorchDistCommunicator",
    "GrpcCommunicator",
    "MqttCommunicator",
    "AmqpCommunicator",
    "compression",
]
