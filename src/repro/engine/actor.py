"""Thread-based actor runtime (the Ray substitute).

Each actor owns one worker thread; method calls are submitted to it and
return :class:`concurrent.futures.Future`.  Calls on the *same* actor are
serialized (actor semantics); calls across actors run concurrently — which
the collective communicators require, since all group members must be inside
the same operation at once.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, List, Optional, Sequence, TypeVar

__all__ = ["ThreadActor", "ActorHandle", "wait_all"]

T = TypeVar("T")


class ActorHandle:
    """Submit method calls on a wrapped object; results come back as futures."""

    def __init__(self, obj: Any, name: str = "actor") -> None:
        self._obj = obj
        self.name = name
        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix=name)
        self._alive = True

    def submit(self, method: str, *args: Any, **kwargs: Any) -> "Future[Any]":
        if not self._alive:
            raise RuntimeError(f"actor {self.name} has been stopped")
        fn = getattr(self._obj, method)
        return self._executor.submit(fn, *args, **kwargs)

    def submit_call(self, fn: Any, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Run an arbitrary callable on the actor thread (it receives the
        wrapped object first).  The client pool uses this to wrap a node
        method call in state inject/extract without teaching the node about
        tickets."""
        if not self._alive:
            raise RuntimeError(f"actor {self.name} has been stopped")
        return self._executor.submit(fn, self._obj, *args, **kwargs)

    def call(self, method: str, *args: Any, timeout: Optional[float] = None, **kwargs: Any) -> Any:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(method, *args, **kwargs).result(timeout)

    @property
    def obj(self) -> Any:
        """Direct (non-actor) access; only safe when no calls are in flight."""
        return self._obj

    def stop(self) -> None:
        if self._alive:
            self._alive = False
            self._executor.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:
        return f"ActorHandle({self.name}, alive={self._alive})"


# Back-compat-friendly alias: ThreadActor(obj) is how the engine spawns nodes.
ThreadActor = ActorHandle


def wait_all(futures: Sequence["Future[T]"], timeout: Optional[float] = None) -> List[T]:
    """Wait for all futures, failing fast on the first exception.

    If one participant of a collective fails, the others block until their
    communicator timeouts fire — waiting for *all* of them before reporting
    would hide the root cause behind a wall of timeouts, so the first
    exception is raised as soon as it is known.
    """
    from concurrent.futures import FIRST_EXCEPTION
    from concurrent.futures import wait as _wait

    done, not_done = _wait(list(futures), timeout=timeout, return_when=FIRST_EXCEPTION)
    for f in done:
        exc = f.exception()
        if exc is not None:
            raise exc
    if not_done:
        raise TimeoutError(f"{len(not_done)} actor call(s) still pending after {timeout}s")
    return [f.result() for f in futures]
