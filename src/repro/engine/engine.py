"""The Engine: the internal executor behind the Experiment API.

The engine is built from one validated :class:`~repro.experiment.spec.
ExperimentSpec` via :meth:`Engine.from_spec`: it instantiates node actors,
wires their communicators, partitions data, drives rounds (or hands control
to the scheduler runtime), and collects metrics.  The legacy constructors —
``Engine(**kwargs)``, ``Engine.from_names``, ``Engine.from_config`` — are
deprecated shims that assemble a spec and route through the same path.

Plugins compose exactly as in OmniFed: a ``compressor`` applies to client
uploads (or, in hierarchical deployments, ``outer_compressor`` only to the
slow cross-site link — the paper's §3.4.5 trick), and ``dp`` privatizes
updates before they leave the node.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.algorithms.base import Algorithm
from repro.comm.factory import build_communicator
from repro.compression.base import Compressor
from repro.data.registry import DataModule
from repro.data.views import ClientDataProvider
from repro.engine.actor import ThreadActor, wait_all
from repro.engine.metrics import MetricsCollector, RoundRecord, StopRun
from repro.runtime import Broker, ClientPool, ClientRuntime, DedicatedRuntime, broker_class
from repro.models.base import FederatedModel
from repro.nn.serialization import state_average
from repro.node.node import Node
from repro.privacy.dp import DifferentialPrivacy
from repro.scheduler.base import Scheduler, build_scheduler
from repro.scheduler.selection import build_selector
from repro.telemetry.tracer import NOOP_TRACER
from repro.topology.base import NodeRole, NodeSpec, Topology
from repro.utils.logging import get_logger
from repro.utils.timer import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.callbacks import Callback
    from repro.experiment.spec import ExperimentSpec

__all__ = ["Engine"]

_LOG = get_logger("engine")

_DEPRECATION_TEMPLATE = (
    "{api} is deprecated; describe the run with an ExperimentSpec and use "
    "Engine.from_spec(spec) — or better, Experiment(spec).run() — instead"
)


class Engine:
    """Orchestrates one federated experiment (build with :meth:`from_spec`)."""

    def __init__(
        self,
        topology: Topology,
        datamodule: DataModule,
        model_fn: Callable[[], FederatedModel],
        algorithm_fn: Callable[[], Algorithm],
        global_rounds: int = 5,
        batch_size: int = 32,
        seed: int = 0,
        partition: str = "dirichlet",
        partition_alpha: float = 0.5,
        eval_every: int = 1,
        eval_max_batches: Optional[int] = None,
        compressor_fn: Optional[Callable[[], Compressor]] = None,
        outer_compressor_fn: Optional[Callable[[], Compressor]] = None,
        dp_fn: Optional[Callable[[], DifferentialPrivacy]] = None,
        client_fraction: float = 1.0,
        drop_prob: float = 0.0,
        straggler_prob: float = 0.0,
        straggler_delay: float = 0.0,
        feature_noniid: float = 0.0,
        selection: str = "random",
        selection_kwargs: Optional[Dict[str, Any]] = None,
        scheduler: Optional[Any] = None,
    ) -> None:
        """Deprecated: assemble an :class:`ExperimentSpec` instead.

        This legacy constructor wraps its arguments (live topology/
        datamodule objects and component factories become opaque spec
        fields) and routes through the spec path, so old call sites behave
        identically while emitting one :class:`DeprecationWarning`.
        """
        warnings.warn(
            _DEPRECATION_TEMPLATE.format(api="Engine(**kwargs)"),
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiment.spec import spec_from_parts

        spec = spec_from_parts(
            topology=topology,
            datamodule=datamodule,
            model=model_fn,
            algorithm=algorithm_fn,
            compressor=compressor_fn,
            outer_compressor=outer_compressor_fn,
            dp=dp_fn,
            global_rounds=global_rounds,
            batch_size=batch_size,
            seed=seed,
            partition=partition,
            partition_alpha=partition_alpha,
            eval_every=eval_every,
            eval_max_batches=eval_max_batches,
            client_fraction=client_fraction,
            drop_prob=drop_prob,
            straggler_prob=straggler_prob,
            straggler_delay=straggler_delay,
            feature_noniid=feature_noniid,
            selection=selection,
            selection_kwargs=selection_kwargs,
            scheduler=scheduler,
        )
        self._init_from_spec(spec)

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: "ExperimentSpec",
        callbacks: Iterable["Callback"] = (),
    ) -> "Engine":
        """Build the executor for one :class:`ExperimentSpec` (the v2 path)."""
        engine = cls.__new__(cls)
        engine._init_from_spec(spec)
        engine.metrics.callbacks.extend(callbacks)
        return engine

    def _init_from_spec(self, spec: "ExperimentSpec") -> None:
        from repro.experiment import spec as spec_mod

        if not isinstance(spec, spec_mod.ExperimentSpec):
            raise TypeError(f"Engine.from_spec needs an ExperimentSpec, got {type(spec).__name__}")
        topology = spec_mod.resolve_topology(spec)
        datamodule = spec_mod.resolve_datamodule(spec)
        model_fn = spec_mod.resolve_model_fn(spec, datamodule)
        algorithm_fn = spec_mod.resolve_algorithm_fn(spec)
        compressor_fn, outer_compressor_fn, dp_fn = spec_mod.resolve_plugin_fns(spec)
        seed = int(spec.seed)

        topology.validate()
        self.spec = spec
        self.topology = topology
        self.datamodule = datamodule
        self.global_rounds = int(spec.train.global_rounds)
        self.eval_every = int(spec.train.eval_every)
        self.eval_max_batches = spec.train.eval_max_batches
        self.client_fraction = float(spec.faults.client_fraction)
        self.seed = seed
        self.metrics = MetricsCollector()
        self.sim_clock = SimClock()
        # the Telemetry callback swaps in a recording tracer at setup; every
        # hook site reads this attribute per call, so the default costs one
        # no-op dispatch and nothing else
        self.tracer = NOOP_TRACER
        self.selector = build_selector(
            spec.faults.selection, seed=seed, **dict(spec.faults.selection_kwargs)
        )
        self.scheduler = self._resolve_scheduler(spec_mod.resolve_scheduler_value(spec))
        self._last_losses: Dict[int, float] = {}
        self._bytes_seen = 0
        self._sim_comm_seen = 0.0

        node_specs = topology.specs()
        n_trainers = topology.trainer_count()
        # adversarial-robustness wiring: the attack plan is a pure function
        # of (spec, cohort, classes) so broker workers and live nodes derive
        # the identical attacker set from the published spec; the robust
        # factory hands every scheduler binding (each hierarchical site
        # tier included) its own counter-carrying aggregator instance
        self.attack_plan = spec_mod.resolve_attack_plan(spec, n_trainers, datamodule.num_classes)
        self.robust_factory = spec_mod.resolve_robust_fn(spec)
        self.mtd = getattr(spec, "mtd", None)
        if self.mtd is not None and topology.pattern != "gossip":
            raise ValueError(
                f"moving-target defense re-samples a gossip overlay; the "
                f"{topology.pattern!r} topology pattern has none (drop the "
                "mtd block or switch to a gossip topology)"
            )
        if self.robust_factory is not None and spec.run_mode() == "rounds":
            raise ValueError(
                "robust aggregation plugs into the scheduler runtime; the "
                "synchronous rounds loop would silently ignore it — name a "
                "scheduler policy (e.g. scheduler: sync) or set mode: async"
            )
        self.data_provider = ClientDataProvider(
            datamodule,
            n_trainers,
            spec.data.partition,
            alpha=spec.data.partition_alpha,
            seed=seed,
            feature_noniid=float(spec.data.feature_noniid),
        )

        pool_size = getattr(spec, "pool_size", None)
        if pool_size is not None and int(pool_size) < 1:
            raise ValueError("pool_size must be >= 1 (or null for dedicated nodes)")
        broker_url = getattr(spec, "broker", None) or "memory://"
        distributed = broker_class(broker_url).distributed
        live = spec.run_mode() == "live"
        if live and topology.pattern != "server":
            raise ValueError(
                f"live cluster execution needs a server-pattern topology; "
                f"{topology.pattern!r} topologies require dedicated in-process "
                "nodes (run them simulated)"
            )
        # a distributed broker always pools (its workers live out-of-process);
        # the memory broker pools only when the cohort exceeds the pool
        pooled = not live and (
            distributed or (pool_size is not None and int(pool_size) < n_trainers)
        )
        if pooled and topology.pattern != "server":
            raise ValueError(
                f"client-pool execution (broker={broker_url!r}, "
                f"pool_size={pool_size}, {n_trainers} clients) needs a "
                f"server-pattern topology; {topology.pattern!r} topologies "
                "require dedicated nodes (use the memory broker with "
                "pool_size >= the trainer count, or leave pool_size null)"
            )

        def make_node(nspec: NodeSpec, train_ds) -> Node:
            return Node(
                spec=nspec,
                model=model_fn(),
                algorithm=algorithm_fn(),
                train_dataset=train_ds,
                test_dataset=datamodule.test,
                batch_size=int(spec.data.batch_size),
                seed=seed,
                dp=dp_fn() if (dp_fn is not None and nspec.role.trains()) else None,
                compressor=compressor_fn() if compressor_fn is not None else None,
                outer_compressor=outer_compressor_fn() if outer_compressor_fn is not None else None,
                drop_prob=spec.faults.drop_prob if nspec.role.trains() else 0.0,
                straggler_prob=spec.faults.straggler_prob if nspec.role.trains() else 0.0,
                straggler_delay=spec.faults.straggler_delay,
                attack=(
                    self.attack_plan.attack
                    if self.attack_plan is not None and nspec.role.trains()
                    else None
                ),
                attacker_ids=(
                    self.attack_plan.attacker_ids if self.attack_plan is not None else ()
                ),
            )

        self.nodes: List[Node] = []
        self.actors: List[ThreadActor] = []
        self.pool: Optional[ClientPool] = None
        self.cluster = None  # LiveRuntime in live mode
        if live:
            # live control plane: aggregators/relays materialize in-process,
            # the cohort's trainers live in `repro node` member processes
            # that rebuild themselves from the published spec
            for nspec in node_specs:
                if nspec.role.trains():
                    continue
                self.nodes.append(make_node(nspec, None))
                self.actors.append(ThreadActor(self.nodes[-1], name=nspec.name))
            # trainer nodes live elsewhere: probe the algorithm's evaluation
            # convention directly (mirrors the distributed-broker branch)
            self._personalized_eval = bool(algorithm_fn().personalized_eval)
            from repro.cluster.coordinator import ClusterCoordinator
            from repro.cluster.runtime import LiveRuntime

            cl = spec.cluster
            coordinator = ClusterCoordinator(
                spec.to_yaml(),
                n_trainers,
                transport=cl.transport,
                bind=cl.bind,
                min_nodes=cl.min_nodes,
                join_timeout=cl.join_timeout,
                heartbeat=cl.heartbeat,
                lease=cl.lease,
                detector=cl.detector,
                phi_threshold=cl.phi_threshold,
            ).start()  # listen immediately: nodes may dial before run()
            self.cluster = LiveRuntime(coordinator)
            _LOG.info(
                "live cluster coordinator at %s (quorum %d, lease %.1fs): "
                "join with `python -m repro node %s`",
                coordinator.url, cl.min_nodes, cl.lease, coordinator.url,
            )
        elif pooled:
            # aggregators/relays materialize as real nodes; the cohort's
            # trainers become logical clients served by broker workers (no
            # communicator groups: pooled execution runs on the scheduler
            # runtime, which moves updates through turn tickets)
            for nspec in node_specs:
                if nspec.role.trains():
                    continue
                self.nodes.append(make_node(nspec, None))
                self.actors.append(ThreadActor(self.nodes[-1], name=nspec.name))
            if distributed:
                # worker processes rebuild their own trainer nodes from the
                # spec the broker publishes; this process holds none, so
                # probe the algorithm's evaluation convention directly
                self._personalized_eval = bool(algorithm_fn().personalized_eval)
                broker = Broker(
                    broker_url,
                    spec=spec,
                    num_clients=n_trainers,
                    default_workers=int(pool_size) if pool_size is not None else None,
                )
            else:
                base_index = 1 + max(s.index for s in node_specs)
                worker_positions = []
                for w in range(int(pool_size)):
                    wspec = NodeSpec(
                        name=f"pool_worker_{w}",
                        index=base_index + w,
                        role=NodeRole.TRAINER,
                    )
                    worker_positions.append(len(self.nodes))
                    self.nodes.append(make_node(wspec, None))
                    self.actors.append(ThreadActor(self.nodes[-1], name=wspec.name))
                broker = Broker(
                    broker_url,
                    engine=self,
                    worker_positions=worker_positions,
                    num_clients=n_trainers,
                )
            self.pool = ClientPool(
                self,
                num_clients=n_trainers,
                broker=broker,
                data_provider=self.data_provider,
                batch_turns=getattr(spec, "batch_turns", None),
            )
        else:
            for nspec in node_specs:
                train_ds = (
                    self.data_provider.view(nspec.shard) if nspec.shard is not None else None
                )
                node = make_node(nspec, train_ds)
                for gname, gspec in nspec.groups.items():
                    node.comms[gname] = build_communicator(
                        gspec.comm_config, gspec.rank, gspec.world_size, self.sim_clock
                    )
                self.nodes.append(node)
                self.actors.append(ThreadActor(node, name=nspec.name))

        self._setup_done = False
        self._shutdown_done = False
        self._callbacks_setup_fired = False

    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls,
        topology: str = "centralized",
        algorithm: str = "fedavg",
        model: str = "simple_cnn",
        datamodule: str = "cifar10",
        num_clients: int = 4,
        topology_kwargs: Optional[Dict[str, Any]] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        model_kwargs: Optional[Dict[str, Any]] = None,
        datamodule_kwargs: Optional[Dict[str, Any]] = None,
        compressor: Optional[str] = None,
        compressor_kwargs: Optional[Dict[str, Any]] = None,
        **engine_kwargs: Any,
    ) -> "Engine":
        """Deprecated registry-name constructor; routes through the spec."""
        warnings.warn(
            _DEPRECATION_TEMPLATE.format(api="Engine.from_names"),
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiment.spec import spec_from_names

        return cls.from_spec(spec_from_names(
            topology=topology,
            algorithm=algorithm,
            model=model,
            datamodule=datamodule,
            num_clients=num_clients,
            topology_kwargs=topology_kwargs,
            algorithm_kwargs=algorithm_kwargs,
            model_kwargs=model_kwargs,
            datamodule_kwargs=datamodule_kwargs,
            compressor=compressor,
            compressor_kwargs=compressor_kwargs,
            **engine_kwargs,
        ))

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, cfg: Any) -> "Engine":
        """Deprecated composed-config constructor; routes through the spec.

        Expects the layout of ``repro/conf/experiment.yaml``; prefer
        ``Experiment(ExperimentSpec.from_config(cfg)).run()``.
        """
        warnings.warn(
            _DEPRECATION_TEMPLATE.format(api="Engine.from_config"),
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiment.spec import ExperimentSpec

        return cls.from_spec(ExperimentSpec.from_config(cfg))

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_scheduler(spec: Optional[Any]) -> Optional[Scheduler]:
        """Accept a Scheduler, a registry name, or a kwargs dict with ``name``."""
        if spec is None or isinstance(spec, Scheduler):
            return spec
        if isinstance(spec, str):
            return build_scheduler(spec)
        if isinstance(spec, dict):
            kwargs = dict(spec)
            if "_target_" in kwargs:
                from repro.config.instantiate import instantiate

                obj = instantiate(kwargs)
                if not isinstance(obj, Scheduler):
                    raise TypeError(f"scheduler config built {type(obj).__name__}, not a Scheduler")
                return obj
            name = kwargs.pop("name", None)
            if name is None:
                raise ValueError("scheduler dict needs a 'name' (or '_target_') key")
            return build_scheduler(str(name), **kwargs)
        raise TypeError(f"cannot build a scheduler from {type(spec).__name__}")

    # ------------------------------------------------------------------
    # client runtimes: how logical client ids reach node actors
    # ------------------------------------------------------------------
    def client_runtime(self) -> ClientRuntime:
        """The runtime for flat scheduler bindings: the live cluster or the
        client pool when configured, otherwise one dedicated actor per
        logical client (ids are data-shard indices, identical across all
        modes)."""
        if self.cluster is not None:
            return self.cluster
        if self.pool is not None:
            return self.pool
        mapping = {}
        for pos, node in enumerate(self.nodes):
            if node.role.trains():
                cid = node.spec.shard if node.spec.shard is not None else node.spec.index
                mapping[cid] = pos
        return DedicatedRuntime(self, mapping)

    def node_runtime(self, node_indices: Iterable[int]) -> ClientRuntime:
        """A dedicated runtime over explicit engine node indices (scoped
        site-tier bindings address nodes directly)."""
        pos_of = {n.spec.index: i for i, n in enumerate(self.nodes)}
        return DedicatedRuntime(self, {int(c): pos_of[int(c)] for c in node_indices})

    # ------------------------------------------------------------------
    def _fire_setup_callbacks(self) -> None:
        if self._callbacks_setup_fired:
            return
        self._callbacks_setup_fired = True
        for cb in self.metrics.callbacks:
            # lifecycle hooks are isolated like the record hooks in
            # MetricsCollector.add: one broken observer must not kill the run
            try:
                cb.on_setup(self)
            except Exception:  # noqa: BLE001 - observer errors never abort
                _LOG.exception("callback %s failed in on_setup", type(cb).__name__)

    def setup(self) -> None:
        if self._setup_done:
            return
        if self.pool is not None:
            # pooled nodes have no communicator groups to rendezvous
            self.setup_async()
            self._setup_done = True
            return
        # the RPC server (rank 0) must bind before clients dial in, so set up
        # aggregators first, then everyone else in parallel
        for node, actor in zip(self.nodes, self.actors):
            if node.role.aggregates():
                actor.call("setup", timeout=30)
        futures = [
            actor.submit("setup")
            for node, actor in zip(self.nodes, self.actors)
            if not node.role.aggregates()
        ]
        wait_all(futures, timeout=60)
        self._setup_done = True
        self._fire_setup_callbacks()
        _LOG.info("engine ready: %s", self.topology.describe())

    def setup_async(self) -> None:
        """Algorithm/state setup without binding communicators.

        The scheduler runtime moves updates through actor futures, so nodes
        skip the collective rendezvous entirely; if the engine was already
        set up for synchronous rounds, the per-node guard makes this a no-op.
        """
        futures = [actor.submit("setup_local") for actor in self.actors]
        wait_all(futures, timeout=60)
        if self.pool is not None:
            self.pool.start()
        if self.cluster is not None:
            # block until the joining quorum is reached and clients are
            # pinned to members (idempotent across repeated runs)
            self.cluster.start()
        self._fire_setup_callbacks()

    # ------------------------------------------------------------------
    def run_round(self, round_idx: int, total_rounds: Optional[int] = None) -> RoundRecord:
        """Run one synchronized round.

        ``total_rounds`` is the length of the run this round belongs to
        (defaults to the configured ``global_rounds``): the final round of
        the *actual* run always evaluates, regardless of cadence.
        """
        if self.pool is not None:
            raise RuntimeError(
                "client-pool execution has no collective rounds: run under "
                "the scheduler runtime (Engine.run_async, or an Experiment "
                "with mode='async'/'auto')"
            )
        self.setup()
        pattern = self.topology.pattern
        participants = self._select_participants(round_idx)
        start = time.perf_counter()
        with self.tracer.span("engine.round", cat="engine", round=round_idx):
            futures = [
                actor.submit("run_round", round_idx, pattern, node.spec.index in participants)
                for node, actor in zip(self.nodes, self.actors)
            ]
            results = wait_all(futures, timeout=600)
        wall = time.perf_counter() - start

        record = RoundRecord(round_idx=round_idx, wall_seconds=wall)
        losses, accs, weights = [], [], []
        for node, res in zip(self.nodes, results):
            record.per_node[node.name] = {k: v for k, v in res.items() if isinstance(v, (int, float))}
            if res.get("participated") and "loss" in res:
                losses.append(res["loss"] * res.get("samples", 1.0))
                accs.append(res["accuracy"] * res.get("samples", 1.0))
                weights.append(res.get("samples", 1.0))
                self._last_losses[node.spec.index] = float(res["loss"])
        total_w = sum(weights)
        if total_w > 0:
            record.train_loss = sum(losses) / total_w
            record.train_accuracy = sum(accs) / total_w
        # comm stats accumulate over the experiment's lifetime; report the
        # per-round delta so round N does not re-count rounds 0..N-1
        sim_total = self.sim_clock.total
        record.sim_comm_seconds = sim_total - self._sim_comm_seen
        self._sim_comm_seen = sim_total
        bytes_total = sum(
            int(s["bytes_sent"]) for node in self.nodes for s in node.comm_stats().values()
        )
        record.bytes_sent = bytes_total - self._bytes_seen
        self._bytes_seen = bytes_total
        # the final round of the run always evaluates; gate on the actual run
        # length, not the configured default (run(rounds=n) used to mis-time
        # or skip its last evaluation when n != global_rounds)
        final_idx = (total_rounds if total_rounds is not None else self.global_rounds) - 1
        if self.eval_every > 0 and ((round_idx + 1) % self.eval_every == 0 or round_idx == final_idx):
            record.eval_loss, record.eval_accuracy = self.evaluate()
        self.metrics.add(record)
        return record

    def run(self, rounds: Optional[int] = None) -> MetricsCollector:
        """Run the full experiment; returns the metrics history."""
        n = rounds if rounds is not None else self.global_rounds
        self.metrics.reset_stop()  # a stop from a previous run is spent
        try:
            for r in range(n):
                rec = self.run_round(r, total_rounds=n)
                _LOG.info(
                    "round %d: loss=%.4f acc=%.4f eval=%s (%.2fs)",
                    r, rec.train_loss, rec.train_accuracy,
                    f"{rec.eval_accuracy:.4f}" if rec.eval_accuracy is not None else "-",
                    rec.wall_seconds,
                )
        except StopRun as stop:
            _LOG.info("run stopped early: %s", stop.reason)
            # mirror the scheduler runtime's _finish: a stopped run still
            # ends on an evaluated record
            history = self.metrics.history
            if self.eval_every > 0 and history and history[-1].eval_accuracy is None:
                history[-1].eval_loss, history[-1].eval_accuracy = self.evaluate()
        return self.metrics

    def run_async(
        self,
        total_updates: Optional[int] = None,
        scheduler: Optional[Any] = None,
    ) -> MetricsCollector:
        """Run under an asynchronous execution policy instead of per-round
        barriers.

        ``scheduler`` (or the engine's configured one) decides when client
        updates enter the global model — ``fedasync`` merges each arrival
        with a staleness-discounted weight, ``fedbuff`` flushes buffered
        deltas every K arrivals, ``semi_sync`` closes rounds on a deadline,
        and ``sync`` reproduces barrier semantics under the same simulated
        straggler model.  On a hierarchical topology the default is
        ``hier_async``: every site head runs a nested inner policy over its
        trainers while the root merges site uploads asynchronously on the
        slow outer link (``scheduler.inner=...`` / ``scheduler.outer=...``
        pick the per-tier policies).  On a gossip (ring/p2p/custom)
        topology the default is ``gossip_async``: serverless asynchronous
        neighbor exchange under per-edge latency, with
        ``scheduler.neighbor_selection`` / ``scheduler.mixing`` choosing
        who exchanges and how states average.  Runs until ``total_updates``
        client updates have been aggregated (default: ``global_rounds ×``
        the trainer count).
        """
        sched = self._resolve_scheduler(scheduler) if scheduler is not None else self.scheduler
        if sched is None:
            default = {"hierarchical": "hier_async", "gossip": "gossip_async"}
            sched = build_scheduler(default.get(self.topology.pattern, "fedasync"))
        # remember whatever actually runs, so a later run_async() continues
        # this federation instead of silently starting a fresh default one
        self.scheduler = sched
        sched.bind(self)
        return sched.run(total_updates)

    # ------------------------------------------------------------------
    def _select_participants(self, round_idx: int) -> set:
        """Pick this round's participants via the selection strategy."""
        trainer_idxs = [n.spec.index for n in self.nodes if n.role.trains()]
        everyone = {n.spec.index for n in self.nodes}
        if self.client_fraction >= 1.0:
            return everyone
        k = max(1, int(round(self.client_fraction * len(trainer_idxs))))
        chosen = set(self.selector.select(trainer_idxs, k, round_idx, losses=self._last_losses))
        # aggregators/relays always participate
        return chosen | {n.spec.index for n in self.nodes if not n.role.trains()}

    # ------------------------------------------------------------------
    def global_state(self) -> Dict[str, np.ndarray]:
        for node in self.nodes:
            if node.role is NodeRole.AGGREGATOR and node.global_state is not None:
                return node.global_state
        if self.topology.pattern == "gossip":
            # consensus (mixing-weighted) average of the peers, not node 0's
            # state: with a gossip scheduler live, its ledger is the source
            # of truth (safe to read while training futures are in flight);
            # otherwise average the node models directly (the synchronous
            # path, where rounds have fully completed)
            sched = self.scheduler
            if sched is not None and getattr(sched, "peer_states", None):
                return sched.consensus_state()
            return state_average(
                [n.model.state_dict() for n in self.nodes],
                [float(w) for w in self.topology.consensus_weights()],
            )
        return self.nodes[0].model.state_dict()

    def evaluate(self) -> tuple:
        """(loss, accuracy) under the algorithm's evaluation convention."""
        with self.tracer.span("engine.evaluate", cat="engine"):
            trainers = [n for n in self.nodes if n.role.trains()]
            if trainers:
                personalized = any(n.algorithm.personalized_eval for n in trainers)
            else:
                # distributed broker: trainer nodes live in worker processes
                personalized = getattr(self, "_personalized_eval", False)
            if personalized:
                # each logical client's own model, through whichever runtime
                # serves it (pool-swapped or dedicated actors — the
                # ClientRuntime contract makes the fan-out uniform)
                return self.client_runtime().evaluate_all(self.eval_max_batches)
            state = self.global_state()
            evaluator = next(
                (i for i, n in enumerate(self.nodes) if n.role is NodeRole.AGGREGATOR),
                0,
            )
            return self.actors[evaluator].call(
                "evaluate", state, self.eval_max_batches, timeout=300
            )

    # ------------------------------------------------------------------
    def comm_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate communication statistics per group name."""
        totals: Dict[str, Dict[str, float]] = {}
        for node in self.nodes:
            for gname, snap in node.comm_stats().items():
                bucket = totals.setdefault(gname, {})
                for k, v in snap.items():
                    bucket[k] = bucket.get(k, 0.0) + v
        return totals

    def shutdown(self) -> None:
        """Stop every node and actor; idempotent and safe after a failed
        :meth:`setup` (a node whose setup never ran, or raised partway,
        must not hang the teardown of the rest of the fleet)."""
        if self._shutdown_done:
            return
        self._shutdown_done = True
        if self.pool is not None:
            self.pool.shutdown()
        if self.cluster is not None:
            self.cluster.shutdown()
        futures = []
        for actor in self.actors:
            try:
                futures.append(actor.submit("shutdown"))
            except RuntimeError:
                continue  # actor already stopped
        try:
            wait_all(futures, timeout=30)
        except Exception as exc:  # noqa: BLE001 - teardown must not mask the run
            _LOG.warning("node shutdown reported %s: %s", type(exc).__name__, exc)
        finally:
            for actor in self.actors:
                actor.stop()
        for cb in self.metrics.callbacks:
            try:
                cb.on_shutdown(self)
            except Exception:  # noqa: BLE001 - observer errors never abort
                _LOG.exception("callback %s failed in on_shutdown", type(cb).__name__)

    def __enter__(self) -> "Engine":
        try:
            self.setup()
        except BaseException:
            # the with-body (and so __exit__) never runs when setup raises:
            # tear actors down here or their threads outlive the failure
            self.shutdown()
            raise
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
