"""The Engine: builds nodes from a topology and drives synchronized rounds.

Construction mirrors the paper's flow: a Hydra-style config (or direct
Python objects) names the topology, algorithm, model and datamodule; the
engine instantiates node actors, wires their communicators, partitions data,
runs ``global_rounds`` rounds, and collects metrics.

Plugins compose exactly as in OmniFed: a ``compressor`` applies to client
uploads (or, in hierarchical deployments, ``outer_compressor`` only to the
slow cross-site link — the paper's §3.4.5 trick), and ``dp`` privatizes
updates before they leave the node.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.algorithms.base import Algorithm, build_algorithm
from repro.comm.factory import build_communicator
from repro.compression.base import Compressor, build_compressor
from repro.data.registry import DataModule, build_datamodule
from repro.engine.actor import ThreadActor, wait_all
from repro.engine.metrics import MetricsCollector, RoundRecord
from repro.models.base import FederatedModel
from repro.models.registry import build_model
from repro.nn.serialization import state_average
from repro.node.node import Node
from repro.privacy.dp import DifferentialPrivacy
from repro.scheduler.base import Scheduler, build_scheduler
from repro.scheduler.selection import build_selector
from repro.topology.base import NodeRole, Topology, build_topology
from repro.utils.logging import get_logger
from repro.utils.timer import SimClock

__all__ = ["Engine"]

_LOG = get_logger("engine")


class Engine:
    """Orchestrates one federated experiment."""

    def __init__(
        self,
        topology: Topology,
        datamodule: DataModule,
        model_fn: Callable[[], FederatedModel],
        algorithm_fn: Callable[[], Algorithm],
        global_rounds: int = 5,
        batch_size: int = 32,
        seed: int = 0,
        partition: str = "dirichlet",
        partition_alpha: float = 0.5,
        eval_every: int = 1,
        eval_max_batches: Optional[int] = None,
        compressor_fn: Optional[Callable[[], Compressor]] = None,
        outer_compressor_fn: Optional[Callable[[], Compressor]] = None,
        dp_fn: Optional[Callable[[], DifferentialPrivacy]] = None,
        client_fraction: float = 1.0,
        drop_prob: float = 0.0,
        straggler_prob: float = 0.0,
        straggler_delay: float = 0.0,
        feature_noniid: float = 0.0,
        selection: str = "random",
        selection_kwargs: Optional[Dict[str, Any]] = None,
        scheduler: Optional[Any] = None,
    ) -> None:
        if global_rounds < 1:
            raise ValueError("global_rounds must be >= 1")
        if not (0.0 < client_fraction <= 1.0):
            raise ValueError("client_fraction must be in (0, 1]")
        topology.validate()
        self.topology = topology
        self.datamodule = datamodule
        self.global_rounds = int(global_rounds)
        self.eval_every = int(eval_every)
        self.eval_max_batches = eval_max_batches
        self.client_fraction = float(client_fraction)
        self.seed = int(seed)
        self.metrics = MetricsCollector()
        self.sim_clock = SimClock()
        self.selector = build_selector(selection, seed=seed, **(selection_kwargs or {}))
        self.scheduler = self._resolve_scheduler(scheduler)
        self._last_losses: Dict[int, float] = {}
        self._bytes_seen = 0
        self._sim_comm_seen = 0.0

        specs = topology.specs()
        n_trainers = topology.trainer_count()
        shards = datamodule.partition(n_trainers, partition, alpha=partition_alpha, seed=seed)

        self.nodes: List[Node] = []
        self.actors: List[ThreadActor] = []
        for spec in specs:
            model = model_fn()
            algorithm = algorithm_fn()
            train_ds = None
            if spec.shard is not None:
                train_ds = shards[spec.shard]
                if feature_noniid > 0.0 and hasattr(train_ds.dataset, "spawn"):
                    # regenerate this client's shard with a per-site feature
                    # shift (non-IID features; FedBN's setting)
                    shift = datamodule.feature_shift_for(spec.shard, feature_noniid)
                    train_ds = train_ds.dataset.spawn(
                        len(train_ds), seed=seed + 1000 + spec.shard, feature_shift=shift
                    )
            node = Node(
                spec=spec,
                model=model,
                algorithm=algorithm,
                train_dataset=train_ds,
                test_dataset=datamodule.test,
                batch_size=batch_size,
                seed=seed,
                dp=dp_fn() if (dp_fn is not None and spec.role.trains()) else None,
                compressor=compressor_fn() if compressor_fn is not None else None,
                outer_compressor=outer_compressor_fn() if outer_compressor_fn is not None else None,
                drop_prob=drop_prob if spec.role.trains() else 0.0,
                straggler_prob=straggler_prob if spec.role.trains() else 0.0,
                straggler_delay=straggler_delay,
            )
            for gname, gspec in spec.groups.items():
                node.comms[gname] = build_communicator(
                    gspec.comm_config, gspec.rank, gspec.world_size, self.sim_clock
                )
            self.nodes.append(node)
            self.actors.append(ThreadActor(node, name=spec.name))

        self._setup_done = False

    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls,
        topology: str = "centralized",
        algorithm: str = "fedavg",
        model: str = "simple_cnn",
        datamodule: str = "cifar10",
        num_clients: int = 4,
        topology_kwargs: Optional[Dict[str, Any]] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        model_kwargs: Optional[Dict[str, Any]] = None,
        datamodule_kwargs: Optional[Dict[str, Any]] = None,
        compressor: Optional[str] = None,
        compressor_kwargs: Optional[Dict[str, Any]] = None,
        **engine_kwargs: Any,
    ) -> "Engine":
        """Registry-name convenience constructor (what examples use)."""
        topo_kw = dict(topology_kwargs or {})
        topo_kw.setdefault("num_clients", num_clients)
        if topology in ("hierarchical", "tree", "hub_spoke"):
            topo_kw.pop("num_clients", None)
        topo = build_topology(topology, **topo_kw)
        dm = build_datamodule(datamodule, **(datamodule_kwargs or {}))
        seed = int(engine_kwargs.get("seed", 0))
        model_kw = dict(model_kwargs or {})
        model_kw.setdefault("num_classes", dm.num_classes)
        if model == "mlp" and dm.in_features is not None:
            model_kw.setdefault("in_features", dm.in_features)
        elif dm.in_channels:
            model_kw.setdefault("in_channels", dm.in_channels)
        model_kw.setdefault("seed", seed)
        algo_kw = dict(algorithm_kwargs or {})
        comp_fn = None
        if compressor is not None:
            comp_kw = dict(compressor_kwargs or {})
            comp_fn = lambda: build_compressor(compressor, **comp_kw)  # noqa: E731
        return cls(
            topology=topo,
            datamodule=dm,
            model_fn=lambda: build_model(model, **model_kw),
            algorithm_fn=lambda: build_algorithm(algorithm, **algo_kw),
            compressor_fn=comp_fn,
            **engine_kwargs,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, cfg: Any) -> "Engine":
        """Build an engine from a composed config (the paper's Fig. 2 flow).

        Expects the layout of ``repro/conf/experiment.yaml``: ``topology``,
        ``algorithm``, ``model``, ``datamodule`` nodes (each with a
        ``_target_``) plus scalar engine settings; optional ``compression``
        and ``privacy`` nodes configure the plugins.
        """
        from repro.config.instantiate import instantiate
        from repro.config.node import ConfigNode

        if isinstance(cfg, ConfigNode):
            cfg = cfg.to_container(resolve=True)
        topo = instantiate(cfg["topology"])
        dm = instantiate(cfg["datamodule"])
        seed = int(cfg.get("seed", 0))

        model_cfg = dict(cfg["model"])
        model_cfg.setdefault("num_classes", dm.num_classes)
        if dm.in_features is not None and "mlp" in str(model_cfg.get("_target_", "")):
            model_cfg.setdefault("in_features", dm.in_features)
        elif dm.in_channels:
            model_cfg.setdefault("in_channels", dm.in_channels)
        model_cfg.setdefault("seed", seed)
        algo_cfg = dict(cfg["algorithm"])

        comp_cfg = cfg.get("compression")
        dp_cfg = cfg.get("privacy")
        sched_cfg = cfg.get("scheduler")
        return cls(
            topology=topo,
            datamodule=dm,
            model_fn=lambda: instantiate(dict(model_cfg)),
            algorithm_fn=lambda: instantiate(dict(algo_cfg)),
            compressor_fn=(lambda: instantiate(dict(comp_cfg))) if comp_cfg else None,
            dp_fn=(lambda: instantiate(dict(dp_cfg))) if dp_cfg else None,
            global_rounds=int(cfg.get("global_rounds", 2)),
            batch_size=int(cfg.get("batch_size", 32)),
            seed=seed,
            partition=str(cfg.get("partition", "dirichlet")),
            partition_alpha=float(cfg.get("partition_alpha", 0.5)),
            eval_every=int(cfg.get("eval_every", 1)),
            client_fraction=float(cfg.get("client_fraction", 1.0)),
            selection=str(cfg.get("selection", "random")),
            selection_kwargs=dict(cfg.get("selection_kwargs") or {}),
            scheduler=dict(sched_cfg) if isinstance(sched_cfg, dict) else sched_cfg,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_scheduler(spec: Optional[Any]) -> Optional[Scheduler]:
        """Accept a Scheduler, a registry name, or a kwargs dict with ``name``."""
        if spec is None or isinstance(spec, Scheduler):
            return spec
        if isinstance(spec, str):
            return build_scheduler(spec)
        if isinstance(spec, dict):
            kwargs = dict(spec)
            if "_target_" in kwargs:
                from repro.config.instantiate import instantiate

                obj = instantiate(kwargs)
                if not isinstance(obj, Scheduler):
                    raise TypeError(f"scheduler config built {type(obj).__name__}, not a Scheduler")
                return obj
            name = kwargs.pop("name", None)
            if name is None:
                raise ValueError("scheduler dict needs a 'name' (or '_target_') key")
            return build_scheduler(str(name), **kwargs)
        raise TypeError(f"cannot build a scheduler from {type(spec).__name__}")

    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        # the RPC server (rank 0) must bind before clients dial in, so set up
        # aggregators first, then everyone else in parallel
        for node, actor in zip(self.nodes, self.actors):
            if node.role.aggregates():
                actor.call("setup", timeout=30)
        futures = [
            actor.submit("setup")
            for node, actor in zip(self.nodes, self.actors)
            if not node.role.aggregates()
        ]
        wait_all(futures, timeout=60)
        self._setup_done = True
        _LOG.info("engine ready: %s", self.topology.describe())

    def setup_async(self) -> None:
        """Algorithm/state setup without binding communicators.

        The scheduler runtime moves updates through actor futures, so nodes
        skip the collective rendezvous entirely; if the engine was already
        set up for synchronous rounds, the per-node guard makes this a no-op.
        """
        futures = [actor.submit("setup_local") for actor in self.actors]
        wait_all(futures, timeout=60)

    # ------------------------------------------------------------------
    def run_round(self, round_idx: int) -> RoundRecord:
        self.setup()
        pattern = self.topology.pattern
        participants = self._select_participants(round_idx)
        start = time.perf_counter()
        futures = [
            actor.submit("run_round", round_idx, pattern, node.spec.index in participants)
            for node, actor in zip(self.nodes, self.actors)
        ]
        results = wait_all(futures, timeout=600)
        wall = time.perf_counter() - start

        record = RoundRecord(round_idx=round_idx, wall_seconds=wall)
        losses, accs, weights = [], [], []
        for node, res in zip(self.nodes, results):
            record.per_node[node.name] = {k: v for k, v in res.items() if isinstance(v, (int, float))}
            if res.get("participated") and "loss" in res:
                losses.append(res["loss"] * res.get("samples", 1.0))
                accs.append(res["accuracy"] * res.get("samples", 1.0))
                weights.append(res.get("samples", 1.0))
                self._last_losses[node.spec.index] = float(res["loss"])
        total_w = sum(weights)
        if total_w > 0:
            record.train_loss = sum(losses) / total_w
            record.train_accuracy = sum(accs) / total_w
        # comm stats accumulate over the experiment's lifetime; report the
        # per-round delta so round N does not re-count rounds 0..N-1
        sim_total = self.sim_clock.total
        record.sim_comm_seconds = sim_total - self._sim_comm_seen
        self._sim_comm_seen = sim_total
        bytes_total = sum(
            int(s["bytes_sent"]) for node in self.nodes for s in node.comm_stats().values()
        )
        record.bytes_sent = bytes_total - self._bytes_seen
        self._bytes_seen = bytes_total
        if self.eval_every > 0 and ((round_idx + 1) % self.eval_every == 0 or round_idx == self.global_rounds - 1):
            record.eval_loss, record.eval_accuracy = self.evaluate()
        self.metrics.add(record)
        return record

    def run(self, rounds: Optional[int] = None) -> MetricsCollector:
        """Run the full experiment; returns the metrics history."""
        n = rounds if rounds is not None else self.global_rounds
        for r in range(n):
            rec = self.run_round(r)
            _LOG.info(
                "round %d: loss=%.4f acc=%.4f eval=%s (%.2fs)",
                r, rec.train_loss, rec.train_accuracy,
                f"{rec.eval_accuracy:.4f}" if rec.eval_accuracy is not None else "-",
                rec.wall_seconds,
            )
        return self.metrics

    def run_async(
        self,
        total_updates: Optional[int] = None,
        scheduler: Optional[Any] = None,
    ) -> MetricsCollector:
        """Run under an asynchronous execution policy instead of per-round
        barriers.

        ``scheduler`` (or the engine's configured one) decides when client
        updates enter the global model — ``fedasync`` merges each arrival
        with a staleness-discounted weight, ``fedbuff`` flushes buffered
        deltas every K arrivals, ``semi_sync`` closes rounds on a deadline,
        and ``sync`` reproduces barrier semantics under the same simulated
        straggler model.  On a hierarchical topology the default is
        ``hier_async``: every site head runs a nested inner policy over its
        trainers while the root merges site uploads asynchronously on the
        slow outer link (``scheduler.inner=...`` / ``scheduler.outer=...``
        pick the per-tier policies).  On a gossip (ring/p2p/custom)
        topology the default is ``gossip_async``: serverless asynchronous
        neighbor exchange under per-edge latency, with
        ``scheduler.neighbor_selection`` / ``scheduler.mixing`` choosing
        who exchanges and how states average.  Runs until ``total_updates``
        client updates have been aggregated (default: ``global_rounds ×``
        the trainer count).
        """
        sched = self._resolve_scheduler(scheduler) if scheduler is not None else self.scheduler
        if sched is None:
            default = {"hierarchical": "hier_async", "gossip": "gossip_async"}
            sched = build_scheduler(default.get(self.topology.pattern, "fedasync"))
        # remember whatever actually runs, so a later run_async() continues
        # this federation instead of silently starting a fresh default one
        self.scheduler = sched
        sched.bind(self)
        return sched.run(total_updates)

    # ------------------------------------------------------------------
    def _select_participants(self, round_idx: int) -> set:
        """Pick this round's participants via the selection strategy."""
        trainer_idxs = [n.spec.index for n in self.nodes if n.role.trains()]
        everyone = {n.spec.index for n in self.nodes}
        if self.client_fraction >= 1.0:
            return everyone
        k = max(1, int(round(self.client_fraction * len(trainer_idxs))))
        chosen = set(self.selector.select(trainer_idxs, k, round_idx, losses=self._last_losses))
        # aggregators/relays always participate
        return chosen | {n.spec.index for n in self.nodes if not n.role.trains()}

    # ------------------------------------------------------------------
    def global_state(self) -> Dict[str, np.ndarray]:
        for node in self.nodes:
            if node.role is NodeRole.AGGREGATOR and node.global_state is not None:
                return node.global_state
        if self.topology.pattern == "gossip":
            # consensus (mixing-weighted) average of the peers, not node 0's
            # state: with a gossip scheduler live, its ledger is the source
            # of truth (safe to read while training futures are in flight);
            # otherwise average the node models directly (the synchronous
            # path, where rounds have fully completed)
            sched = self.scheduler
            if sched is not None and getattr(sched, "peer_states", None):
                return sched.consensus_state()
            return state_average(
                [n.model.state_dict() for n in self.nodes],
                [float(w) for w in self.topology.consensus_weights()],
            )
        return self.nodes[0].model.state_dict()

    def evaluate(self) -> tuple:
        """(loss, accuracy) under the algorithm's evaluation convention."""
        personalized = any(
            n.algorithm.personalized_eval for n in self.nodes if n.role.trains()
        )
        if personalized:
            futures = [
                actor.submit("evaluate", None, self.eval_max_batches)
                for node, actor in zip(self.nodes, self.actors)
                if node.role.trains()
            ]
            results = wait_all(futures, timeout=300)
            losses = [r[0] for r in results]
            accs = [r[1] for r in results]
            return float(np.mean(losses)), float(np.mean(accs))
        state = self.global_state()
        evaluator = next(
            (i for i, n in enumerate(self.nodes) if n.role is NodeRole.AGGREGATOR),
            0,
        )
        return self.actors[evaluator].call(
            "evaluate", state, self.eval_max_batches, timeout=300
        )

    # ------------------------------------------------------------------
    def comm_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate communication statistics per group name."""
        totals: Dict[str, Dict[str, float]] = {}
        for node in self.nodes:
            for gname, snap in node.comm_stats().items():
                bucket = totals.setdefault(gname, {})
                for k, v in snap.items():
                    bucket[k] = bucket.get(k, 0.0) + v
        return totals

    def shutdown(self) -> None:
        futures = [actor.submit("shutdown") for actor in self.actors]
        wait_all(futures, timeout=30)
        for actor in self.actors:
            actor.stop()

    def __enter__(self) -> "Engine":
        self.setup()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
