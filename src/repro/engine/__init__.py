"""Engine: orchestration of rounds, nodes, resources and metrics.

The paper's Engine "launches and coordinates all distributed experiments,
manages node lifecycle and resource allocation, and collects report
metrics".  Here nodes run as thread actors (the Ray substitute); the engine
spawns one per :class:`~repro.topology.base.NodeSpec`, drives synchronized
rounds, and aggregates metrics and communication statistics.  Build it from
a spec with ``Engine.from_spec`` — or stay one level up and use
:class:`repro.experiment.Experiment`.
"""

from repro.engine.actor import ActorHandle, ThreadActor
from repro.engine.callbacks import Callback, Checkpoint, CSVLogger, EarlyStopping
from repro.engine.engine import Engine
from repro.engine.metrics import MetricsCollector, RoundRecord, StopRun

__all__ = [
    "Engine",
    "ThreadActor",
    "ActorHandle",
    "MetricsCollector",
    "RoundRecord",
    "StopRun",
    "Callback",
    "EarlyStopping",
    "Checkpoint",
    "CSVLogger",
]
