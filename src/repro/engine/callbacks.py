"""Callback subsystem: uniform lifecycle hooks over every execution path.

A :class:`Callback` observes a run through five hooks.  The record hooks
(``on_update`` / ``on_evaluate`` / ``on_round_end``) are fired from the
single hook point at :meth:`repro.engine.metrics.MetricsCollector.add`, so
the synchronous round loop and all scheduler policies (sync, semi_sync,
fedasync, fedbuff, hier_async, gossip_async) invoke callbacks identically —
a callback written once works under every execution mode.  The lifecycle
hooks (``on_setup`` / ``on_shutdown``) are fired by the engine.

Hook semantics:

``on_setup(engine)``        once, after the engine's nodes are set up;
``on_update(record, m)``    every aggregation record, any tier;
``on_evaluate(record, m)``  records that carry an evaluation result;
``on_round_end(record, m)`` global-tier records (one per global round /
                            aggregation; site-tier records skip this);
``on_shutdown(engine)``     once, when the engine shuts down.

A callback stops the run by calling ``metrics.request_stop(reason)``; the
collector then raises :class:`~repro.engine.metrics.StopRun`, which both
the round loop and the scheduler runtime catch to finish cleanly (drain
in-flight updates, final evaluation, metrics returned as usual).
"""

from __future__ import annotations

import csv
import os
from typing import IO, TYPE_CHECKING, Any, Optional

import numpy as np

from repro.engine.metrics import MetricsCollector, RoundRecord, StopRun
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine

__all__ = ["Callback", "EarlyStopping", "Checkpoint", "CSVLogger", "StopRun"]

_LOG = get_logger("callbacks")


class Callback:
    """Base callback: every hook is a no-op; override what you need."""

    def on_setup(self, engine: "Engine") -> None:
        """The engine's nodes are built and set up; the run is starting."""

    def on_update(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        """One aggregation entered the metrics history (any tier)."""

    def on_evaluate(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        """The record carries an evaluation result."""

    def on_round_end(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        """A global-tier aggregation (one global round) completed."""

    def on_shutdown(self, engine: "Engine") -> None:
        """The engine is shutting down; release any held resources."""


def _monitor_mode(monitor: str, mode: str) -> str:
    if mode in ("min", "max"):
        return mode
    return "min" if "loss" in monitor else "max"


class EarlyStopping(Callback):
    """Stop the run once a monitored metric stops improving.

    Works identically under synchronous rounds and every scheduler policy
    because it observes the unified record stream: each record carrying the
    monitored field counts as one observation, and after ``patience``
    consecutive observations without an improvement of at least
    ``min_delta`` the callback requests a stop.
    """

    def __init__(
        self,
        monitor: str = "eval_accuracy",
        patience: int = 3,
        min_delta: float = 0.0,
        mode: str = "auto",
    ) -> None:
        if patience < 0:
            raise ValueError("patience must be >= 0")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = _monitor_mode(monitor, mode)
        self.best: Optional[float] = None
        self.stale = 0
        self.stopped = False

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def on_update(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        value = getattr(record, self.monitor, None)
        if value is None:
            return
        value = float(value)
        if self._improved(value):
            self.best = value
            self.stale = 0
            return
        self.stale += 1
        if self.stale > self.patience and not self.stopped:
            self.stopped = True
            metrics.request_stop(
                f"early stopping: {self.monitor} did not improve past "
                f"{self.best:.6g} for {self.stale} records"
            )


class Checkpoint(Callback):
    """Save the global model state to ``directory`` as the run progresses.

    ``last.npz`` always tracks the newest global round; with ``monitor``
    set, ``best.npz`` tracks the round where the monitored metric peaked.
    """

    def __init__(
        self,
        directory: str,
        every: int = 1,
        monitor: Optional[str] = None,
        mode: str = "auto",
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.directory = directory
        self.every = int(every)
        self.monitor = monitor
        self.mode = _monitor_mode(monitor or "", mode) if monitor else "max"
        self.best: Optional[float] = None
        self.engine: Optional["Engine"] = None
        self._rounds = 0

    def on_setup(self, engine: "Engine") -> None:
        self.engine = engine
        os.makedirs(self.directory, exist_ok=True)

    def _save(self, filename: str) -> None:
        assert self.engine is not None, "Checkpoint used before engine setup"
        state = self.engine.global_state()
        np.savez(os.path.join(self.directory, filename), **state)

    def on_round_end(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        self._rounds += 1
        if self._rounds % self.every == 0:
            self._save("last.npz")
        if self.monitor is None:
            return
        value = getattr(record, self.monitor, None)
        if value is None:
            return
        value = float(value)
        better = self.best is None or (
            value > self.best if self.mode == "max" else value < self.best
        )
        if better:
            self.best = value
            self._save("best.npz")


class CSVLogger(Callback):
    """Append one CSV row per record (every tier) to ``path``.

    The logger survives reuse: after ``on_shutdown`` closes the file, a
    later run with the same callback *appends* to it instead of truncating
    the earlier rows (the header is written once).  ``append=True`` extends
    that to the very first open, continuing a file left by a previous
    process.
    """

    FIELDS = [
        "round", "tier", "train_loss", "train_accuracy", "eval_loss",
        "eval_accuracy", "applied", "staleness_mean", "sim_time",
        "sim_comm_seconds", "bytes_sent", "wall_seconds",
    ]

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.append = bool(append)
        self._fh: Optional[IO[str]] = None
        self._writer: Optional[Any] = None
        self._opened_once = False

    def _ensure_open(self) -> Any:
        if self._writer is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            # truncate only on the first open of a non-append logger; any
            # reopen (a continuation run after on_shutdown) must keep the
            # rows the previous run wrote
            mode = "a" if (self.append or self._opened_once) else "w"
            self._fh = open(self.path, mode, newline="", encoding="utf8")
            self._writer = csv.DictWriter(self._fh, fieldnames=self.FIELDS)
            if self._fh.tell() == 0:
                self._writer.writeheader()
            self._opened_once = True
        return self._writer

    def on_update(self, record: RoundRecord, metrics: MetricsCollector) -> None:
        row = {k: v for k, v in record.as_dict().items() if k in self.FIELDS}
        row["tier"] = record.tier
        self._ensure_open().writerow(row)
        assert self._fh is not None
        self._fh.flush()

    def on_shutdown(self, engine: "Engine") -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._writer = None
