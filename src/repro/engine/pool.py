"""Client runtimes: how logical clients map onto physical node actors.

The scheduler subsystem dispatches work to *logical client ids* through a
:class:`ClientRuntime`; how those ids reach hardware is this module's
concern:

* :class:`DedicatedRuntime` — the classic mode: one node actor per client,
  ``submit`` goes straight to the client's own actor.
* :class:`ClientPool` — massive-scale simulation: ``num_clients`` logical
  clients share ``pool_size`` reusable worker nodes.  Each turn swaps the
  client's persistent state (see :mod:`repro.engine.client_state`) into a
  free worker, runs the call on the worker's actor thread, and extracts the
  state back.  Memory is bounded by the pool, not the cohort.

The pool preserves two properties the execution policies rely on:

1. **per-client FIFO** — all submissions for one client run in submission
   order (exactly what a dedicated actor's mailbox guarantees), so pooled
   and dedicated runs are bit-identical;
2. **bounded results** — at most ``window`` turns are started-but-unconsumed
   at a time, so completed model states never pile up cohort-deep while the
   virtual-time queue waits on a late arrival.  A consumer blocking on a
   specific ticket *demands* it past the window (and past FIFO order for
   other clients), which makes the bound deadlock-free.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, TYPE_CHECKING

import numpy as np

from repro.engine.client_state import ClientStateStore
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import Engine

__all__ = ["ClientRuntime", "DedicatedRuntime", "ClientPool", "PoolTicket"]

_LOG = get_logger("pool")


class ClientRuntime:
    """Where ``scheduler.dispatch`` sends a logical client's work."""

    #: True when logical clients outnumber physical nodes
    pooled = False

    def client_ids(self) -> List[int]:
        raise NotImplementedError

    def submit(self, client: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run ``method`` for ``client``; returns a future-like object."""
        raise NotImplementedError


class DedicatedRuntime(ClientRuntime):
    """One node actor per client id (the classic execution mode)."""

    def __init__(self, engine: "Engine", id_to_pos: Dict[int, int]) -> None:
        self._engine = engine
        self._id_to_pos = {int(c): int(p) for c, p in id_to_pos.items()}

    def client_ids(self) -> List[int]:
        return sorted(self._id_to_pos)

    def submit(self, client: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return self._engine.actors[self._id_to_pos[int(client)]].submit(method, *args, **kwargs)


# ----------------------------------------------------------------------
# pooled execution
# ----------------------------------------------------------------------
class PoolTicket:
    """Future-like handle for one pooled client turn.

    Satisfies the surface the event queue uses (``result``/``exception``/
    ``done``); ``result`` additionally *demands* the ticket, telling the pool
    a consumer is blocked on it so it may jump the admission window.
    """

    def __init__(self, pool: "ClientPool", seq: int, client: int, method: str,
                 args: tuple, kwargs: dict, needs_data: bool) -> None:
        self._pool = pool
        self.seq = seq
        self.client = int(client)
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.needs_data = needs_data
        self.demanded = False
        self.started = False
        self._event = threading.Event()
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._consumed = False

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:  # Future-API compat; pooled turns always run
        return False

    def _wait(self, timeout: Optional[float]) -> None:
        self._pool._demand(self)
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"pooled turn ({self.method} for client {self.client}) "
                f"still pending after {timeout}s"
            )
        self._pool._consume(self)

    def result(self, timeout: Optional[float] = None) -> Any:
        self._wait(timeout)
        if self._exc is not None:
            raise self._exc
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        self._wait(timeout)
        return self._exc

    def __repr__(self) -> str:
        state = "done" if self.done() else ("running" if self.started else "queued")
        return f"PoolTicket(client={self.client}, method={self.method!r}, {state})"


class ClientPool(ClientRuntime):
    """``num_clients`` logical clients simulated on a bounded worker pool."""

    pooled = True

    #: methods whose turn needs the client's training data view mounted
    _DATA_METHODS = ("local_update", "run_round")

    def __init__(
        self,
        engine: "Engine",
        num_clients: int,
        worker_positions: List[int],
        data_provider,
        window: Optional[int] = None,
    ) -> None:
        if not worker_positions:
            raise ValueError("client pool needs at least one worker node")
        self._engine = engine
        self.num_clients = int(num_clients)
        self._worker_pos = [int(w) for w in worker_positions]
        self._data = data_provider
        self.store = ClientStateStore()
        self._lock = threading.Lock()
        self._free: List[int] = list(self._worker_pos)
        self._pending: Deque[PoolTicket] = deque()
        self._busy_clients: Set[int] = set()
        self._seq = itertools.count()
        # started-but-unconsumed turns admitted without demand: bounds how
        # many decoded results can pile up while the event queue waits
        self._window = int(window) if window is not None else max(2 * len(worker_positions), 4)
        self._unconsumed = 0
        self._baseline: Optional[Dict[str, Any]] = None
        self._stopped = False
        self.turns_run = 0

    # ------------------------------------------------------------------
    @property
    def pool_size(self) -> int:
        return len(self._worker_pos)

    def client_ids(self) -> List[int]:
        return list(range(self.num_clients))

    def ensure_baseline(self) -> None:
        """Capture the pristine first-turn state (once, from any worker —
        all workers are built identically from the same seeded factories)."""
        if self._baseline is None:
            self._baseline = self._engine.actors[self._worker_pos[0]].call(
                "pool_baseline", timeout=60
            )

    # ------------------------------------------------------------------
    def submit(self, client: int, method: str, *args: Any, **kwargs: Any) -> PoolTicket:
        if self._baseline is None:
            self.ensure_baseline()
        with self._lock:
            if self._stopped:
                raise RuntimeError("client pool has been stopped")
            ticket = PoolTicket(
                self, next(self._seq), client, method, args, kwargs,
                needs_data=method in self._DATA_METHODS,
            )
            self._pending.append(ticket)
            self._pump_locked()
        return ticket

    def evaluate_all(self, max_batches: Optional[int] = None) -> tuple:
        """Personalized evaluation over every logical client: mean (loss,
        accuracy) of each client's own model on the shared test set."""
        tickets = [self.submit(c, "evaluate", None, max_batches) for c in self.client_ids()]
        results = [t.result(300) for t in tickets]
        losses = [r[0] for r in results]
        accs = [r[1] for r in results]
        return float(np.mean(losses)), float(np.mean(accs))

    def stop(self) -> None:
        """Fail everything still queued; started turns finish on their own."""
        with self._lock:
            self._stopped = True
            pending, self._pending = list(self._pending), deque()
        for ticket in pending:
            ticket._exc = RuntimeError("client pool stopped with turns still queued")
            ticket._event.set()

    # ------------------------------------------------------------------
    # internals (all under self._lock unless noted)
    # ------------------------------------------------------------------
    def _demand(self, ticket: PoolTicket) -> None:
        """A consumer is blocked on ``ticket``: let it (and the same
        client's earlier turns, which per-client FIFO runs first) jump the
        admission window."""
        with self._lock:
            if ticket.done() or ticket.demanded:
                return
            for t in self._pending:
                if t.client == ticket.client and t.seq <= ticket.seq:
                    t.demanded = True
            ticket.demanded = True
            self._pump_locked()

    def _consume(self, ticket: PoolTicket) -> None:
        with self._lock:
            if not ticket._consumed:
                ticket._consumed = True
                self._unconsumed -= 1
                self._pump_locked()

    def _pump_locked(self) -> None:
        """Assign startable tickets to free workers (FIFO, demand first)."""
        while self._free:
            ticket = self._next_startable()
            if ticket is None:
                return
            self._pending.remove(ticket)
            worker = self._free.pop()
            ticket.started = True
            self._busy_clients.add(ticket.client)
            self._unconsumed += 1
            future = self._engine.actors[worker].submit_call(self._run_turn, ticket)
            future.add_done_callback(
                lambda f, t=ticket, w=worker: self._on_turn_done(t, w, f)
            )

    def _next_startable(self) -> Optional[PoolTicket]:
        admit_more = self._unconsumed < self._window
        for ticket in self._pending:
            if ticket.client in self._busy_clients:
                continue  # per-client FIFO: an earlier turn is running
            if ticket.demanded or admit_more:
                return ticket
        return None

    def _run_turn(self, node, ticket: PoolTicket) -> Any:
        """Inject state -> run -> extract state, on the worker's thread."""
        tracer = self._engine.tracer
        snapshot = self.store.get(ticket.client)
        dataset = self._data.view(ticket.client) if ticket.needs_data else None
        assert self._baseline is not None
        with tracer.span("pool.swap_in", cat="pool", client=ticket.client):
            node.begin_client_turn(ticket.client, snapshot, dataset, self._baseline)
        try:
            with tracer.span("pool.turn", cat="pool",
                             client=ticket.client, method=ticket.method):
                return getattr(node, ticket.method)(*ticket.args, **ticket.kwargs)
        finally:
            # extract even after a failed turn: the client keeps whatever
            # state the failure left (dedicated-node semantics), and the
            # next begin_client_turn fully re-initializes the worker either
            # way, so reuse cannot leak state across clients
            turns = snapshot.turns if snapshot is not None else 0
            with tracer.span("pool.swap_out", cat="pool", client=ticket.client):
                self.store.put(ticket.client, node.end_client_turn(turns))

    def _on_turn_done(self, ticket: PoolTicket, worker: int, future) -> None:
        exc = future.exception()
        if exc is not None:
            ticket._exc = exc
        else:
            ticket._result = future.result()
        with self._lock:
            self.turns_run += 1
            self._busy_clients.discard(ticket.client)
            self._free.append(worker)
            self._pump_locked()
        ticket._event.set()

    def __repr__(self) -> str:
        return (
            f"ClientPool(clients={self.num_clients}, workers={self.pool_size}, "
            f"turns={self.turns_run}, stored={len(self.store)})"
        )
