"""Deprecated location: the client runtimes moved to :mod:`repro.runtime`.

``ClientRuntime``/``DedicatedRuntime`` live in ``repro.runtime.base`` and
``ClientPool``/``PoolTicket`` in ``repro.runtime.pool`` (pooled execution
now dispatches through a pluggable turn broker — see
``repro.runtime.broker``).  This module re-exports those names unchanged
so existing imports keep working, at the price of one
:class:`DeprecationWarning` when it is first imported.
"""

from __future__ import annotations

import warnings

from repro.runtime.base import ClientRuntime, DedicatedRuntime
from repro.runtime.pool import ClientPool, PoolTicket

__all__ = ["ClientRuntime", "DedicatedRuntime", "ClientPool", "PoolTicket"]

warnings.warn(
    "repro.engine.pool is deprecated; import ClientRuntime, DedicatedRuntime, "
    "ClientPool and PoolTicket from repro.runtime instead",
    DeprecationWarning,
    stacklevel=2,
)
