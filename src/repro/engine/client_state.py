"""Per-logical-client persistent state for pooled execution.

The client-pool execution mode simulates ``num_clients`` logical clients on
``pool_size`` reusable worker nodes.  Everything that makes a client *that*
client across rounds — algorithm state (control variates, personal models),
persistent model entries (personal heads, local BatchNorm), compression/DP
codec state (error-feedback residuals, stochastic-rounding streams), and the
client's random streams — lives in a :class:`ClientStateStore` between
turns.  A worker adopts a client's snapshot before its turn and hands the
updated snapshot back after, so results are bit-identical to a dedicated
node per client regardless of pool size or scheduling order.

Memory scales with what algorithms actually persist: plain FedAvg persists
nothing, so a 1000-client cohort costs 1000 *empty* snapshots; personalized
methods (FedBN, Ditto with personal evaluation) inherently keep per-client
model weights and pay for exactly those.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ClientSnapshot", "ClientStateStore", "StateArena"]


@dataclass
class ClientSnapshot:
    """Everything one logical client carries between pool turns.

    Contract: holders must not mutate snapshot contents in place — algorithm
    hooks replace (never mutate) the arrays they export, so snapshots can
    hold references instead of copies.  When the store is arena-backed the
    contract tightens by one clause: a snapshot obtained from the store is
    valid only until that client's *next* ``put`` (its arrays are views into
    per-client arena rows, which the next put overwrites in place).  The
    pool serializes all turns of one client, so every in-tree consumer
    satisfies this by construction.
    """

    #: algorithm attrs named by ``Algorithm.client_state_attrs``
    algo: Dict[str, Any] = field(default_factory=dict)
    #: persistent model entries (``Algorithm.persistent_model_keys``)
    model: Dict[str, np.ndarray] = field(default_factory=dict)
    #: bit-generator states of the client's random streams
    fault_rng: Optional[Dict[str, Any]] = None
    loader_rng: Optional[Dict[str, Any]] = None
    #: compressor / DP plugin state (error-feedback residuals, rng streams)
    compressor: Optional[Dict[str, Any]] = None
    dp: Optional[Dict[str, Any]] = None
    #: last reported training stats (selection strategies read the loss)
    stats: Dict[str, float] = field(default_factory=dict)
    #: completed turns (diagnostics; also exercised by reuse tests)
    turns: int = 0

    def nbytes(self) -> int:
        """Approximate memory footprint of the numpy payloads."""
        total = 0
        for bucket in (self.algo, self.model, self.compressor, self.dp):
            if bucket:
                total += sum(_deep_nbytes(v) for v in bucket.values())
        return total


def _deep_nbytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(_deep_nbytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_deep_nbytes(v) for v in value)
    return 0


class StateArena:
    """Preallocated per-client slabs backing snapshot arrays with views.

    Without an arena every pool turn's swap-out stores freshly allocated
    state-dict copies, so a long run churns one short-lived allocation per
    persistent key per turn.  The arena instead keeps one stacked slab per
    state-schema *path* — shape ``(num_clients, *leaf_shape)`` — and
    :meth:`adopt` rewrites a snapshot's array leaves into that client's row:
    the values are copied once into stable storage and the snapshot ends up
    holding views, so repeated turns of a client reuse the same memory
    instead of reallocating it.  Rows of different clients are disjoint,
    which keeps concurrent workers race-free without a lock on the write
    path (the lock guards slab creation only).

    The schema is discovered lazily from whatever snapshots actually carry
    (plain FedAvg persists nothing and allocates nothing) and extends as new
    paths appear.  A leaf whose shape or dtype disagrees with its slab — or
    that is not a numpy array at all — is simply left as a plain reference:
    per-leaf fallback, never a failure.  Leaves that already *are* this
    client's row (an algorithm carrying an attr through unchanged) skip the
    copy, which is what makes the swap copy-on-write for untouched keys.
    """

    #: snapshot buckets whose dict trees get arena-backed (plugin state —
    #: compressor/dp — stays plain: shapes there may vary turn to turn)
    _BUCKETS = ("model", "algo")

    def __init__(self, num_clients: int) -> None:
        self.num_clients = int(num_clients)
        self._slabs: Dict[str, np.ndarray] = {}
        self._lock = threading.Lock()

    def adopt(self, client: int, snapshot: ClientSnapshot) -> ClientSnapshot:
        """Rewrite ``snapshot``'s array leaves into ``client``'s arena rows
        (in place); returns the same snapshot."""
        client = int(client)
        if not 0 <= client < self.num_clients:
            return snapshot
        for bucket in self._BUCKETS:
            tree = getattr(snapshot, bucket)
            if tree:
                self._adopt_tree(client, bucket, tree)
        return snapshot

    def _adopt_tree(self, client: int, path: str, tree: Dict[str, Any]) -> None:
        for key, value in tree.items():
            if isinstance(value, np.ndarray):
                leaf = self._adopt_leaf(client, f"{path}.{key}", value)
                if leaf is not value:
                    tree[key] = leaf
            elif isinstance(value, dict):
                self._adopt_tree(client, f"{path}.{key}", value)
            # lists/scalars/None stay plain references

    def _adopt_leaf(self, client: int, path: str, arr: np.ndarray) -> np.ndarray:
        slab = self._slabs.get(path)
        if slab is None:
            with self._lock:
                slab = self._slabs.get(path)
                if slab is None:
                    slab = np.empty((self.num_clients,) + arr.shape, arr.dtype)
                    self._slabs[path] = slab
        if slab.shape[1:] != arr.shape or slab.dtype != arr.dtype:
            return arr  # schema drifted for this leaf: keep it plain
        # ellipsis keeps 0-d leaves (e.g. batch-norm step counters) as 0-d
        # views — plain slab[client] would collapse them to numpy scalars
        view = slab[client, ...]
        if arr.base is slab:
            return arr  # already this client's row: nothing to copy
        view[...] = arr
        return view

    def paths(self) -> List[str]:
        """Slab paths allocated so far (diagnostics/tests)."""
        with self._lock:
            return sorted(self._slabs)

    def nbytes(self) -> int:
        """Total bytes preallocated across slabs."""
        with self._lock:
            return sum(int(s.nbytes) for s in self._slabs.values())

    def stats(self) -> Dict[str, Tuple[Tuple[int, ...], str]]:
        with self._lock:
            return {p: (s.shape, str(s.dtype)) for p, s in self._slabs.items()}


class ClientStateStore:
    """Thread-safe map of logical client id -> :class:`ClientSnapshot`.

    Workers for *different* clients run concurrently but the pool serializes
    all turns of one client, so per-key access is race-free by construction;
    the lock only guards the dict itself.  With an ``arena``, every ``put``
    first adopts the snapshot's arrays into the client's preallocated rows
    (see :class:`StateArena`), making steady-state swaps allocation-free.
    """

    def __init__(self, arena: Optional[StateArena] = None) -> None:
        self._snapshots: Dict[int, ClientSnapshot] = {}
        self._sizes: Dict[int, int] = {}
        self._total_bytes = 0
        self._lock = threading.Lock()
        self.arena = arena

    def get(self, client: int) -> Optional[ClientSnapshot]:
        with self._lock:
            return self._snapshots.get(int(client))

    def put(self, client: int, snapshot: ClientSnapshot) -> None:
        if self.arena is not None:
            snapshot = self.arena.adopt(int(client), snapshot)
        # size once per put (snapshot contents are replace-not-mutate, see
        # ClientSnapshot contract) so nbytes() stays O(1) — telemetry reads
        # it on every aggregation record
        size = snapshot.nbytes()
        with self._lock:
            key = int(client)
            self._total_bytes += size - self._sizes.get(key, 0)
            self._sizes[key] = size
            self._snapshots[key] = snapshot

    def pop(self, client: int) -> Optional[ClientSnapshot]:
        with self._lock:
            key = int(client)
            self._total_bytes -= self._sizes.pop(key, 0)
            return self._snapshots.pop(key, None)

    def clients(self) -> List[int]:
        with self._lock:
            return sorted(self._snapshots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def __contains__(self, client: object) -> bool:
        with self._lock:
            return client in self._snapshots

    def nbytes(self) -> int:
        """Total numpy memory pinned by stored snapshots (diagnostics).

        Maintained incrementally on ``put``/``pop`` — constant-time, safe
        to poll from telemetry's record path.
        """
        with self._lock:
            return self._total_bytes
