"""Per-logical-client persistent state for pooled execution.

The client-pool execution mode simulates ``num_clients`` logical clients on
``pool_size`` reusable worker nodes.  Everything that makes a client *that*
client across rounds — algorithm state (control variates, personal models),
persistent model entries (personal heads, local BatchNorm), compression/DP
codec state (error-feedback residuals, stochastic-rounding streams), and the
client's random streams — lives in a :class:`ClientStateStore` between
turns.  A worker adopts a client's snapshot before its turn and hands the
updated snapshot back after, so results are bit-identical to a dedicated
node per client regardless of pool size or scheduling order.

Memory scales with what algorithms actually persist: plain FedAvg persists
nothing, so a 1000-client cohort costs 1000 *empty* snapshots; personalized
methods (FedBN, Ditto with personal evaluation) inherently keep per-client
model weights and pay for exactly those.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["ClientSnapshot", "ClientStateStore"]


@dataclass
class ClientSnapshot:
    """Everything one logical client carries between pool turns.

    Contract: holders must not mutate snapshot contents in place — algorithm
    hooks replace (never mutate) the arrays they export, so snapshots can
    hold references instead of copies.
    """

    #: algorithm attrs named by ``Algorithm.client_state_attrs``
    algo: Dict[str, Any] = field(default_factory=dict)
    #: persistent model entries (``Algorithm.persistent_model_keys``)
    model: Dict[str, np.ndarray] = field(default_factory=dict)
    #: bit-generator states of the client's random streams
    fault_rng: Optional[Dict[str, Any]] = None
    loader_rng: Optional[Dict[str, Any]] = None
    #: compressor / DP plugin state (error-feedback residuals, rng streams)
    compressor: Optional[Dict[str, Any]] = None
    dp: Optional[Dict[str, Any]] = None
    #: last reported training stats (selection strategies read the loss)
    stats: Dict[str, float] = field(default_factory=dict)
    #: completed turns (diagnostics; also exercised by reuse tests)
    turns: int = 0

    def nbytes(self) -> int:
        """Approximate memory footprint of the numpy payloads."""
        total = 0
        for bucket in (self.algo, self.model, self.compressor, self.dp):
            if bucket:
                total += sum(_deep_nbytes(v) for v in bucket.values())
        return total


def _deep_nbytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(_deep_nbytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_deep_nbytes(v) for v in value)
    return 0


class ClientStateStore:
    """Thread-safe map of logical client id -> :class:`ClientSnapshot`.

    Workers for *different* clients run concurrently but the pool serializes
    all turns of one client, so per-key access is race-free by construction;
    the lock only guards the dict itself.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[int, ClientSnapshot] = {}
        self._sizes: Dict[int, int] = {}
        self._total_bytes = 0
        self._lock = threading.Lock()

    def get(self, client: int) -> Optional[ClientSnapshot]:
        with self._lock:
            return self._snapshots.get(int(client))

    def put(self, client: int, snapshot: ClientSnapshot) -> None:
        # size once per put (snapshot contents are replace-not-mutate, see
        # ClientSnapshot contract) so nbytes() stays O(1) — telemetry reads
        # it on every aggregation record
        size = snapshot.nbytes()
        with self._lock:
            key = int(client)
            self._total_bytes += size - self._sizes.get(key, 0)
            self._sizes[key] = size
            self._snapshots[key] = snapshot

    def pop(self, client: int) -> Optional[ClientSnapshot]:
        with self._lock:
            key = int(client)
            self._total_bytes -= self._sizes.pop(key, 0)
            return self._snapshots.pop(key, None)

    def clients(self) -> List[int]:
        with self._lock:
            return sorted(self._snapshots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def __contains__(self, client: object) -> bool:
        with self._lock:
            return client in self._snapshots

    def nbytes(self) -> int:
        """Total numpy memory pinned by stored snapshots (diagnostics).

        Maintained incrementally on ``put``/``pop`` — constant-time, safe
        to poll from telemetry's record path.
        """
        with self._lock:
            return self._total_bytes
