"""Round-level metrics collection and reporting.

:meth:`MetricsCollector.add` is also the framework's single callback hook
point: every execution path — the synchronous round loop and all scheduler
policies — funnels its :class:`RoundRecord` stream through one ``add`` call,
so callbacks registered on the collector observe every aggregation uniformly
without each policy growing its own hook wiring.  A callback that calls
:meth:`MetricsCollector.request_stop` makes the next ``add`` raise
:class:`StopRun`, which the round loop and the scheduler runtime both catch
to finish the run cleanly (drain in-flight work, final evaluation).
"""

from __future__ import annotations

import numbers
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.callbacks import Callback

__all__ = ["RoundRecord", "MetricsCollector", "StopRun"]

_LOG = get_logger("metrics")


class StopRun(Exception):
    """Control-flow signal: a callback requested the run to stop early."""

    def __init__(self, reason: str = "stop requested") -> None:
        self.reason = reason
        super().__init__(reason)


@dataclass
class RoundRecord:
    """Everything measured in one global round."""

    round_idx: int
    train_loss: float = 0.0
    train_accuracy: float = 0.0
    eval_accuracy: Optional[float] = None
    eval_loss: Optional[float] = None
    wall_seconds: float = 0.0
    sim_comm_seconds: float = 0.0
    bytes_sent: int = 0
    #: virtual time at which this aggregation happened (async scheduler runs)
    sim_time: float = 0.0
    #: client updates merged by this aggregation (1 for FedAsync, K for
    #: FedBuff, participants-per-round for sync/semi-sync)
    applied: int = 0
    #: mean staleness (in global versions) of the merged updates
    staleness_mean: float = 0.0
    #: which tier produced this record: "global" (root aggregations, the
    #: default) or "site" (per-site collectors in hierarchical async runs)
    tier: str = "global"
    #: site uploads merged by this aggregation (hierarchical outer tier)
    sites_merged: int = 0
    #: RMS distance of peer models from the consensus average (gossip runs)
    consensus_dist: Optional[float] = None
    #: bytes moved per directed edge ("u->v") since the previous record
    #: (gossip runs; per-edge accounting of the exchange traffic)
    per_edge: Dict[str, int] = field(default_factory=dict)
    per_node: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round_idx,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "eval_accuracy": self.eval_accuracy,
            "eval_loss": self.eval_loss,
            "wall_seconds": self.wall_seconds,
            "sim_comm_seconds": self.sim_comm_seconds,
            "bytes_sent": self.bytes_sent,
            "sim_time": self.sim_time,
            "applied": self.applied,
            "staleness_mean": self.staleness_mean,
            "tier": self.tier,
            "sites_merged": self.sites_merged,
            "consensus_dist": self.consensus_dist,
        }

    def to_payload(self) -> Dict[str, Any]:
        """Full, plain-scalar serialization (``RunResult.save`` format)."""

        def scalar(v: Any) -> Any:
            # numpy scalars must become native ints/floats or the YAML
            # dumper would emit their repr instead of a number
            if v is None or isinstance(v, (bool, str)):
                return v
            if isinstance(v, numbers.Integral):
                return int(v)
            return float(v)

        payload = {k: scalar(v) for k, v in self.as_dict().items()}
        payload["per_node"] = {
            name: {k: float(v) for k, v in stats.items()}
            for name, stats in self.per_node.items()
        }
        payload["per_edge"] = {edge: int(n) for edge, n in self.per_edge.items()}
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RoundRecord":
        data = dict(payload)
        record = cls(round_idx=int(data.pop("round")))
        record.per_node = {
            str(name): dict(stats) for name, stats in (data.pop("per_node", {}) or {}).items()
        }
        record.per_edge = {
            str(edge): int(n) for edge, n in (data.pop("per_edge", {}) or {}).items()
        }
        for key, value in data.items():
            if hasattr(record, key):
                setattr(record, key, value)
        return record


class MetricsCollector:
    """Accumulates :class:`RoundRecord` history and computes summaries.

    Also the callback hook point (see the module docstring): ``callbacks``
    fire on every :meth:`add`, and a requested stop surfaces as
    :class:`StopRun` out of the ``add`` that observed it.
    """

    def __init__(self) -> None:
        self.history: List[RoundRecord] = []
        self.callbacks: List["Callback"] = []
        self.stop_requested = False
        self.stop_reason: Optional[str] = None

    def request_stop(self, reason: str = "stop requested") -> None:
        """Ask the driving loop to finish the run after the current record."""
        self.stop_requested = True
        if self.stop_reason is None:
            self.stop_reason = reason

    def reset_stop(self) -> None:
        """Re-arm the collector for a continuation run.

        Called at the start of every run so a stop requested in an earlier
        run does not instantly abort the next one; ``stop_reason`` is kept
        as the record of why the previous run ended.
        """
        self.stop_requested = False

    def _fire(self, hook: Callable[[RoundRecord, "MetricsCollector"], None],
              record: RoundRecord) -> None:
        """Run one callback hook, isolated.

        A raising observer must not abort the run mid-aggregation: the
        exception is logged and the record stream continues.  The sanctioned
        way for a callback to end the run is :meth:`request_stop`, which the
        tail of :meth:`add` turns into :class:`StopRun` — so a ``StopRun``
        raised *directly* from a hook is honored as that same request rather
        than swallowed.
        """
        try:
            hook(record, self)
        except StopRun as stop:
            self.request_stop(stop.reason)
        except Exception:  # noqa: BLE001 - observer errors never abort
            owner = getattr(hook, "__self__", hook)
            _LOG.exception(
                "callback %s failed in %s; continuing the run",
                type(owner).__name__, getattr(hook, "__name__", hook),
            )

    def add(self, record: RoundRecord) -> None:
        self.history.append(record)
        for cb in self.callbacks:
            self._fire(cb.on_update, record)
            if record.eval_accuracy is not None or record.eval_loss is not None:
                self._fire(cb.on_evaluate, record)
            if record.tier == "global":
                self._fire(cb.on_round_end, record)
        if self.stop_requested:
            raise StopRun(self.stop_reason or "stop requested")

    @property
    def last(self) -> Optional[RoundRecord]:
        return self.history[-1] if self.history else None

    def final_accuracy(self) -> Optional[float]:
        for rec in reversed(self.history):
            if rec.eval_accuracy is not None:
                return rec.eval_accuracy
        return None

    def best_accuracy(self) -> Optional[float]:
        accs = [r.eval_accuracy for r in self.history if r.eval_accuracy is not None]
        return max(accs) if accs else None

    def median_round_time(self) -> float:
        times = [r.wall_seconds for r in self.history]
        return statistics.median(times) if times else 0.0

    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.history)

    def sim_makespan(self) -> float:
        """Virtual completion time of the run (async scheduler histories)."""
        return max((r.sim_time for r in self.history), default=0.0)

    def total_applied(self) -> int:
        """Client updates merged across the whole history."""
        return sum(r.applied for r in self.history)

    def summary(self) -> Dict[str, Any]:
        return {
            "rounds": len(self.history),
            "final_accuracy": self.final_accuracy(),
            "best_accuracy": self.best_accuracy(),
            "median_round_seconds": self.median_round_time(),
            "total_bytes_sent": self.total_bytes(),
            "total_sim_comm_seconds": sum(r.sim_comm_seconds for r in self.history),
            "sim_makespan": self.sim_makespan(),
            "applied_updates": self.total_applied(),
            # why the last run ended (None: ran to completion) — lets ops
            # consumers tell an early stop from a finished run
            "stop_reason": self.stop_reason,
        }

    def table(self) -> str:
        """Plain-text round table for logs and example scripts."""
        lines = [f"{'round':>5} {'loss':>8} {'train_acc':>9} {'eval_acc':>8} {'secs':>7}"]
        for r in self.history:
            eval_txt = f"{r.eval_accuracy:8.4f}" if r.eval_accuracy is not None else "       -"
            lines.append(
                f"{r.round_idx:>5} {r.train_loss:8.4f} {r.train_accuracy:9.4f} {eval_txt} {r.wall_seconds:7.2f}"
            )
        return "\n".join(lines)
