"""Round-level metrics collection and reporting."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RoundRecord", "MetricsCollector"]


@dataclass
class RoundRecord:
    """Everything measured in one global round."""

    round_idx: int
    train_loss: float = 0.0
    train_accuracy: float = 0.0
    eval_accuracy: Optional[float] = None
    eval_loss: Optional[float] = None
    wall_seconds: float = 0.0
    sim_comm_seconds: float = 0.0
    bytes_sent: int = 0
    #: virtual time at which this aggregation happened (async scheduler runs)
    sim_time: float = 0.0
    #: client updates merged by this aggregation (1 for FedAsync, K for
    #: FedBuff, participants-per-round for sync/semi-sync)
    applied: int = 0
    #: mean staleness (in global versions) of the merged updates
    staleness_mean: float = 0.0
    #: which tier produced this record: "global" (root aggregations, the
    #: default) or "site" (per-site collectors in hierarchical async runs)
    tier: str = "global"
    #: site uploads merged by this aggregation (hierarchical outer tier)
    sites_merged: int = 0
    #: RMS distance of peer models from the consensus average (gossip runs)
    consensus_dist: Optional[float] = None
    #: bytes moved per directed edge ("u->v") since the previous record
    #: (gossip runs; per-edge accounting of the exchange traffic)
    per_edge: Dict[str, int] = field(default_factory=dict)
    per_node: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round_idx,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "eval_accuracy": self.eval_accuracy,
            "eval_loss": self.eval_loss,
            "wall_seconds": self.wall_seconds,
            "sim_comm_seconds": self.sim_comm_seconds,
            "bytes_sent": self.bytes_sent,
            "sim_time": self.sim_time,
            "applied": self.applied,
            "staleness_mean": self.staleness_mean,
            "tier": self.tier,
            "sites_merged": self.sites_merged,
            "consensus_dist": self.consensus_dist,
        }


class MetricsCollector:
    """Accumulates :class:`RoundRecord` history and computes summaries."""

    def __init__(self) -> None:
        self.history: List[RoundRecord] = []

    def add(self, record: RoundRecord) -> None:
        self.history.append(record)

    @property
    def last(self) -> Optional[RoundRecord]:
        return self.history[-1] if self.history else None

    def final_accuracy(self) -> Optional[float]:
        for rec in reversed(self.history):
            if rec.eval_accuracy is not None:
                return rec.eval_accuracy
        return None

    def best_accuracy(self) -> Optional[float]:
        accs = [r.eval_accuracy for r in self.history if r.eval_accuracy is not None]
        return max(accs) if accs else None

    def median_round_time(self) -> float:
        times = [r.wall_seconds for r in self.history]
        return statistics.median(times) if times else 0.0

    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.history)

    def sim_makespan(self) -> float:
        """Virtual completion time of the run (async scheduler histories)."""
        return max((r.sim_time for r in self.history), default=0.0)

    def total_applied(self) -> int:
        """Client updates merged across the whole history."""
        return sum(r.applied for r in self.history)

    def summary(self) -> Dict[str, Any]:
        return {
            "rounds": len(self.history),
            "final_accuracy": self.final_accuracy(),
            "best_accuracy": self.best_accuracy(),
            "median_round_seconds": self.median_round_time(),
            "total_bytes_sent": self.total_bytes(),
            "total_sim_comm_seconds": sum(r.sim_comm_seconds for r in self.history),
            "sim_makespan": self.sim_makespan(),
            "applied_updates": self.total_applied(),
        }

    def table(self) -> str:
        """Plain-text round table for logs and example scripts."""
        lines = [f"{'round':>5} {'loss':>8} {'train_acc':>9} {'eval_acc':>8} {'secs':>7}"]
        for r in self.history:
            eval_txt = f"{r.eval_accuracy:8.4f}" if r.eval_accuracy is not None else "       -"
            lines.append(
                f"{r.round_idx:>5} {r.train_loss:8.4f} {r.train_accuracy:9.4f} {eval_txt} {r.wall_seconds:7.2f}"
            )
        return "\n".join(lines)
